//! The machine-readable bench trajectories (experiments E17, E18 and
//! E19): builds and validates the documents the `telemetry_scaling`
//! binary emits — `BENCH_7.json` (per-stage quantiles), `BENCH_9.json`
//! (the traced row set: stage quantiles plus exemplar/attribution and
//! watchdog counts), `BENCH_10.json` (the monitored row set: a BENCH_9
//! row plus a per-row timeline summary), the `timeline.jsonl` frame
//! export `mvccstat replay` consumes, and the "why slow" trace report.
//!
//! The documents are the bridge between the bench harness and anything
//! that wants to track the repo's performance over time without parsing
//! rendered tables: one JSON object per run, one row per certifier, each
//! row carrying the per-stage interpolated quantiles of
//! [`mvcc_telemetry::TelemetrySnapshot::to_json`].  The schemas are
//! deliberately small and checked by [`validate_bench7`] /
//! [`validate_bench9`] / [`validate_trace_report`] — CI runs the binary
//! in smoke mode and fails on malformed output, so the documents can be
//! trusted downstream.

use crate::experiments::{TelemetryRow, TimelineRun, TraceRun};
use mvcc_telemetry::json::{self, JsonValue};
use mvcc_telemetry::Stage;

/// Renders the E17 trajectory document: `{"experiment": …, "rows":
/// [{"certifier", "threads", "txn_s", "p99_commit_us", "stages"}…]}`.
/// `experiment` names the run (`"E17"`, or a variant tag for smoke runs).
pub fn bench7_document(experiment: &str, rows: &[TelemetryRow]) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"experiment\": ");
    json::write_string(&mut out, experiment);
    out.push_str(", \"rows\": [");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"certifier\": ");
        json::write_string(&mut out, row.certifier.name());
        out.push_str(", \"threads\": ");
        json::write_number(&mut out, row.threads as f64);
        out.push_str(", \"txn_s\": ");
        json::write_number(&mut out, row.throughput_tps);
        out.push_str(", \"p99_commit_us\": ");
        json::write_number(&mut out, row.p99_latency_us);
        out.push_str(", \"stages\": ");
        out.push_str(&row.stages.to_json());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Checks a `BENCH_7.json` document against the E17 schema: the top-level
/// keys are present and well-typed, every row carries `certifier` /
/// `threads` / `txn_s` / `stages`, and every non-empty stage's
/// interpolated quantiles are monotone (p50 ≤ p95 ≤ p99 ≤ p999).
/// Returns the first violation as an error message.
pub fn validate_bench7(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    doc.get("experiment")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string key: experiment")?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array key: rows")?;
    for (i, row) in rows.iter().enumerate() {
        let certifier = row
            .get("certifier")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("row {i}: missing or non-string key: certifier"))?;
        for key in ["threads", "txn_s", "p99_commit_us"] {
            row.get(key).and_then(JsonValue::as_number).ok_or_else(|| {
                format!("row {i} ({certifier}): missing or non-number key: {key}")
            })?;
        }
        let stages = row
            .get("stages")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("row {i} ({certifier}): missing or non-object key: stages"))?;
        for (stage, snapshot) in stages {
            let count = snapshot
                .get("count")
                .and_then(JsonValue::as_number)
                .ok_or_else(|| format!("row {i} ({certifier}) stage {stage}: missing count"))?;
            if count == 0.0 {
                continue;
            }
            let quantile = |key: &str| {
                snapshot
                    .get(key)
                    .and_then(JsonValue::as_number)
                    .ok_or_else(|| format!("row {i} ({certifier}) stage {stage}: missing {key}"))
            };
            let (p50, p95, p99, p999) = (
                quantile("p50")?,
                quantile("p95")?,
                quantile("p99")?,
                quantile("p999")?,
            );
            if !(p50 <= p95 && p95 <= p99 && p99 <= p999) {
                return Err(format!(
                    "row {i} ({certifier}) stage {stage}: quantiles not monotone: \
                     p50={p50} p95={p95} p99={p99} p999={p999}"
                ));
            }
        }
    }
    Ok(())
}

/// Renders the E18 trajectory document: the E17 row fields plus the
/// trace scalars — `exemplars` (reservoir size), `attribution`
/// (fraction of exemplars with a dominant stage), `watchdog_windows`
/// and `watchdog_violations`.  `experiment` names the run (`"E18"`, or
/// a variant tag for smoke runs).
pub fn bench9_document(experiment: &str, runs: &[TraceRun]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"experiment\": ");
    json::write_string(&mut out, experiment);
    out.push_str(", \"rows\": [");
    for (i, run) in runs.iter().enumerate() {
        let row = &run.row;
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"certifier\": ");
        json::write_string(&mut out, row.certifier.name());
        out.push_str(", \"threads\": ");
        json::write_number(&mut out, row.threads as f64);
        out.push_str(", \"txn_s\": ");
        json::write_number(&mut out, row.throughput_tps);
        out.push_str(", \"p99_commit_us\": ");
        json::write_number(&mut out, row.p99_latency_us);
        out.push_str(", \"exemplars\": ");
        json::write_number(&mut out, row.exemplar_count as f64);
        out.push_str(", \"attribution\": ");
        json::write_number(&mut out, row.attribution);
        out.push_str(", \"watchdog_windows\": ");
        json::write_number(&mut out, row.watchdog_windows as f64);
        out.push_str(", \"watchdog_violations\": ");
        json::write_number(&mut out, row.watchdog_violations as f64);
        out.push_str(", \"stages\": ");
        out.push_str(&row.stages.to_json());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Checks a `BENCH_9.json` document against the E18 schema: everything
/// [`validate_bench7`] checks (a BENCH_9 row is a superset of a BENCH_7
/// row), plus the trace scalars — `exemplars` a non-negative count,
/// `attribution` a fraction in `[0, 1]`, and watchdog counts with
/// `violations <= windows`.  Returns the first violation as an error.
pub fn validate_bench9(text: &str) -> Result<(), String> {
    validate_bench7(text)?;
    let doc = json::parse(text)?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array key: rows")?;
    for (i, row) in rows.iter().enumerate() {
        let certifier = row
            .get("certifier")
            .and_then(JsonValue::as_str)
            .unwrap_or("?");
        let number = |key: &str| {
            row.get(key)
                .and_then(JsonValue::as_number)
                .ok_or_else(|| format!("row {i} ({certifier}): missing or non-number key: {key}"))
        };
        let exemplars = number("exemplars")?;
        if exemplars < 0.0 {
            return Err(format!("row {i} ({certifier}): negative exemplars"));
        }
        let attribution = number("attribution")?;
        if !(0.0..=1.0).contains(&attribution) {
            return Err(format!(
                "row {i} ({certifier}): attribution {attribution} outside [0, 1]"
            ));
        }
        let windows = number("watchdog_windows")?;
        let violations = number("watchdog_violations")?;
        if violations > windows {
            return Err(format!(
                "row {i} ({certifier}): watchdog_violations {violations} > windows {windows}"
            ));
        }
    }
    Ok(())
}

/// Renders the E19 trajectory document: the E18 row fields plus a
/// per-row `timeline` summary block — `frames` (how many windows the
/// continuous recorder captured), `max_abort_rate` (worst single-window
/// abort rate), `worst_p99_us` (worst single-window p99 commit latency)
/// and `alarms` (anomaly-detector alarms raised; a steady run must show
/// 0).  A BENCH_10 row is a superset of a BENCH_9 row, so the
/// `bench_diff` gate (which reads only `certifier` and `txn_s`) compares
/// BENCH_10 against a committed BENCH_9 unchanged.  `experiment` names
/// the run (`"E19"`, or a variant tag for smoke runs).
pub fn bench10_document(experiment: &str, runs: &[TimelineRun]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"experiment\": ");
    json::write_string(&mut out, experiment);
    out.push_str(", \"rows\": [");
    for (i, run) in runs.iter().enumerate() {
        let row = &run.row;
        let summary = run.summary();
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"certifier\": ");
        json::write_string(&mut out, row.certifier.name());
        out.push_str(", \"threads\": ");
        json::write_number(&mut out, row.threads as f64);
        out.push_str(", \"txn_s\": ");
        json::write_number(&mut out, row.throughput_tps);
        out.push_str(", \"p99_commit_us\": ");
        json::write_number(&mut out, row.p99_latency_us);
        out.push_str(", \"exemplars\": ");
        json::write_number(&mut out, row.exemplar_count as f64);
        out.push_str(", \"attribution\": ");
        json::write_number(&mut out, row.attribution);
        out.push_str(", \"watchdog_windows\": ");
        json::write_number(&mut out, row.watchdog_windows as f64);
        out.push_str(", \"watchdog_violations\": ");
        json::write_number(&mut out, row.watchdog_violations as f64);
        out.push_str(", \"timeline\": {\"frames\": ");
        json::write_number(&mut out, summary.frames as f64);
        out.push_str(", \"max_abort_rate\": ");
        json::write_number(&mut out, summary.max_abort_rate);
        out.push_str(", \"worst_p99_us\": ");
        json::write_number(&mut out, summary.worst_p99_us);
        out.push_str(", \"alarms\": ");
        json::write_number(&mut out, summary.alarms as f64);
        out.push_str("}, \"stages\": ");
        out.push_str(&row.stages.to_json());
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Checks a `BENCH_10.json` document against the E19 schema: everything
/// [`validate_bench9`] checks (a BENCH_10 row is a superset of a BENCH_9
/// row), plus the `timeline` summary block — `frames >= 1` (the recorder
/// always takes a closing sample), `max_abort_rate` a fraction in
/// `[0, 1]`, `worst_p99_us` non-negative, and `alarms` a non-negative
/// count.  Returns the first violation as an error.
pub fn validate_bench10(text: &str) -> Result<(), String> {
    validate_bench9(text)?;
    let doc = json::parse(text)?;
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array key: rows")?;
    for (i, row) in rows.iter().enumerate() {
        let certifier = row
            .get("certifier")
            .and_then(JsonValue::as_str)
            .unwrap_or("?");
        let timeline = row
            .get("timeline")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("row {i} ({certifier}): missing or non-object key: timeline"))?;
        let number = |key: &str| {
            timeline
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_number())
                .ok_or_else(|| {
                    format!("row {i} ({certifier}): missing or non-number key: timeline.{key}")
                })
        };
        let frames = number("frames")?;
        if frames < 1.0 {
            return Err(format!(
                "row {i} ({certifier}): timeline.frames {frames} below 1 \
                 (the recorder always takes a closing sample)"
            ));
        }
        let max_abort_rate = number("max_abort_rate")?;
        if !(0.0..=1.0).contains(&max_abort_rate) {
            return Err(format!(
                "row {i} ({certifier}): timeline.max_abort_rate {max_abort_rate} outside [0, 1]"
            ));
        }
        let worst_p99 = number("worst_p99_us")?;
        if worst_p99 < 0.0 {
            return Err(format!(
                "row {i} ({certifier}): negative timeline.worst_p99_us"
            ));
        }
        let alarms = number("alarms")?;
        if alarms < 0.0 {
            return Err(format!("row {i} ({certifier}): negative timeline.alarms"));
        }
    }
    Ok(())
}

/// Checks a committed `timeline.jsonl` export (one
/// [`mvcc_telemetry::TimelineFrame`] JSON object per line) for internal
/// consistency: frames parse, `seq` strictly increases, `at_us` never
/// goes backwards, `window_us > 0`, `abort_rate` stays in `[0, 1]` and
/// `txn_s` is finite and non-negative.  Returns the frame count, so
/// callers can assert the export is non-trivial.
pub fn validate_timeline_jsonl(text: &str) -> Result<usize, String> {
    let frames = mvcc_telemetry::parse_jsonl(text)?;
    if frames.is_empty() {
        return Err("timeline export holds no frames".into());
    }
    let mut prev_seq: Option<u64> = None;
    let mut prev_at_us: u64 = 0;
    for frame in &frames {
        let seq = frame.seq;
        if let Some(prev) = prev_seq {
            if seq <= prev {
                return Err(format!("frame seq {seq} does not increase past {prev}"));
            }
        }
        prev_seq = Some(seq);
        if frame.at_us < prev_at_us {
            return Err(format!(
                "frame {seq}: at_us {} goes backwards past {prev_at_us}",
                frame.at_us
            ));
        }
        prev_at_us = frame.at_us;
        if frame.window_us == 0 {
            return Err(format!("frame {seq}: zero window_us"));
        }
        if !(0.0..=1.0).contains(&frame.abort_rate) {
            return Err(format!(
                "frame {seq}: abort_rate {} outside [0, 1]",
                frame.abort_rate
            ));
        }
        if !frame.txn_s.is_finite() || frame.txn_s < 0.0 {
            return Err(format!("frame {seq}: invalid txn_s {}", frame.txn_s));
        }
    }
    Ok(frames.len())
}

/// Renders the "why slow" trace report: per certifier, the tail
/// exemplars aggregated by dominant stage (`by_stage`, descending
/// count) and the slowest span trees in full (`slowest`, at most 8), so
/// a reader can see *which* pipeline stage the slow commits spent their
/// time in and inspect the exact spans of the worst offenders.
pub fn trace_report_document(experiment: &str, runs: &[TraceRun]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"experiment\": ");
    json::write_string(&mut out, experiment);
    out.push_str(", \"certifiers\": [");
    for (i, run) in runs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"certifier\": ");
        json::write_string(&mut out, run.row.certifier.name());
        out.push_str(", \"exemplars\": ");
        json::write_number(&mut out, run.exemplars.len() as f64);
        out.push_str(", \"attribution\": ");
        json::write_number(&mut out, run.row.attribution);
        out.push_str(", \"watchdog\": {\"windows\": ");
        json::write_number(&mut out, run.row.watchdog_windows as f64);
        out.push_str(", \"violations\": ");
        json::write_number(&mut out, run.row.watchdog_violations as f64);
        out.push_str("}, \"by_stage\": [");
        // Aggregate exemplars by dominant stage, descending count, so the
        // first entry names where the tail latency concentrates.
        let mut counts: Vec<(Stage, usize)> = Vec::new();
        for tree in &run.exemplars {
            if let Some(stage) = tree.dominant_stage() {
                match counts.iter_mut().find(|(s, _)| *s == stage) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((stage, 1)),
                }
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.index().cmp(&b.0.index())));
        for (j, (stage, count)) in counts.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let dominated: Vec<&mvcc_telemetry::TraceTree> = run
                .exemplars
                .iter()
                .filter(|t| t.dominant_stage() == Some(*stage))
                .collect();
            let total: u64 = dominated.iter().map(|t| t.total_us).sum();
            let max = dominated.iter().map(|t| t.total_us).max().unwrap_or(0);
            out.push_str("{\"stage\": ");
            json::write_string(&mut out, stage.name());
            out.push_str(", \"count\": ");
            json::write_number(&mut out, *count as f64);
            out.push_str(", \"mean_total_us\": ");
            json::write_number(&mut out, total as f64 / *count as f64);
            out.push_str(", \"max_total_us\": ");
            json::write_number(&mut out, max as f64);
            out.push('}');
        }
        out.push_str("], \"slowest\": [");
        for (j, tree) in run.exemplars.iter().take(8).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"trace\": ");
            json::write_string(&mut out, &tree.trace.to_string());
            out.push_str(", \"total_us\": ");
            json::write_number(&mut out, tree.total_us as f64);
            out.push_str(", \"dominant\": ");
            match tree.dominant_stage() {
                Some(stage) => json::write_string(&mut out, stage.name()),
                None => out.push_str("null"),
            }
            out.push_str(", \"flush_lsn\": ");
            match tree.flush_lsn() {
                Some(lsn) => json::write_number(&mut out, lsn as f64),
                None => out.push_str("null"),
            }
            out.push_str(", \"spans\": [");
            for (k, span) in tree.spans.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"stage\": ");
                json::write_string(&mut out, span.stage.name());
                out.push_str(", \"us\": ");
                json::write_number(&mut out, span.dur_us as f64);
                out.push_str(", \"depth\": ");
                json::write_number(&mut out, f64::from(span.depth));
                if let Some(lsn) = span.lsn {
                    out.push_str(", \"lsn\": ");
                    json::write_number(&mut out, lsn as f64);
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Checks a trace-report document: top-level keys present, every
/// certifier entry carries valid counts (`attribution` in `[0, 1]`,
/// watchdog `violations <= windows`), every `by_stage` entry names a
/// known pipeline stage with a positive count and the counts sum to at
/// most `exemplars`, and `slowest` is at most 8 trees sorted slowest
/// first whose spans all name known stages at depth ≥ 1.
pub fn validate_trace_report(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    doc.get("experiment")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string key: experiment")?;
    let certifiers = doc
        .get("certifiers")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array key: certifiers")?;
    for (i, entry) in certifiers.iter().enumerate() {
        let certifier = entry
            .get("certifier")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("certifier {i}: missing or non-string key: certifier"))?;
        let number = |value: &JsonValue, key: &str| {
            value
                .get(key)
                .and_then(JsonValue::as_number)
                .ok_or_else(|| {
                    format!("certifier {i} ({certifier}): missing or non-number key: {key}")
                })
        };
        let exemplars = number(entry, "exemplars")?;
        let attribution = number(entry, "attribution")?;
        if !(0.0..=1.0).contains(&attribution) {
            return Err(format!(
                "certifier {i} ({certifier}): attribution {attribution} outside [0, 1]"
            ));
        }
        let watchdog = entry
            .get("watchdog")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("certifier {i} ({certifier}): missing watchdog object"))?;
        let get_wd = |key: &str| {
            watchdog
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_number())
                .ok_or_else(|| format!("certifier {i} ({certifier}): missing watchdog.{key}"))
        };
        if get_wd("violations")? > get_wd("windows")? {
            return Err(format!(
                "certifier {i} ({certifier}): watchdog violations exceed windows"
            ));
        }
        let by_stage = entry
            .get("by_stage")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("certifier {i} ({certifier}): missing by_stage array"))?;
        let mut attributed = 0.0;
        for (j, bucket) in by_stage.iter().enumerate() {
            let stage = bucket
                .get("stage")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("certifier {i} ({certifier}) by_stage {j}: no stage"))?;
            if Stage::from_name(stage).is_none() {
                return Err(format!(
                    "certifier {i} ({certifier}) by_stage {j}: unknown stage {stage}"
                ));
            }
            let count = number(bucket, "count")?;
            if count < 1.0 {
                return Err(format!(
                    "certifier {i} ({certifier}) by_stage {j} ({stage}): non-positive count"
                ));
            }
            number(bucket, "mean_total_us")?;
            number(bucket, "max_total_us")?;
            attributed += count;
        }
        if attributed > exemplars {
            return Err(format!(
                "certifier {i} ({certifier}): by_stage counts {attributed} exceed exemplars \
                 {exemplars}"
            ));
        }
        let slowest = entry
            .get("slowest")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("certifier {i} ({certifier}): missing slowest array"))?;
        if slowest.len() > 8 {
            return Err(format!(
                "certifier {i} ({certifier}): slowest holds {} trees, cap is 8",
                slowest.len()
            ));
        }
        let mut previous = f64::INFINITY;
        for (j, tree) in slowest.iter().enumerate() {
            let trace = tree
                .get("trace")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("certifier {i} ({certifier}) slowest {j}: no trace"))?;
            if !trace.starts_with('t') {
                return Err(format!(
                    "certifier {i} ({certifier}) slowest {j}: malformed trace id {trace}"
                ));
            }
            let total = number(tree, "total_us")?;
            if total > previous {
                return Err(format!(
                    "certifier {i} ({certifier}) slowest {j}: not sorted slowest-first \
                     ({total} after {previous})"
                ));
            }
            previous = total;
            let spans = tree
                .get("spans")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("certifier {i} ({certifier}) slowest {j}: no spans"))?;
            for (k, span) in spans.iter().enumerate() {
                let stage = span
                    .get("stage")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| {
                        format!("certifier {i} ({certifier}) slowest {j} span {k}: no stage")
                    })?;
                if Stage::from_name(stage).is_none() {
                    return Err(format!(
                        "certifier {i} ({certifier}) slowest {j} span {k}: unknown stage {stage}"
                    ));
                }
                number(span, "us")?;
                if number(span, "depth")? < 1.0 {
                    return Err(format!(
                        "certifier {i} ({certifier}) slowest {j} span {k}: depth below 1"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_engine::CertifierKind;
    use mvcc_telemetry::TelemetrySnapshot;

    fn row(kind: CertifierKind) -> TelemetryRow {
        TelemetryRow {
            certifier: kind,
            threads: 2,
            throughput_tps: 1234.5,
            p99_latency_us: 88.0,
            stages: TelemetrySnapshot::empty(),
            exemplar_count: 0,
            attribution: 1.0,
            watchdog_windows: 0,
            watchdog_violations: 0,
        }
    }

    #[test]
    fn an_emitted_document_validates() {
        let rows: Vec<TelemetryRow> = CertifierKind::all().into_iter().map(row).collect();
        let doc = bench7_document("E17-test", &rows);
        validate_bench7(&doc).unwrap();
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("experiment").and_then(JsonValue::as_str),
            Some("E17-test")
        );
        assert_eq!(
            parsed
                .get("rows")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            6
        );
    }

    #[test]
    fn a_live_run_round_trips_with_stage_quantiles() {
        use mvcc_engine::load::run_closed_loop_instrumented;
        use mvcc_engine::{AdmissionMode, DurabilityConfig, TelemetryMode};
        use mvcc_workload::LoadProfile;
        let profile = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 120,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.7,
            zipf_theta: 0.0,
            seed: 0xb7,
        };
        let report = run_closed_loop_instrumented(
            CertifierKind::Sgt,
            &profile,
            false,
            AdmissionMode::Batched,
            DurabilityConfig::off(),
            TelemetryMode::On,
        );
        let rows = vec![TelemetryRow {
            certifier: CertifierKind::Sgt,
            threads: profile.threads,
            throughput_tps: report.throughput_tps(),
            p99_latency_us: report.metrics.latency_us(0.99).unwrap_or(0.0),
            stages: report.metrics.stages.clone(),
            exemplar_count: report.exemplars.len(),
            attribution: report.exemplar_attribution(),
            watchdog_windows: 0,
            watchdog_violations: 0,
        }];
        assert!(
            !rows[0].stages.is_empty(),
            "a telemetry-on run must record stages"
        );
        let doc = bench7_document("E17-live", &rows);
        validate_bench7(&doc).unwrap();
    }

    #[test]
    fn malformed_documents_are_rejected_with_the_violation_named() {
        assert!(validate_bench7("not json").is_err());
        assert!(validate_bench7("{\"rows\": []}")
            .unwrap_err()
            .contains("experiment"));
        assert!(validate_bench7("{\"experiment\": \"E17\"}")
            .unwrap_err()
            .contains("rows"));
        let bad_row = "{\"experiment\": \"E17\", \"rows\": [{\"certifier\": \"sgt\"}]}";
        assert!(validate_bench7(bad_row).unwrap_err().contains("threads"));
        let bad_quantiles = "{\"experiment\": \"E17\", \"rows\": [{\"certifier\": \"sgt\", \
             \"threads\": 2, \"txn_s\": 10.0, \"p99_commit_us\": 5.0, \"stages\": \
             {\"certify\": {\"unit\": \"us\", \"count\": 3, \"mean\": 2.0, \
             \"p50\": 9.0, \"p95\": 4.0, \"p99\": 5.0, \"p999\": 6.0}}}]}";
        assert!(validate_bench7(bad_quantiles)
            .unwrap_err()
            .contains("not monotone"));
    }

    /// A synthetic traced run: two exemplars dominated by WAL flush and
    /// certify respectively, slowest first, with a flush LSN on the first.
    fn trace_run(kind: CertifierKind) -> TraceRun {
        use mvcc_telemetry::{SpanRecord, TraceId, TraceTree};
        let mut slow = TraceTree::new(TraceId::pack(0, 7));
        slow.total_us = 900;
        slow.push(SpanRecord {
            stage: Stage::Certify,
            dur_us: 40,
            depth: 1,
            lsn: None,
        });
        slow.push(SpanRecord {
            stage: Stage::GroupCommitApply,
            dur_us: 120,
            depth: 1,
            lsn: Some(3),
        });
        slow.push(SpanRecord {
            stage: Stage::WalFlush,
            dur_us: 700,
            depth: 2,
            lsn: Some(3),
        });
        let mut fast = TraceTree::new(TraceId::pack(0, 9));
        fast.total_us = 200;
        fast.push(SpanRecord {
            stage: Stage::Certify,
            dur_us: 150,
            depth: 1,
            lsn: None,
        });
        TraceRun {
            row: TelemetryRow {
                exemplar_count: 2,
                attribution: 1.0,
                watchdog_windows: 4,
                watchdog_violations: 0,
                ..row(kind)
            },
            exemplars: vec![slow, fast],
        }
    }

    #[test]
    fn an_emitted_bench9_document_validates() {
        let runs: Vec<TraceRun> = CertifierKind::all().into_iter().map(trace_run).collect();
        let doc = bench9_document("E18-test", &runs);
        validate_bench9(&doc).unwrap();
        // A BENCH_9 row is a superset of a BENCH_7 row, so the old
        // validator (and the bench_diff gate built on it) accepts it too.
        validate_bench7(&doc).unwrap();
        let parsed = json::parse(&doc).unwrap();
        let rows = parsed.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(
            rows[0].get("exemplars").and_then(JsonValue::as_number),
            Some(2.0)
        );
    }

    #[test]
    fn an_emitted_trace_report_validates_and_names_the_dominant_stage() {
        let runs = vec![trace_run(CertifierKind::Sgt)];
        let doc = trace_report_document("E18-test", &runs);
        validate_trace_report(&doc).unwrap();
        let parsed = json::parse(&doc).unwrap();
        let entry = &parsed
            .get("certifiers")
            .and_then(JsonValue::as_array)
            .unwrap()[0];
        // GroupCommitApply dwarfs the depth-2 WalFlush child in the slow
        // tree only at depth 1 — the dominant stage is a depth-1 ranking.
        let slowest = entry.get("slowest").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            slowest[0].get("trace").and_then(JsonValue::as_str),
            Some("t0.7")
        );
        assert_eq!(
            slowest[0].get("flush_lsn").and_then(JsonValue::as_number),
            Some(3.0)
        );
        let by_stage = entry.get("by_stage").and_then(JsonValue::as_array).unwrap();
        assert!(!by_stage.is_empty());
        for bucket in by_stage {
            let stage = bucket.get("stage").and_then(JsonValue::as_str).unwrap();
            assert!(Stage::from_name(stage).is_some(), "unknown stage {stage}");
        }
    }

    #[test]
    fn a_traced_live_run_round_trips_through_both_documents() {
        use crate::experiments::trace_scaling_table;
        use mvcc_workload::LoadProfile;
        let profile = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 200,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.7,
            zipf_theta: 0.0,
            seed: 0xb9,
        };
        let runs = trace_scaling_table(&profile, &[CertifierKind::Sgt], 1);
        assert_eq!(runs.len(), 1);
        assert!(
            !runs[0].exemplars.is_empty(),
            "a traced run must retain tail exemplars"
        );
        assert_eq!(
            runs[0].row.watchdog_violations, 0,
            "the watchdog must not false-alarm on a correct engine"
        );
        assert!(runs[0].row.watchdog_windows >= 1);
        let doc = bench9_document("E18-live", &runs);
        validate_bench9(&doc).unwrap();
        let report = trace_report_document("E18-live", &runs);
        validate_trace_report(&report).unwrap();
    }

    #[test]
    fn malformed_bench9_and_trace_reports_are_rejected() {
        let mut runs = vec![trace_run(CertifierKind::Sgt)];
        runs[0].row.attribution = 1.5;
        assert!(validate_bench9(&bench9_document("E18", &runs))
            .unwrap_err()
            .contains("attribution"));
        runs[0].row.attribution = 1.0;
        runs[0].row.watchdog_violations = 9;
        assert!(validate_bench9(&bench9_document("E18", &runs))
            .unwrap_err()
            .contains("watchdog_violations"));
        assert!(validate_trace_report("not json").is_err());
        assert!(validate_trace_report("{\"experiment\": \"E18\"}")
            .unwrap_err()
            .contains("certifiers"));
        let unknown_stage = "{\"experiment\": \"E18\", \"certifiers\": [{\"certifier\": \"sgt\", \
             \"exemplars\": 1, \"attribution\": 1.0, \
             \"watchdog\": {\"windows\": 1, \"violations\": 0}, \
             \"by_stage\": [{\"stage\": \"nonsense\", \"count\": 1, \
             \"mean_total_us\": 1.0, \"max_total_us\": 1}], \"slowest\": []}]}";
        assert!(validate_trace_report(unknown_stage)
            .unwrap_err()
            .contains("unknown stage"));
        let unsorted = "{\"experiment\": \"E18\", \"certifiers\": [{\"certifier\": \"sgt\", \
             \"exemplars\": 2, \"attribution\": 1.0, \
             \"watchdog\": {\"windows\": 1, \"violations\": 0}, \"by_stage\": [], \
             \"slowest\": [{\"trace\": \"t0.1\", \"total_us\": 5, \"dominant\": null, \
             \"flush_lsn\": null, \"spans\": []}, {\"trace\": \"t0.2\", \"total_us\": 9, \
             \"dominant\": null, \"flush_lsn\": null, \"spans\": []}]}]}";
        assert!(validate_trace_report(unsorted)
            .unwrap_err()
            .contains("slowest-first"));
    }

    /// A synthetic monitored run: the trace row plus a two-frame
    /// timeline whose second window carries the worst abort rate and
    /// p99, and no alarms.
    fn timeline_run(kind: CertifierKind) -> TimelineRun {
        use mvcc_telemetry::TimelineFrame;
        let mut first = TimelineFrame::zeroed(1);
        first.at_us = 100_000;
        first.window_us = 100_000;
        first.begun = 50;
        first.committed = 48;
        first.aborted = 2;
        first.txn_s = 480.0;
        first.abort_rate = 0.04;
        first.commit.count = 48;
        first.commit.p99 = 90.0;
        let mut second = TimelineFrame::zeroed(2);
        second.at_us = 200_000;
        second.window_us = 100_000;
        second.begun = 40;
        second.committed = 30;
        second.aborted = 10;
        second.txn_s = 300.0;
        second.abort_rate = 0.25;
        second.commit.count = 30;
        second.commit.p99 = 240.0;
        TimelineRun {
            row: trace_run(kind).row,
            timeline: vec![first, second],
            alarms: Vec::new(),
        }
    }

    #[test]
    fn an_emitted_bench10_document_validates_and_summarizes_the_worst_window() {
        let runs: Vec<TimelineRun> = CertifierKind::all().into_iter().map(timeline_run).collect();
        let doc = bench10_document("E19-test", &runs);
        validate_bench10(&doc).unwrap();
        // A BENCH_10 row is a superset of BENCH_9 and BENCH_7 rows, so
        // the older validators (and the bench_diff gate, which reads only
        // certifier + txn_s) accept the document unchanged.
        validate_bench9(&doc).unwrap();
        validate_bench7(&doc).unwrap();
        let parsed = json::parse(&doc).unwrap();
        let rows = parsed.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 6);
        let timeline = rows[0].get("timeline").unwrap();
        assert_eq!(
            timeline.get("frames").and_then(JsonValue::as_number),
            Some(2.0)
        );
        assert_eq!(
            timeline
                .get("max_abort_rate")
                .and_then(JsonValue::as_number),
            Some(0.25)
        );
        assert_eq!(
            timeline.get("worst_p99_us").and_then(JsonValue::as_number),
            Some(240.0)
        );
        assert_eq!(
            timeline.get("alarms").and_then(JsonValue::as_number),
            Some(0.0)
        );
    }

    #[test]
    fn malformed_bench10_documents_are_rejected() {
        let mut runs = vec![timeline_run(CertifierKind::Sgt)];
        runs[0].timeline.clear();
        assert!(validate_bench10(&bench10_document("E19", &runs))
            .unwrap_err()
            .contains("frames"));
        let mut runs = vec![timeline_run(CertifierKind::Sgt)];
        runs[0].timeline[1].abort_rate = 1.5;
        assert!(validate_bench10(&bench10_document("E19", &runs))
            .unwrap_err()
            .contains("max_abort_rate"));
        // A BENCH_9 document (no timeline block) fails the E19 schema.
        let runs = vec![trace_run(CertifierKind::Sgt)];
        assert!(validate_bench10(&bench9_document("E19", &runs))
            .unwrap_err()
            .contains("timeline"));
    }

    #[test]
    fn a_timeline_export_round_trips_through_the_jsonl_validator() {
        use mvcc_telemetry::write_jsonl;
        let run = timeline_run(CertifierKind::Sgt);
        let text = write_jsonl(&run.timeline);
        assert_eq!(validate_timeline_jsonl(&text), Ok(2));
        assert!(validate_timeline_jsonl("").is_err());
        // Repeating a frame breaks strict seq monotonicity.
        let stuck = write_jsonl(&[run.timeline[0].clone(), run.timeline[0].clone()]);
        assert!(validate_timeline_jsonl(&stuck)
            .unwrap_err()
            .contains("does not increase"));
        let mut backwards = run.timeline.clone();
        backwards[1].at_us = 50_000;
        assert!(validate_timeline_jsonl(&write_jsonl(&backwards))
            .unwrap_err()
            .contains("backwards"));
        let mut hot = run.timeline.clone();
        hot.get_mut(1).unwrap().abort_rate = 2.0;
        assert!(validate_timeline_jsonl(&write_jsonl(&hot))
            .unwrap_err()
            .contains("abort_rate"));
    }

    #[test]
    fn a_monitored_live_run_round_trips_through_bench10() {
        use crate::experiments::timeline_scaling_table;
        use mvcc_workload::LoadProfile;
        let profile = LoadProfile {
            threads: 2,
            shards: 2,
            ops: 200,
            entities: 8,
            steps_per_transaction: 3,
            read_ratio: 0.7,
            zipf_theta: 0.0,
            seed: 0xb10,
        };
        let runs = timeline_scaling_table(&profile, &[CertifierKind::Sgt], 1);
        assert_eq!(runs.len(), 1);
        assert!(
            !runs[0].timeline.is_empty(),
            "a monitored run must record at least the closing frame"
        );
        assert!(
            runs[0].alarms.is_empty(),
            "the detector must not false-alarm on a steady run: {:?}",
            runs[0].alarms
        );
        let doc = bench10_document("E19-live", &runs);
        validate_bench10(&doc).unwrap();
        let text = mvcc_telemetry::write_jsonl(&runs[0].timeline);
        validate_timeline_jsonl(&text).unwrap();
    }
}
