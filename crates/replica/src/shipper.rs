//! The background log shipper: a thread that tails the primary's WAL and
//! feeds a replica.
//!
//! The shipper is deliberately dumb — all the care lives in
//! [`mvcc_durability::read_tail`] (CRC checking, cold-tail parking, LSN
//! continuity) and [`crate::Replica::ship_once`] (apply atomicity).  The
//! thread's job is pacing: drain while records flow, park for the poll
//! interval when caught up, and surface — not swallow — I/O errors.  A
//! corrupt log is reported through [`LogShipper::last_error`] and
//! retried at a backed-off pace: a replica that stops silently is worse
//! than one that is loudly stale (the router's staleness bounds are what
//! protect readers either way).

use crate::replica::Replica;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shipper pacing knobs.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Sleep between polls while caught up.
    pub poll: Duration,
    /// Maximum records per poll (bounds how long the replica's apply lock
    /// is held per batch).
    pub batch: usize,
}

impl Default for ShipperConfig {
    fn default() -> Self {
        ShipperConfig {
            poll: Duration::from_millis(1),
            batch: 512,
        }
    }
}

/// Handle to the background shipping thread.  Stop it explicitly with
/// [`LogShipper::stop`] or implicitly by dropping it.
#[derive(Debug)]
pub struct LogShipper {
    stop: Arc<AtomicBool>,
    errors: Arc<AtomicU64>,
    last_error: Arc<TrackedMutex<Option<String>>>,
    handle: Option<JoinHandle<()>>,
}

impl LogShipper {
    /// Spawns a shipping thread feeding `replica` (which knows the WAL
    /// directory it tails).
    pub fn start(replica: Arc<Replica>, config: ShipperConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(AtomicU64::new(0));
        let last_error = Arc::new(TrackedMutex::new(
            lock_class!("replica.shipper-error"),
            None,
        ));
        let stop_flag = Arc::clone(&stop);
        let error_count = Arc::clone(&errors);
        let error_slot = Arc::clone(&last_error);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match replica.ship_once(config.batch) {
                    Ok(receipt) if !receipt.caught_up => {
                        // More is readable right now: keep draining.
                    }
                    Ok(_) => std::thread::sleep(config.poll),
                    Err(e) => {
                        error_count.fetch_add(1, Ordering::Relaxed);
                        *error_slot.lock() = Some(e.to_string());
                        // Back off hard: a corrupt or unreadable log will
                        // not heal in microseconds, and hammering it just
                        // burns the apply lock.
                        std::thread::sleep(config.poll.max(Duration::from_millis(10)));
                    }
                }
            }
        });
        LogShipper {
            stop,
            errors,
            last_error,
            handle: Some(handle),
        }
    }

    /// Number of failed polls so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// The most recent poll error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Signals the thread to stop and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LogShipper {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaConfig;
    use bytes::Bytes;
    use mvcc_core::EntityId;
    use mvcc_durability::DurabilityConfig;
    use mvcc_engine::{CertifierKind, Engine, EngineConfig};
    use std::path::PathBuf;
    use std::time::Instant;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvcc-shipper-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn shipper_follows_a_live_primary_and_parks_when_idle() {
        let dir = temp_dir("live");
        let engine = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(&dir),
                ..EngineConfig::default()
            },
        ));
        // The shipper starts against an *empty* directory mid-stream —
        // the park-and-resume satellite case — then the log appears.
        let replica = Arc::new(
            Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        let shipper = LogShipper::start(Arc::clone(&replica), ShipperConfig::default());
        for i in 0..10u32 {
            let mut s = engine.begin();
            s.write(EntityId(i % 8), Bytes::from(format!("{i}")))
                .unwrap();
            s.commit().unwrap();
        }
        let target = engine.durable_lsn().unwrap() + 1;
        let deadline = Instant::now() + Duration::from_secs(10);
        while replica.watermark() < target {
            assert!(Instant::now() < deadline, "shipper starved");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(shipper.errors(), 0);
        assert_eq!(shipper.last_error(), None);
        shipper.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shipper_resubscribes_across_a_promotion_without_erroring() {
        // Satellite regression: a promotion supersedes the old segment
        // lineage (and may heal segments the shipper's cursor is bound
        // to).  The tailer must treat that as "rebind to the new
        // lineage", never as the "segment vanished mid-tail" error — a
        // shipper that errors out here would strand every replica that
        // was not itself promoted.
        let dir = temp_dir("promo");
        let engine = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(&dir),
                ..EngineConfig::default()
            },
        ));
        let mut s = engine.begin();
        s.write(EntityId(0), Bytes::from_static(b"old-primary"))
            .unwrap();
        s.commit().unwrap();
        let bystander = Arc::new(
            Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        let shipper = LogShipper::start(Arc::clone(&bystander), ShipperConfig::default());
        let electee = Arc::new(
            Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        let (promoted, _report) = electee
            .promote(
                CertifierKind::Sgt,
                EngineConfig {
                    shards: 2,
                    entities: 8,
                    durability: DurabilityConfig::buffered(&dir),
                    ..EngineConfig::default()
                },
            )
            .unwrap();
        // Post-promotion traffic lands in the new segment lineage.
        let mut s = promoted.begin();
        s.write(EntityId(1), Bytes::from_static(b"new-primary"))
            .unwrap();
        s.commit().unwrap();
        let target = promoted.durable_lsn().unwrap() + 1;
        let deadline = Instant::now() + Duration::from_secs(10);
        while bystander.watermark() < target {
            assert!(
                Instant::now() < deadline,
                "shipper never crossed the epoch boundary (errors: {:?})",
                shipper.last_error()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(shipper.errors(), 0, "{:?}", shipper.last_error());
        let mut read = bystander.begin_read();
        assert_eq!(
            read.read(EntityId(0)).unwrap(),
            Bytes::from_static(b"old-primary")
        );
        assert_eq!(
            read.read(EntityId(1)).unwrap(),
            Bytes::from_static(b"new-primary")
        );
        read.finish();
        shipper.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_surfaced_not_swallowed() {
        let dir = temp_dir("corrupt");
        {
            let engine = Arc::new(Engine::new(
                CertifierKind::Sgt,
                EngineConfig {
                    shards: 1,
                    entities: 2,
                    durability: DurabilityConfig {
                        mode: mvcc_durability::DurabilityMode::Buffered,
                        dir: dir.clone(),
                        segment_bytes: 64, // force rotation
                    },
                    ..EngineConfig::default()
                },
            ));
            for _ in 0..8 {
                let mut s = engine.begin();
                s.write(EntityId(0), Bytes::from(vec![b'x'; 32])).unwrap();
                s.commit().unwrap();
            }
        }
        let segments = mvcc_durability::list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "need a middle segment");
        let mut bytes = std::fs::read(&segments[1].1).unwrap();
        let len = bytes.len();
        bytes[len / 2] ^= 0xff;
        std::fs::write(&segments[1].1, &bytes).unwrap();
        let replica = Arc::new(
            Replica::open(ReplicaConfig::new(1, 2, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        let shipper = LogShipper::start(Arc::clone(&replica), ShipperConfig::default());
        let deadline = Instant::now() + Duration::from_secs(10);
        while shipper.errors() == 0 {
            assert!(Instant::now() < deadline, "error never surfaced");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(shipper.last_error().is_some());
        shipper.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
