//! The read-scaling router: read-only sessions routed to replicas under
//! explicit staleness policies.
//!
//! A follower read is only as good as its staleness contract.  The
//! router makes the contract explicit — [`ReadPolicy`] — and *fails*
//! rather than silently serving something staler:
//!
//! * [`ReadPolicy::Latest`] — the snapshot must cover the primary's
//!   durable horizon as sampled at request time.  On a stalled replica
//!   this degrades to [`RouterError::Stale`] after the configured wait,
//!   never to a silently old answer.
//! * [`ReadPolicy::BoundedLag`]`(n)` — the snapshot may trail that
//!   horizon by at most `n` log records.
//! * [`ReadPolicy::ExactLsn`]`(lsn)` — the snapshot must cover the given
//!   LSN (a client replaying a known point).
//!
//! **Read-your-writes**: a session that committed on the primary holds
//! its commit record's LSN ([`mvcc_engine::Session::commit_durable`]);
//! [`ReadRouter::begin_read_after`] waits until a replica's watermark
//! passes it, so the routed snapshot always contains the session's own
//! commit, whatever else the policy allows.
//!
//! The horizon compared against is [`mvcc_engine::Engine::durable_lsn`]
//! — the flushed prefix — not the writer's buffered tail: a replica can
//! only ever observe flushed records, so demanding more than the flushed
//! horizon would turn `Latest` into a permanent stall.
//!
//! With no replicas attached the router serves reads from the primary
//! itself (the E15 baseline): every policy is then trivially satisfied.

use crate::replica::{Replica, ReplicaReadSession};
use bytes::Bytes;
use mvcc_core::EntityId;
use mvcc_engine::{Engine, EngineError, Session};
use mvcc_store::StoreError;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How stale a routed read may be, relative to the primary's durable
/// horizon sampled when the read is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPolicy {
    /// The snapshot must cover the entire durable horizon.
    Latest,
    /// The snapshot may trail the durable horizon by at most this many
    /// log records.
    BoundedLag(u64),
    /// The snapshot must cover this LSN (inclusive).
    ExactLsn(u64),
}

impl fmt::Display for ReadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadPolicy::Latest => write!(f, "latest"),
            ReadPolicy::BoundedLag(n) => write!(f, "bounded-lag({n})"),
            ReadPolicy::ExactLsn(lsn) => write!(f, "exact-lsn({lsn})"),
        }
    }
}

/// Router pacing knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// How long a read may park waiting for a replica to satisfy its
    /// policy before the router gives up.
    pub wait_timeout: Duration,
    /// Sleep between watermark re-checks while parked.
    pub poll: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            wait_timeout: Duration::from_secs(2),
            poll: Duration::from_micros(100),
        }
    }
}

/// Why a router refused a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// No replica satisfied the policy within the wait budget.  The read
    /// was *not* served — degrading loudly is the contract.
    Stale {
        /// The policy that could not be met.
        policy: ReadPolicy,
        /// The watermark the policy required.
        needed: u64,
        /// The best watermark any replica had reached.
        best: u64,
    },
    /// The routed primary has been deposed: a replica was promoted over
    /// its WAL epoch, so it can never commit again.  Writers get this
    /// from the [`WriteRouter`] until failover installs the promoted
    /// primary — degrading loudly here is what keeps a stranded writer
    /// from silently talking to a fenced engine.
    Deposed {
        /// The deposed primary's (stale) epoch.
        epoch: u64,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::Stale {
                policy,
                needed,
                best,
            } => write!(
                f,
                "no replica satisfies {policy}: needed watermark {needed}, best {best}"
            ),
            RouterError::Deposed { epoch } => write!(
                f,
                "routed primary (epoch {epoch}) is deposed; retry after failover installs the promoted primary"
            ),
        }
    }
}

impl std::error::Error for RouterError {}

/// A routed read's failure: store-level on a replica, engine-level on
/// the primary fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The replica's store refused the read.
    Store(StoreError),
    /// The primary engine aborted the read session.
    Engine(EngineError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Store(e) => write!(f, "{e}"),
            ReadError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A read-only session the router opened: pinned on a replica, or served
/// by the primary when no replicas are attached.
#[derive(Debug)]
pub enum RoutedRead {
    /// Pinned at a replica's apply watermark.
    Replica(ReplicaReadSession),
    /// A plain primary session (the no-replica baseline).
    Primary(Session),
}

impl RoutedRead {
    /// Reads `entity` at the session's snapshot.
    pub fn read(&mut self, entity: EntityId) -> Result<Bytes, ReadError> {
        match self {
            RoutedRead::Replica(session) => session.read(entity).map_err(ReadError::Store),
            RoutedRead::Primary(session) => session.read(entity).map_err(ReadError::Engine),
        }
    }

    /// The apply watermark the read is pinned at (`None` when served by
    /// the primary, which is never stale).
    pub fn snapshot_lsn(&self) -> Option<u64> {
        match self {
            RoutedRead::Replica(session) => Some(session.snapshot_lsn()),
            RoutedRead::Primary(_) => None,
        }
    }

    /// Finishes the session (replica reads are recorded into the
    /// replica's history; a primary session commits).
    pub fn finish(self) {
        match self {
            RoutedRead::Replica(session) => session.finish(),
            RoutedRead::Primary(session) => {
                // A read-only commit: certifiers admit it or the session
                // was already aborted by a failed read.
                let _ = session.commit();
            }
        }
    }
}

/// Routes read-only sessions across a primary's replicas (see the module
/// docs).
pub struct ReadRouter {
    primary: Arc<Engine>,
    replicas: Vec<Arc<Replica>>,
    config: RouterConfig,
    next: AtomicUsize,
}

impl fmt::Debug for ReadRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadRouter")
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}

impl ReadRouter {
    /// Builds a router over `primary` and its `replicas`.
    pub fn new(primary: Arc<Engine>, replicas: Vec<Arc<Replica>>, config: RouterConfig) -> Self {
        ReadRouter {
            primary,
            replicas,
            config,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of replicas attached.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The primary's durable horizon as a watermark (one past the newest
    /// flushed LSN; 0 before anything flushed or with durability off).
    fn durable_next(&self) -> u64 {
        self.primary.durable_lsn().map_or(0, |l| l + 1)
    }

    /// Opens a read-only session under `policy`.
    pub fn begin_read(&self, policy: ReadPolicy) -> Result<RoutedRead, RouterError> {
        self.route(policy, 0)
    }

    /// Opens a read-only session under `policy` that additionally
    /// observes the caller's own primary commit at `commit_lsn`
    /// (read-your-writes): the routed snapshot's watermark is waited past
    /// that LSN, whatever the policy alone would tolerate.
    pub fn begin_read_after(
        &self,
        policy: ReadPolicy,
        commit_lsn: u64,
    ) -> Result<RoutedRead, RouterError> {
        self.route(policy, commit_lsn + 1)
    }

    fn route(&self, policy: ReadPolicy, min_watermark: u64) -> Result<RoutedRead, RouterError> {
        let durable_next = self.durable_next();
        let needed = match policy {
            ReadPolicy::Latest => durable_next,
            ReadPolicy::BoundedLag(n) => durable_next.saturating_sub(n),
            ReadPolicy::ExactLsn(lsn) => lsn + 1,
        }
        .max(min_watermark);
        if self.replicas.is_empty() {
            // Baseline mode: the primary serves the read and trivially
            // satisfies every staleness bound.
            return Ok(RoutedRead::Primary(self.primary.begin()));
        }
        let metrics = self.primary.metrics();
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        // lint: allow(clock) — bounded-lag routing waits on wall time by definition
        let began = Instant::now();
        let mut waited = false;
        loop {
            let mut best = 0u64;
            for i in 0..self.replicas.len() {
                let replica = &self.replicas[(start + i) % self.replicas.len()];
                // The *safe* watermark: the freshest snapshot the replica
                // can serve without risking a non-serializable merge (see
                // `Replica::begin_read`) — staleness policies are honest
                // only if held against what will actually be pinned.
                let watermark = replica.safe_watermark();
                best = best.max(watermark);
                if watermark >= needed {
                    let session = replica.begin_read();
                    if waited {
                        metrics.record_repl_wait(began.elapsed());
                    }
                    metrics.record_repl_routed_read(
                        durable_next.saturating_sub(session.snapshot_lsn()),
                    );
                    return Ok(RoutedRead::Replica(session));
                }
            }
            if began.elapsed() >= self.config.wait_timeout {
                metrics.record_repl_wait(began.elapsed());
                return Err(RouterError::Stale {
                    policy,
                    needed,
                    best,
                });
            }
            waited = true;
            std::thread::sleep(self.config.poll);
        }
    }
}

/// Routes *write* sessions to the current primary — the failover-facing
/// sibling of [`ReadRouter`].  Holds the one mutable cell of the whole
/// failover story: which engine is primary right now.
///
/// * [`WriteRouter::begin`] opens a session on the current primary, or
///   refuses with [`RouterError::Deposed`] when that engine has been
///   fenced out by a promotion — a stranded writer learns loudly that it
///   must wait for (or trigger) failover instead of queueing work on an
///   engine that can never commit it.
/// * [`WriteRouter::install`] swaps in a promoted engine.  Installs are
///   **epoch-monotone**: an install whose epoch does not exceed the
///   incumbent's is ignored, so a late or duplicate promotion can never
///   roll the routing back to a deposed primary.
///
/// A session begun *before* a promotion races it by design — the engine
/// itself fences those at commit ([`mvcc_engine::EngineError::Deposed`]);
/// the router only keeps *new* sessions off known-deposed engines.
pub struct WriteRouter {
    primary: mvcc_analysis::lockdep::TrackedMutex<Arc<Engine>>,
    /// Promotions actually installed (epoch-monotone swaps).
    installs: AtomicUsize,
}

impl fmt::Debug for WriteRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriteRouter")
            .field("epoch", &self.primary.lock().epoch())
            .field("installs", &self.installs.load(Ordering::Relaxed))
            .finish()
    }
}

impl WriteRouter {
    /// Builds a router with `primary` as the incumbent.
    pub fn new(primary: Arc<Engine>) -> Self {
        WriteRouter {
            primary: mvcc_analysis::lockdep::TrackedMutex::new(
                mvcc_analysis::lock_class!("replica.router-primary"),
                primary,
            ),
            installs: AtomicUsize::new(0),
        }
    }

    /// The engine currently routed to (the incumbent primary).
    pub fn primary(&self) -> Arc<Engine> {
        Arc::clone(&self.primary.lock())
    }

    /// The incumbent primary's epoch.
    pub fn epoch(&self) -> u64 {
        self.primary.lock().epoch()
    }

    /// Number of promotions installed so far.
    pub fn installs(&self) -> usize {
        self.installs.load(Ordering::Relaxed)
    }

    /// Installs a promoted engine as the new primary.  Ignored (returns
    /// `false`) unless `engine`'s epoch strictly exceeds the incumbent's
    /// — duplicate or out-of-order installs can never reinstate a deposed
    /// primary.
    pub fn install(&self, engine: Arc<Engine>) -> bool {
        let mut primary = self.primary.lock();
        if engine.epoch() <= primary.epoch() {
            return false;
        }
        *primary = engine;
        self.installs.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Opens a write session on the current primary, or refuses with
    /// [`RouterError::Deposed`] when the incumbent is known fenced.
    pub fn begin(&self) -> Result<Session, RouterError> {
        let primary = self.primary.lock();
        if primary.is_deposed() {
            return Err(RouterError::Deposed {
                epoch: primary.epoch(),
            });
        }
        Ok(primary.begin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::{Replica, ReplicaConfig};
    use crate::shipper::{LogShipper, ShipperConfig};
    use mvcc_durability::DurabilityConfig;
    use mvcc_engine::{CertifierKind, EngineConfig};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvcc-router-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const X: EntityId = EntityId(0);

    fn primary(dir: &std::path::Path) -> Arc<Engine> {
        Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(dir),
                ..EngineConfig::default()
            },
        ))
    }

    fn replica_over(dir: &std::path::Path, engine: &Arc<Engine>) -> Arc<Replica> {
        let mut config = ReplicaConfig::new(2, 8, Bytes::from_static(b"0"));
        config.metrics = Some(engine.metrics_handle());
        Arc::new(Replica::open(config, dir).unwrap())
    }

    fn quick_config() -> RouterConfig {
        RouterConfig {
            wait_timeout: Duration::from_millis(50),
            poll: Duration::from_micros(50),
        }
    }

    #[test]
    fn latest_waits_for_catch_up_and_stale_replicas_fail_loudly() {
        let dir = temp_dir("latest");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"fresh")).unwrap();
        s.commit().unwrap();
        let replica = replica_over(&dir, &engine);
        let router = ReadRouter::new(
            Arc::clone(&engine),
            vec![Arc::clone(&replica)],
            quick_config(),
        );
        // The replica has shipped nothing: Latest must refuse (degrade
        // loudly), never serve the stale pre-seed silently.
        let err = router.begin_read(ReadPolicy::Latest).unwrap_err();
        assert!(matches!(err, RouterError::Stale { best: 0, .. }), "{err}");
        // An unbounded-lag read is honest about what it serves.
        let mut anything = router.begin_read(ReadPolicy::BoundedLag(u64::MAX)).unwrap();
        assert_eq!(anything.read(X).unwrap(), Bytes::from_static(b"0"));
        anything.finish();
        // Once caught up, Latest succeeds and serves the fresh value.
        replica.catch_up().unwrap();
        let mut read = router.begin_read(ReadPolicy::Latest).unwrap();
        assert_eq!(read.read(X).unwrap(), Bytes::from_static(b"fresh"));
        assert!(read.snapshot_lsn().unwrap() > engine.durable_lsn().unwrap());
        read.finish();
        let snap = engine.metrics().snapshot();
        assert!(snap.repl_routed_reads >= 2);
        assert!(snap.repl_wait_stalls >= 1, "the refused read stalled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_your_writes_waits_for_the_commit_lsn() {
        let dir = temp_dir("ryw");
        let engine = primary(&dir);
        let replica = replica_over(&dir, &engine);
        let shipper = LogShipper::start(
            Arc::clone(&replica),
            ShipperConfig {
                poll: Duration::from_micros(200),
                batch: 64,
            },
        );
        let router = ReadRouter::new(
            Arc::clone(&engine),
            vec![Arc::clone(&replica)],
            RouterConfig::default(),
        );
        for i in 0..20u32 {
            let mut s = engine.begin();
            s.write(X, Bytes::from(format!("v{i}"))).unwrap();
            let lsn = s.commit_durable().unwrap().expect("durable");
            // Read-your-writes: the routed snapshot must contain our own
            // commit, even while the shipper races behind.
            let mut read = router
                .begin_read_after(ReadPolicy::BoundedLag(u64::MAX), lsn)
                .unwrap();
            assert!(
                read.snapshot_lsn().unwrap() > lsn,
                "snapshot below own commit: {} <= {lsn}",
                read.snapshot_lsn().unwrap()
            );
            assert_eq!(read.read(X).unwrap(), Bytes::from(format!("v{i}")));
            read.finish();
        }
        shipper.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_replicas_falls_back_to_the_primary() {
        let dir = temp_dir("fallback");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"p")).unwrap();
        s.commit().unwrap();
        let router = ReadRouter::new(Arc::clone(&engine), Vec::new(), quick_config());
        assert_eq!(router.replica_count(), 0);
        let mut read = router.begin_read(ReadPolicy::Latest).unwrap();
        assert_eq!(read.snapshot_lsn(), None, "primary reads are never stale");
        assert_eq!(read.read(X).unwrap(), Bytes::from_static(b"p"));
        read.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exact_lsn_pins_at_or_past_the_requested_point() {
        let dir = temp_dir("exact");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"a")).unwrap();
        let lsn = s.commit_durable().unwrap().unwrap();
        let replica = replica_over(&dir, &engine);
        let router = ReadRouter::new(
            Arc::clone(&engine),
            vec![Arc::clone(&replica)],
            quick_config(),
        );
        // Not yet applied: ExactLsn refuses within the wait budget.
        assert!(router.begin_read(ReadPolicy::ExactLsn(lsn)).is_err());
        replica.catch_up().unwrap();
        let read = router.begin_read(ReadPolicy::ExactLsn(lsn)).unwrap();
        assert!(read.snapshot_lsn().unwrap() > lsn);
        read.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_robin_spreads_reads_across_replicas() {
        let dir = temp_dir("rr");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let r1 = replica_over(&dir, &engine);
        let r2 = replica_over(&dir, &engine);
        r1.catch_up().unwrap();
        r2.catch_up().unwrap();
        let router = ReadRouter::new(
            Arc::clone(&engine),
            vec![Arc::clone(&r1), Arc::clone(&r2)],
            quick_config(),
        );
        for _ in 0..8 {
            let mut read = router.begin_read(ReadPolicy::Latest).unwrap();
            let _ = read.read(X).unwrap();
            read.finish();
        }
        // Both replicas served some reads (round-robin start index).
        assert!(r1.history().readers_recorded() >= 3);
        assert!(r2.history().readers_recorded() >= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
