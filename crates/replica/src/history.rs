//! The replica's own history log: shipped admission steps plus the
//! read-only transactions the replica served, spliced at their snapshot
//! positions.
//!
//! A replica-served read-only transaction is pinned at an apply watermark
//! `W`: it observes exactly the committed state of the shipped prefix
//! `[0, W)`.  Appending its read steps wherever they *executed* would lie
//! to the classifiers — a commit applied between two of its reads would
//! appear to precede a read that actually saw the older version.  The
//! honest position is the snapshot point itself: the transaction's steps
//! are spliced into the history right after the last shipped step below
//! `W` (snapshot transactions serialize at their snapshot).  The
//! [`ReplicaHistory::combined_schedule`] the offline checkers certify is
//! that merge.

use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_core::{Schedule, Step, TxId};
use std::collections::BTreeSet;

/// One read-only transaction served by the replica.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ReaderEntry {
    /// The reader's transaction id (from the replica's own id space).
    tx: TxId,
    /// The apply watermark the reader was pinned at: every shipped record
    /// with `lsn < watermark` was applied before any of its reads.
    watermark: u64,
    /// Tie-breaker among readers pinned at the same watermark (their
    /// relative order is irrelevant — read-only transactions never
    /// conflict — but the merge must be deterministic).
    seq: u64,
    /// The reader's steps, in read order.
    steps: Vec<Step>,
}

#[derive(Debug, Default)]
struct HistoryInner {
    /// Shipped admitted steps with the LSN of the record that carried
    /// them, in log order (committed and discarded writers alike).
    shipped: Vec<(u64, Step)>,
    /// Transactions with a shipped commit record.
    committed: BTreeSet<TxId>,
    /// Finished read-only transactions served by this replica.
    readers: Vec<ReaderEntry>,
    reader_seq: u64,
}

/// The replica's append-only history (see the module docs).
#[derive(Debug)]
pub struct ReplicaHistory {
    record: bool,
    inner: TrackedMutex<HistoryInner>,
}

impl ReplicaHistory {
    /// Creates the history; with `record` off only commit membership is
    /// tracked (long soak runs skip the step log entirely).
    pub fn new(record: bool) -> Self {
        ReplicaHistory {
            record,
            inner: TrackedMutex::new(lock_class!("replica.history"), HistoryInner::default()),
        }
    }

    /// Records one shipped step record (read or write) at its LSN.
    pub fn record_shipped(&self, lsn: u64, step: Step) {
        if self.record {
            self.inner.lock().shipped.push((lsn, step));
        }
    }

    /// Records a shipped commit.  Gated on recording like the steps:
    /// commit membership only feeds the committed projections, and a
    /// recording-off replica (long soak runs) must not grow any
    /// per-transaction state without bound.
    pub fn record_committed(&self, tx: TxId) {
        if self.record {
            self.inner.lock().committed.insert(tx);
        }
    }

    /// Records one finished replica-served read-only transaction pinned
    /// at `watermark`.
    pub fn record_reader(&self, tx: TxId, watermark: u64, steps: Vec<Step>) {
        if !self.record || steps.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let seq = inner.reader_seq;
        inner.reader_seq += 1;
        inner.readers.push(ReaderEntry {
            tx,
            watermark,
            seq,
            steps,
        });
    }

    /// Transactions with a shipped commit record.
    pub fn committed(&self) -> BTreeSet<TxId> {
        self.inner.lock().committed.clone()
    }

    /// Number of read-only transactions recorded.
    pub fn readers_recorded(&self) -> usize {
        self.inner.lock().readers.len()
    }

    /// The combined committed history: the shipped steps of committed
    /// transactions, in log order, with every replica-served reader's
    /// steps spliced in right after the last shipped step below its
    /// watermark.  This single schedule is what the offline classifiers
    /// certify.
    pub fn combined_schedule(&self) -> Schedule {
        let inner = self.inner.lock();
        let mut readers: Vec<&ReaderEntry> = inner.readers.iter().collect();
        readers.sort_by_key(|r| (r.watermark, r.seq));
        let mut merged = Vec::with_capacity(
            inner.shipped.len() + readers.iter().map(|r| r.steps.len()).sum::<usize>(),
        );
        let mut next_reader = 0usize;
        for &(lsn, step) in &inner.shipped {
            while next_reader < readers.len() && readers[next_reader].watermark <= lsn {
                merged.extend_from_slice(&readers[next_reader].steps);
                next_reader += 1;
            }
            if inner.committed.contains(&step.tx) {
                merged.push(step);
            }
        }
        for reader in &readers[next_reader..] {
            merged.extend_from_slice(&reader.steps);
        }
        Schedule::from_steps(merged)
    }

    /// The committed projection of the shipped history alone (no
    /// replica-served readers) — must equal the primary's committed
    /// schedule over the shipped prefix.
    pub fn shipped_schedule(&self) -> Schedule {
        let inner = self.inner.lock();
        Schedule::from_steps(
            inner
                .shipped
                .iter()
                .filter(|(_, s)| inner.committed.contains(&s.tx))
                .map(|&(_, s)| s)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::EntityId;

    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1);

    #[test]
    fn readers_splice_at_their_snapshot_position() {
        let h = ReplicaHistory::new(true);
        // Shipped: W1(x)@0, commit T1; W2(x)@2, commit T2.
        h.record_shipped(0, Step::write(TxId(1), X));
        h.record_committed(TxId(1));
        h.record_shipped(2, Step::write(TxId(2), X));
        h.record_committed(TxId(2));
        // A reader pinned at watermark 2 (T1 applied, T2 not): its read
        // must land between the two writes.
        h.record_reader(TxId(100), 2, vec![Step::read(TxId(100), X)]);
        // A reader pinned after everything.
        h.record_reader(TxId(101), 4, vec![Step::read(TxId(101), X)]);
        let combined = h.combined_schedule();
        let txs: Vec<TxId> = combined.steps().iter().map(|s| s.tx).collect();
        assert_eq!(
            txs,
            vec![TxId(1), TxId(100), TxId(2), TxId(101)],
            "{combined}"
        );
    }

    #[test]
    fn uncommitted_shipped_steps_are_projected_out() {
        let h = ReplicaHistory::new(true);
        h.record_shipped(0, Step::write(TxId(1), X));
        h.record_shipped(1, Step::write(TxId(2), Y)); // never commits
        h.record_committed(TxId(1));
        assert_eq!(h.combined_schedule().len(), 1);
        assert_eq!(h.shipped_schedule().len(), 1);
    }

    #[test]
    fn readers_at_the_same_watermark_keep_their_serve_order() {
        let h = ReplicaHistory::new(true);
        h.record_shipped(0, Step::write(TxId(1), X));
        h.record_committed(TxId(1));
        h.record_reader(TxId(100), 1, vec![Step::read(TxId(100), X)]);
        h.record_reader(TxId(101), 1, vec![Step::read(TxId(101), X)]);
        let txs: Vec<TxId> = h.combined_schedule().steps().iter().map(|s| s.tx).collect();
        assert_eq!(txs, vec![TxId(1), TxId(100), TxId(101)]);
    }

    #[test]
    fn recording_off_retains_nothing() {
        let h = ReplicaHistory::new(false);
        h.record_shipped(0, Step::write(TxId(1), X));
        h.record_committed(TxId(1));
        h.record_reader(TxId(100), 1, vec![Step::read(TxId(100), X)]);
        assert_eq!(h.combined_schedule().len(), 0);
        assert_eq!(h.committed().len(), 0, "no unbounded state in off mode");
        assert_eq!(h.readers_recorded(), 0);
    }
}
