//! # mvcc-replica
//!
//! WAL log-shipping read replicas for the MVCC engine: snapshot-consistent
//! follower reads and a read-scaling router — the first multi-node-shaped
//! subsystem of the workspace.
//!
//! The paper's multiversion classes are exactly what makes read scaling
//! safe: a read-only transaction served at a consistent *committed*
//! snapshot can be merged into the primary's history without leaving the
//! certified class.  `mvcc-durability` made the admission order durable —
//! the write-ahead log *is* the history — so a replica that tails the log
//! and applies only commit records reconstructs, at every apply point, a
//! committed prefix of exactly the history the primary's certifier ruled
//! admissible:
//!
//! * [`replica`] — [`Replica`]: applies the shipped records into its own
//!   recovered-from [`mvcc_engine::ShardedStore`] (only
//!   [`mvcc_durability::WalRecord::Commit`] moves data — ACA across the
//!   wire, the same argument as crash recovery), exposes a monotone
//!   **apply watermark** (global LSN + per-shard commit timestamps),
//!   cuts local checkpoints and resumes from them after a restart;
//! * [`shipper`] — [`LogShipper`]: the tailing thread, batched and
//!   CRC-checked through [`mvcc_durability::read_tail`], parking on cold
//!   tails (torn record, unwritten segment, empty directory) and resuming
//!   without loss;
//! * [`history`] — [`ReplicaHistory`]: the replica's own record of the
//!   shipped admission history *plus* the read-only transactions it
//!   served, each spliced in at its snapshot's LSN position, so the
//!   combined history is a single schedule the offline `mvcc-classify`
//!   checkers can certify — "theory checks the replica";
//! * [`router`] — [`ReadRouter`]: opens read-only sessions routed to a
//!   replica and pinned at that replica's newest *safe* watermark (a
//!   transaction-consistent point at or below the apply watermark),
//!   under a [`ReadPolicy`] staleness bound (`Latest`, `BoundedLag(n)`,
//!   `ExactLsn`), with read-your-writes for sessions that committed on
//!   the primary (wait for the session's commit LSN); and
//!   [`WriteRouter`]: routes write sessions to the current primary,
//!   refusing with [`RouterError::Deposed`] once the incumbent is fenced
//!   and swapping in promoted engines epoch-monotonically;
//! * [`leader`] — [`LeaderDriver`]: the lease-based leadership driver —
//!   after enough consecutive silent heartbeat checks it elects the
//!   replica with the longest absorbed prefix, promotes it over the
//!   shared log ([`Replica::promote`] →
//!   [`mvcc_engine::Engine::promote_recover`], which fences the old
//!   primary's epoch), and installs the new engine in the
//!   [`WriteRouter`] — failover with no resurrected writes, re-checked
//!   by the chaos harness in `tests/failover_chaos.rs`.
//!
//! ## Why follower reads preserve the certified class
//!
//! The certifier guarantees every prefix of its admission history has a
//! committed projection in its class, and commit-less transactions never
//! apply on the replica, so no follower read can observe uncommitted
//! data (ACA).  That alone is *not* enough: under non-strict certifiers
//! (SGT, TSO, MVTO, MV-SGT) commit order can invert a serialization
//! dependency, and a snapshot pinned **between a transaction's shipped
//! steps and its commit record** can carry an anti-dependency back into
//! the snapshot — the combined execution would not be serializable at
//! all (the `wedged_reader_between_inverted_commits_stays_serializable`
//! regression pins the exact interleaving).  Replicas therefore pin
//! follower reads only at **transaction-consistent safe points**: log
//! positions no in-flight transaction straddles, tracked exactly from
//! the shipped begin/commit/abort records (the replica-side analogue of
//! recovery's "discard every in-flight transaction", and of the *safe
//! snapshots* serializable deferrable reads wait for in real systems).
//! At a safe point every committed transaction lies entirely before or
//! entirely after the cut, so a read-only transaction spliced there
//! reads exactly what a serial continuation of the committed prefix
//! would read, and no edge can point from the reader back into the
//! prefix — the combined history stays in class, re-checked end to end
//! by the `replica_loop` tests for all six certifiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod leader;
pub mod replica;
pub mod router;
pub mod shipper;

pub use history::ReplicaHistory;
pub use leader::{LeaderConfig, LeaderDriver};
pub use replica::{Replica, ReplicaConfig, ReplicaReadSession, ShipReceipt};
pub use router::{
    ReadError, ReadPolicy, ReadRouter, RoutedRead, RouterConfig, RouterError, WriteRouter,
};
pub use shipper::{LogShipper, ShipperConfig};

// Re-export the value type, matching the store/engine convention.
pub use bytes::Bytes;
