//! The replica proper: apply-only ingestion of the shipped log into a
//! local sharded store, the apply watermark, pinned read sessions, local
//! checkpoints and restart/resume.
//!
//! A replica never runs a certifier and never invents state: the only
//! record kind that moves data is [`WalRecord::Commit`] — write records
//! park in a pending map until their commit arrives (or an abort / the
//! end of the stream discards them), so no follower read can ever observe
//! uncommitted data.  This is *avoids cascading aborts* carried across
//! the wire, the same argument that makes crash recovery
//! class-preserving.
//!
//! Commit records apply with the **primary's** per-shard commit
//! timestamps ([`mvcc_store::MvStore::apply_committed`]), so snapshot
//! visibility on the replica reproduces the primary's exactly; a commit
//! record's multi-shard entries apply under the replica's apply lock,
//! atomically with respect to read pinning, so a pinned session can
//! never see a cross-shard commit half-applied (no fractured follower
//! reads).
//!
//! The **apply watermark** is the next LSN the replica will apply — it
//! advances monotonically after each record's effects land, and is the
//! single number the router compares against the primary's durable
//! horizon for staleness bounds and wait-for-LSN.

use crate::history::ReplicaHistory;
use bytes::Bytes;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_core::{EntityId, Step, TxId};
use mvcc_durability::{
    latest_checkpoint, read_tail, write_checkpoint, CheckpointData, RecoveredShard,
    ShardCheckpoint, WalCursor, WalRecord,
};
use mvcc_engine::{
    CertifierKind, Engine, EngineConfig, EngineMetrics, RecoveryReport, ShardedStore,
};
use mvcc_store::{gc, StoreError, TxHandle};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// First transaction id of the replica's read-only id space: far above
/// anything a primary allocates in these workloads, far below the
/// [`TxId::INITIAL`]/[`TxId::FINAL`] padding ids, so combined schedules
/// never collide.
pub const READER_TX_BASE: u32 = 0x4000_0000;

/// Replica construction parameters.  Topology (`shards`, `entities`,
/// `initial`) must match the primary's — the log carries entity ids, not
/// the hash layout.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Number of store shards (must equal the primary's).
    pub shards: usize,
    /// Number of pre-created entities (must equal the primary's).
    pub entities: usize,
    /// Initial version payload of every entity (must equal the primary's).
    pub initial: Bytes,
    /// Record the replica history (required to classify combined
    /// histories offline; turn off for long soak runs).
    pub record_history: bool,
    /// Directory for the replica's *local* checkpoints (its resume
    /// state).  `None` disables checkpointing; restart then re-ships the
    /// whole log.
    pub checkpoint_dir: Option<PathBuf>,
    /// Metrics sink — pass the primary engine's
    /// [`mvcc_engine::Engine::metrics_handle`] so shipping/apply counters
    /// land in the same `Display` block as the durability metrics.
    pub metrics: Option<Arc<EngineMetrics>>,
}

impl ReplicaConfig {
    /// A config mirroring the given topology, history recording on, no
    /// checkpoint dir, no metrics sink.
    pub fn new(shards: usize, entities: usize, initial: Bytes) -> Self {
        ReplicaConfig {
            shards,
            entities,
            initial,
            record_history: true,
            checkpoint_dir: None,
            metrics: None,
        }
    }
}

/// The outcome of one [`Replica::ship_once`] poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShipReceipt {
    /// Records shipped and applied by this poll.
    pub records: usize,
    /// Commit records among them (the ones that moved data).
    pub commits: usize,
    /// `true` when the poll drained everything currently readable (park
    /// until the primary appends more).
    pub caught_up: bool,
}

/// Apply-side state guarded by the replica's one apply lock.
struct ApplyState {
    cursor: WalCursor,
    /// Write records awaiting their commit record, per transaction.
    pending: HashMap<TxId, Vec<(EntityId, Bytes)>>,
    /// Transactions with a shipped begin/step record but no commit or
    /// abort yet — the *straddlers* that make a log position unsafe to
    /// read at.
    open: std::collections::HashSet<TxId>,
    /// Per-shard commit-timestamp high-water marks implied by the
    /// commit records applied so far (mirrors each store's counter,
    /// maintained here so safe points can be sampled without touching
    /// the store locks).
    shard_ts: Vec<u64>,
    /// The newest **transaction-consistent safe point**: a watermark at
    /// which no transaction straddled the log (every transaction with a
    /// step below it also committed or aborted below it).  Follower
    /// reads pin here — a commit-prefix snapshot taken *between* a
    /// transaction's steps and its commit record is not serialization-
    /// consistent under non-strict certifiers (commit order can invert a
    /// dependency), and a reader wedged there could make the combined
    /// history leave the certified class.  Safe points are exactly the
    /// cuts closed under every conflict edge, the replica-side analogue
    /// of recovery's "discard all in-flight transactions".
    safe_lsn: u64,
    /// The per-shard timestamps at `safe_lsn` (what a pinned reader's
    /// snapshots are begun at).
    safe_ts: Vec<u64>,
}

impl ApplyState {
    /// Folds one shipped record into the open-transaction set and the
    /// shard-timestamp mirror, then advances the safe point if the
    /// position right after `lsn` is transaction-consistent.
    fn track_safety(&mut self, lsn: u64, record: &WalRecord) {
        match record {
            WalRecord::Begin { tx } => {
                self.open.insert(*tx);
            }
            WalRecord::Read { tx, .. } | WalRecord::Write { tx, .. } => {
                // Begin records ride with the first step, but be
                // defensive about logs that lack them.
                self.open.insert(*tx);
            }
            WalRecord::Commit { entries } => {
                for entry in entries {
                    self.open.remove(&entry.tx);
                    for &(shard, ts) in &entry.shards {
                        if let Some(slot) = self.shard_ts.get_mut(shard as usize) {
                            *slot = (*slot).max(ts);
                        }
                    }
                }
            }
            WalRecord::Abort { tx } => {
                self.open.remove(tx);
            }
            WalRecord::Checkpoint { .. } => {}
        }
        if self.open.is_empty() {
            self.safe_lsn = lsn + 1;
            self.safe_ts.clone_from(&self.shard_ts);
        }
    }
}

/// A log-shipping read replica (see the module docs).
pub struct Replica {
    /// The primary's WAL directory this replica tails.
    wal_dir: PathBuf,
    config: ReplicaConfig,
    shards: ShardedStore,
    state: TrackedMutex<ApplyState>,
    history: ReplicaHistory,
    /// Next LSN to apply — the apply watermark (monotone).
    watermark: AtomicU64,
    /// Mirror of the apply state's safe point (lock-free router checks).
    safe_watermark: AtomicU64,
    /// `true` while the last poll drained the readable log.
    caught_up: AtomicBool,
    /// When the watermark last advanced (or was last confirmed in sync).
    last_advance: TrackedMutex<Instant>,
    next_reader: AtomicU32,
    checkpoint_seq: AtomicU64,
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("wal_dir", &self.wal_dir)
            .field("watermark", &self.watermark.load(Ordering::Relaxed))
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl Replica {
    /// Opens a replica over the primary's WAL directory: fresh if the
    /// local checkpoint directory is unset or empty, otherwise **resumed**
    /// — stores rebuilt from the newest local checkpoint, the history
    /// re-seeded from the log prefix the checkpoint absorbed (checkpoints
    /// bound *data* re-application; the history always spans the log,
    /// same rule as crash recovery), and the cursor positioned at the
    /// checkpoint's `replay_from_lsn`.
    pub fn open(config: ReplicaConfig, wal_dir: impl Into<PathBuf>) -> io::Result<Self> {
        assert!(config.shards > 0, "at least one shard");
        let wal_dir = wal_dir.into();
        let checkpoint = match &config.checkpoint_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                latest_checkpoint(dir)?
            }
            None => None,
        };
        let (shards, resume_lsn, checkpoint_seq) = match checkpoint {
            Some(ckpt) => {
                if ckpt.shards.len() != config.shards {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "replica checkpoint has {} shards, config says {}",
                            ckpt.shards.len(),
                            config.shards
                        ),
                    ));
                }
                let recovered: Vec<RecoveredShard> = ckpt
                    .shards
                    .into_iter()
                    .map(|s| RecoveredShard {
                        commit_counter: s.commit_counter,
                        watermark: s.watermark,
                        chains: s.chains,
                    })
                    .collect();
                (
                    ShardedStore::from_recovered(&recovered),
                    ckpt.replay_from_lsn,
                    ckpt.seq,
                )
            }
            None => (
                ShardedStore::new(config.shards, config.entities, config.initial.clone()),
                0,
                0,
            ),
        };
        let history = ReplicaHistory::new(config.record_history);
        let mut state = ApplyState {
            // Starts at the origin; the seed loop below walks it forward
            // to exactly `resume_lsn`.
            cursor: WalCursor::origin(),
            pending: HashMap::new(),
            open: std::collections::HashSet::new(),
            shard_ts: vec![0; config.shards],
            safe_lsn: 0,
            safe_ts: vec![0; config.shards],
        };
        // Re-seed history, the in-flight pending map and the safety
        // tracking from the already-absorbed prefix, streamed through the
        // windowed tail reader (decoding the whole log into memory at
        // once would spike O(total log) on every restart — segments are
        // retained forever by design).  Capping each poll's record count
        // at the remaining distance keeps the cursor from ever consuming
        // past `resume_lsn`, so the final cursor is byte-exactly
        // positioned where the tailer resumes.
        while state.cursor.next_lsn() < resume_lsn {
            let want = (resume_lsn - state.cursor.next_lsn()).min(512) as usize;
            let batch = read_tail(&wal_dir, &mut state.cursor, want)?;
            for rec in &batch.records {
                debug_assert!(rec.lsn < resume_lsn, "seed overshot the checkpoint");
                match &rec.record {
                    WalRecord::Read { tx, entity } => {
                        history.record_shipped(rec.lsn, Step::read(*tx, *entity));
                    }
                    WalRecord::Write { tx, entity, value } => {
                        history.record_shipped(rec.lsn, Step::write(*tx, *entity));
                        state
                            .pending
                            .entry(*tx)
                            .or_default()
                            .push((*entity, value.clone()));
                    }
                    WalRecord::Commit { entries } => {
                        for entry in entries {
                            state.pending.remove(&entry.tx);
                            history.record_committed(entry.tx);
                        }
                    }
                    WalRecord::Abort { tx } => {
                        state.pending.remove(tx);
                    }
                    WalRecord::Begin { .. } | WalRecord::Checkpoint { .. } => {}
                }
                state.track_safety(rec.lsn, &rec.record);
            }
            if batch.records.is_empty() && batch.caught_up {
                // The surviving log is shorter than the checkpoint's
                // cursor (it should not be — segments are retained); the
                // tailer will park at this point and resume if the
                // records ever reappear.
                break;
            }
        }
        let safe_lsn = state.safe_lsn;
        // Intentional nesting, declared so the lock-order checker documents
        // it instead of flagging it: `begin_read` pins every shard's safe
        // snapshot (`MvStore::begin_at` takes `store.txs`) while holding the
        // apply lock.  Read pinning and log apply are mutually exclusive by
        // design — a pinned reader can never observe a half-applied shipping
        // batch — so the apply-lock-outside-store-lock direction is the
        // sanctioned one.  `ship_once` nests the same way when it applies a
        // batch (`MvStore::apply_committed` takes `store.chains` then
        // `store.txs`).
        mvcc_analysis::lockdep::declare_order(
            "replica.apply",
            "store.txs",
            "read pinning and log apply are mutually exclusive: begin_read pins \
             per-shard safe snapshots under the apply lock so a reader never \
             observes a half-applied shipping batch",
        );
        mvcc_analysis::lockdep::declare_order(
            "replica.apply",
            "store.chains",
            "ship_once installs a batch's versions into shard chains while \
             holding the apply lock; the batch is invisible to readers until \
             the lock is released",
        );
        Ok(Replica {
            wal_dir,
            config,
            shards,
            state: TrackedMutex::new(lock_class!("replica.apply"), state),
            history,
            watermark: AtomicU64::new(resume_lsn),
            safe_watermark: AtomicU64::new(safe_lsn),
            caught_up: AtomicBool::new(false),
            // lint: allow(clock) — staleness clock: replica tracks its last apply advance
            last_advance: TrackedMutex::new(lock_class!("replica.staleness-clock"), Instant::now()),
            next_reader: AtomicU32::new(READER_TX_BASE),
            checkpoint_seq: AtomicU64::new(checkpoint_seq),
        })
    }

    /// The apply watermark: the next LSN this replica will apply — every
    /// record with a smaller LSN has fully landed in the stores.
    pub fn watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// The newest **transaction-consistent safe point**: the highest
    /// applied watermark at which no transaction straddled the log.
    /// Follower reads pin here (see [`Replica::begin_read`]); the router
    /// holds staleness policies against this value, since it is the
    /// freshest snapshot the replica can serve without risking a
    /// non-serializable merge.  Trails [`Replica::watermark`] by however
    /// long the oldest in-flight primary transaction has been open.
    pub fn safe_watermark(&self) -> u64 {
        self.safe_watermark.load(Ordering::Acquire)
    }

    /// Per-shard commit-timestamp high-water marks at the current
    /// watermark (the second face of the apply watermark).
    pub fn shard_timestamps(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.current_ts()).collect()
    }

    /// `true` while the most recent poll drained everything readable.
    pub fn is_caught_up(&self) -> bool {
        self.caught_up.load(Ordering::Acquire)
    }

    /// Wall-clock time since the watermark last advanced or was last
    /// confirmed in sync — the replica's apply staleness.
    pub fn staleness(&self) -> std::time::Duration {
        self.last_advance.lock().elapsed()
    }

    /// The replica's history (shipped + served readers).
    pub fn history(&self) -> &ReplicaHistory {
        &self.history
    }

    /// The replica's sharded store (observability and tests).
    pub fn shards(&self) -> &ShardedStore {
        &self.shards
    }

    /// The WAL directory this replica tails.
    pub fn wal_dir(&self) -> &std::path::Path {
        &self.wal_dir
    }

    /// Promotes this replica to primary over the log it has been tailing
    /// — the failover step the [`crate::LeaderDriver`] runs after
    /// electing the replica with the longest absorbed prefix.
    ///
    /// The sequence: (1) finish absorbing the reachable log prefix
    /// (one last [`Replica::catch_up`] — anything readable now is part
    /// of the history being taken over); (2)
    /// [`Engine::promote_recover`] over the shared WAL directory, which
    /// fences the old primary's epoch (its late appends and flushes are
    /// refused by the log from the marker write onward), heals stale
    /// residue past the promotion cut, recovers the committed prefix
    /// under ACA, re-seeds fresh certifier lanes with the recovered
    /// committed set, and opens a fresh segment lineage under the bumped
    /// epoch.  `config.durability.dir` is overridden with the replica's
    /// WAL directory — promotion takes over *this* log, wherever the
    /// caller's template pointed.
    ///
    /// The returned engine is the new primary; the replica object itself
    /// is consumed conceptually (its cursor would next observe its own
    /// engine's appends) and should be dropped by the caller.
    pub fn promote(
        &self,
        kind: CertifierKind,
        mut config: EngineConfig,
    ) -> io::Result<(Arc<Engine>, RecoveryReport)> {
        assert!(
            config.durability.is_on(),
            "Replica::promote needs a durable EngineConfig template: the promoted \
             primary keeps writing the shared log (the mode and segment size are \
             taken from the template)"
        );
        self.catch_up()?;
        config.durability.dir = self.wal_dir.clone();
        config.shards = self.config.shards;
        config.entities = self.config.entities;
        config.initial = self.config.initial.clone();
        Engine::promote_recover(kind, config)
    }

    /// Polls the primary's log once: reads at most `max_records` whole
    /// CRC-valid records past the cursor and applies them.  Cold tails
    /// (torn record, unwritten segment, empty directory) return
    /// `caught_up` without error — the shipper parks and re-polls.
    ///
    /// Reading and applying hold the replica's apply lock, so read
    /// pinning is mutually exclusive with a batch's application (bounded
    /// by `max_records`).
    pub fn ship_once(&self, max_records: usize) -> io::Result<ShipReceipt> {
        let mut state = self.state.lock();
        let mut cursor = state.cursor;
        let batch = read_tail(&self.wal_dir, &mut cursor, max_records)?;
        // Shipped→applied lag: from the moment the batch left the log to
        // its last record's effects published (telemetry on, else None).
        let mut apply_clock = None;
        if let Some(metrics) = &self.config.metrics {
            if !batch.records.is_empty() {
                metrics.record_repl_shipped(batch.records.len());
                apply_clock = metrics.stage_clock();
            }
        }
        let mut commits = 0usize;
        for rec in &batch.records {
            match &rec.record {
                WalRecord::Read { tx, entity } => {
                    self.history
                        .record_shipped(rec.lsn, Step::read(*tx, *entity));
                }
                WalRecord::Write { tx, entity, value } => {
                    self.history
                        .record_shipped(rec.lsn, Step::write(*tx, *entity));
                    state
                        .pending
                        .entry(*tx)
                        .or_default()
                        .push((*entity, value.clone()));
                }
                WalRecord::Commit { entries } => {
                    commits += 1;
                    // Cross-process correlation: this apply span carries
                    // the commit record's LSN — the same LSN the
                    // primary's flush span recorded for the same batch —
                    // so one grep over both trace logs joins the two
                    // halves of a commit's causal timeline.  The duration
                    // is shipped→applied so far for this batch (the lag
                    // the exemplar report attributes, not a per-record
                    // slice).
                    if let (Some(metrics), Some(clock)) = (&self.config.metrics, apply_clock) {
                        metrics.record_trace_event(
                            mvcc_telemetry::Stage::ReplicaApply,
                            None,
                            Some(rec.lsn),
                            u64::try_from(clock.elapsed().as_micros()).unwrap_or(u64::MAX),
                        );
                    }
                    for entry in entries {
                        let writes = state.pending.remove(&entry.tx).unwrap_or_default();
                        for &(shard_idx, ts) in &entry.shards {
                            let idx = shard_idx as usize;
                            if idx >= self.shards.len() {
                                // A commit record from a different
                                // topology would be an upstream bug;
                                // tolerate it by skipping the stamp.
                                continue;
                            }
                            let shard_writes: Vec<(EntityId, Bytes)> = writes
                                .iter()
                                .filter(|(e, _)| self.shards.shard_of(*e) == idx)
                                .cloned()
                                .collect();
                            self.shards
                                .store(idx)
                                .apply_committed(entry.tx, ts, &shard_writes);
                        }
                        self.history.record_committed(entry.tx);
                    }
                }
                WalRecord::Abort { tx } => {
                    state.pending.remove(tx);
                }
                WalRecord::Begin { .. } | WalRecord::Checkpoint { .. } => {}
            }
            state.track_safety(rec.lsn, &rec.record);
            // Publish after the record's effects are fully in the stores.
            self.watermark.store(rec.lsn + 1, Ordering::Release);
            self.safe_watermark.store(state.safe_lsn, Ordering::Release);
        }
        state.cursor = cursor;
        drop(state);
        self.caught_up.store(batch.caught_up, Ordering::Release);
        if !batch.records.is_empty() || batch.caught_up {
            // lint: allow(clock) — staleness clock: replica tracks its last apply advance
            *self.last_advance.lock() = Instant::now();
        }
        if let Some(metrics) = &self.config.metrics {
            if !batch.records.is_empty() {
                metrics.record_repl_applied(batch.records.len(), commits);
                metrics.record_stage_since(mvcc_telemetry::Stage::ReplicaApply, apply_clock);
            }
        }
        Ok(ShipReceipt {
            records: batch.records.len(),
            commits,
            caught_up: batch.caught_up,
        })
    }

    /// Ships until the readable log is drained (test and catch-up
    /// convenience; the background [`crate::LogShipper`] polls instead).
    pub fn catch_up(&self) -> io::Result<ShipReceipt> {
        let mut total = ShipReceipt {
            records: 0,
            commits: 0,
            caught_up: false,
        };
        loop {
            let receipt = self.ship_once(512)?;
            total.records += receipt.records;
            total.commits += receipt.commits;
            if receipt.caught_up {
                total.caught_up = true;
                return Ok(total);
            }
        }
    }

    /// Opens a read-only session pinned at the newest
    /// **transaction-consistent safe point** ([`Replica::safe_watermark`]):
    /// a committed snapshot, consistent across every shard (pinning holds
    /// the apply lock, so no cross-shard commit can be half-visible),
    /// taken at a cut no in-flight transaction straddles.
    ///
    /// The safe point — not the raw apply watermark — is what makes the
    /// read mergeable into the certified history: a snapshot wedged
    /// between a transaction's shipped steps and its commit record can
    /// carry an anti-dependency back into the snapshot (commit order is
    /// not serialization order under SGT/TSO/MVTO), and the combined
    /// history would leave the class.  At a safe cut every committed
    /// transaction is entirely before or entirely after the snapshot, so
    /// the reader serializes right there (the regression test
    /// `wedged_reader_between_inverted_commits_stays_serializable` pins
    /// the exact interleaving).
    pub fn begin_read(self: &Arc<Self>) -> ReplicaReadSession {
        let tx = TxId(self.next_reader.fetch_add(1, Ordering::Relaxed));
        // The read-path half of the causal trace: how long pinning the
        // safe point took, correlated to the apply path by the pinned
        // safe LSN (sampled through the stage clock, telemetry on only).
        let pin_clock = self.config.metrics.as_ref().and_then(|m| m.stage_clock());
        let state = self.state.lock();
        let pinned = state.safe_lsn;
        for (idx, store) in self.shards.iter().enumerate() {
            store
                .begin_at(tx, state.safe_ts[idx])
                // lint: allow(unwrap) — documented panic: begin_read requires distinct reader ids
                .expect("replica reader ids are unique per replica");
        }
        drop(state);
        if let (Some(metrics), Some(clock)) = (&self.config.metrics, pin_clock) {
            let pin_us = u64::try_from(clock.elapsed().as_micros()).unwrap_or(u64::MAX);
            metrics.record_stage_value(mvcc_telemetry::Stage::FollowerReadPin, pin_us);
            metrics.record_trace_event(
                mvcc_telemetry::Stage::FollowerReadPin,
                None,
                Some(pinned),
                pin_us,
            );
        }
        ReplicaReadSession {
            replica: Arc::clone(self),
            tx,
            pinned,
            steps: Vec::new(),
            finished: false,
        }
    }

    /// One GC pass over every shard under its active-snapshot watermark,
    /// additionally capped at the safe point's timestamps — the next
    /// pinned reader begins *at* the safe point, so its versions must
    /// survive even while no reader is active.
    pub fn collect_garbage(&self) -> usize {
        let safe_ts = self.state.lock().safe_ts.clone();
        let mut reclaimed = 0;
        for (idx, store) in self.shards.iter().enumerate() {
            let watermark = gc::watermark(store).min(safe_ts[idx]);
            reclaimed += gc::collect_with_watermark(store, watermark).reclaimed;
        }
        reclaimed
    }

    /// Cuts a local checkpoint of the applied committed state, bounding
    /// what a restarted replica must re-ship.  The cut holds the apply
    /// lock, so it is exact: `replay_from_lsn` is the watermark and the
    /// chains contain precisely the commits below it.  Returns the new
    /// checkpoint's sequence number.
    ///
    /// Panics if the replica was opened without a checkpoint directory.
    pub fn checkpoint(&self) -> io::Result<u64> {
        let dir = self
            .config
            .checkpoint_dir
            .as_ref()
            // lint: allow(unwrap) — documented panic: checkpoint() requires a checkpoint_dir
            .expect("replica checkpoint requires a checkpoint_dir");
        let state = self.state.lock();
        let replay_from_lsn = self.watermark();
        let shards: Vec<ShardCheckpoint> = self
            .shards
            .iter()
            .map(|store| {
                let watermark = gc::watermark(store);
                let (commit_counter, chains) = store.committed_state();
                ShardCheckpoint {
                    commit_counter,
                    watermark,
                    chains: chains
                        .into_iter()
                        .map(|(entity, versions)| {
                            (
                                entity,
                                versions
                                    .into_iter()
                                    .map(|(writer, commit_ts, value)| {
                                        mvcc_durability::CommittedVersion {
                                            writer,
                                            commit_ts,
                                            value,
                                        }
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                }
            })
            .collect();
        drop(state);
        let seq = self.checkpoint_seq.fetch_add(1, Ordering::Relaxed) + 1;
        write_checkpoint(
            dir,
            &CheckpointData {
                seq,
                replay_from_lsn,
                next_tx: 1,
                shards,
            },
        )?;
        Ok(seq)
    }
}

/// A read-only session pinned at a replica's apply watermark.  Reads are
/// snapshot reads against the pinned point; [`ReplicaReadSession::finish`]
/// records the transaction into the replica's history (spliced at the
/// snapshot position).  Dropping without finishing discards the reads —
/// an abandoned read-only transaction contributes nothing to any history.
#[derive(Debug)]
pub struct ReplicaReadSession {
    replica: Arc<Replica>,
    tx: TxId,
    /// The apply watermark at pin time.
    pinned: u64,
    steps: Vec<Step>,
    finished: bool,
}

impl ReplicaReadSession {
    /// The session's transaction id (replica reader id space).
    pub fn id(&self) -> TxId {
        self.tx
    }

    /// The apply watermark the session is pinned at: it observes exactly
    /// the commits applied below this LSN.
    pub fn snapshot_lsn(&self) -> u64 {
        self.pinned
    }

    /// Reads `entity` at the pinned snapshot.
    pub fn read(&mut self, entity: EntityId) -> Result<Bytes, StoreError> {
        let store = self.replica.shards.store_for(entity);
        let value = store.read_snapshot(TxHandle { id: self.tx }, entity)?;
        self.steps.push(Step::read(self.tx, entity));
        Ok(value)
    }

    /// Finishes the session: the reads are recorded into the replica's
    /// history at the snapshot position and the pinned snapshot released.
    pub fn finish(mut self) {
        self.release(true);
    }

    fn release(&mut self, record: bool) {
        if self.finished {
            return;
        }
        self.finished = true;
        for store in self.replica.shards.iter() {
            let _ = store.abort(TxHandle { id: self.tx });
        }
        if record {
            self.replica.history.record_reader(
                self.tx,
                self.pinned,
                std::mem::take(&mut self.steps),
            );
        }
    }
}

impl Drop for ReplicaReadSession {
    fn drop(&mut self) {
        self.release(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_durability::DurabilityConfig;
    use mvcc_engine::{CertifierKind, Engine, EngineConfig};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvcc-replica-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const X: EntityId = EntityId(0);
    const Y: EntityId = EntityId(1); // different shard from X

    fn primary(dir: &std::path::Path) -> Arc<Engine> {
        Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(dir),
                ..EngineConfig::default()
            },
        ))
    }

    fn replica_config() -> ReplicaConfig {
        ReplicaConfig::new(2, 8, Bytes::from_static(b"0"))
    }

    #[test]
    fn replica_applies_committed_state_and_serves_snapshot_reads() {
        let dir = temp_dir("apply");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"x1")).unwrap();
        s.write(Y, Bytes::from_static(b"y1")).unwrap();
        s.commit().unwrap();
        let replica = Arc::new(Replica::open(replica_config(), &dir).unwrap());
        let receipt = replica.catch_up().unwrap();
        assert!(receipt.records >= 3, "begin rides with steps + commit");
        assert_eq!(receipt.commits, 1);
        assert!(replica.is_caught_up());
        assert_eq!(replica.watermark(), engine.durable_lsn().unwrap() + 1);
        // A pinned read sees the committed snapshot across both shards.
        let mut read = replica.begin_read();
        assert_eq!(read.read(X).unwrap(), Bytes::from_static(b"x1"));
        assert_eq!(read.read(Y).unwrap(), Bytes::from_static(b"y1"));
        read.finish();
        assert_eq!(replica.history().readers_recorded(), 1);
        // Per-shard timestamps mirror the primary's.
        assert_eq!(
            replica.shard_timestamps(),
            engine
                .shards()
                .iter()
                .map(|s| s.current_ts())
                .collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_writes_never_reach_follower_reads() {
        // ACA across the wire: write records of an in-flight transaction
        // ship (a later commit's flush pushes them out), but no data
        // moves until its commit record arrives — and the *safe point*
        // parks below the straddler's begin, so follower reads cannot
        // even be pinned inside its window.
        let dir = temp_dir("aca");
        let engine = primary(&dir);
        let mut before = engine.begin();
        before.write(Y, Bytes::from_static(b"before")).unwrap();
        before.commit().unwrap();
        let mut in_flight = engine.begin();
        in_flight.write(X, Bytes::from_static(b"dirty")).unwrap();
        let mut s = engine.begin();
        s.write(Y, Bytes::from_static(b"during")).unwrap();
        s.commit().unwrap();
        let replica = Arc::new(Replica::open(replica_config(), &dir).unwrap());
        replica.catch_up().unwrap();
        // The apply watermark covers everything shipped, but the safe
        // point stops before the straddler began.
        assert!(replica.safe_watermark() < replica.watermark());
        let mut read = replica.begin_read();
        assert_eq!(
            read.read(X).unwrap(),
            Bytes::from_static(b"0"),
            "the in-flight write must be invisible"
        );
        assert_eq!(
            read.read(Y).unwrap(),
            Bytes::from_static(b"before"),
            "the snapshot parks at the pre-straddler safe point"
        );
        read.finish();
        // Once the straddler commits and the replica re-ships, the safe
        // point catches the watermark and everything is visible.
        in_flight.commit().unwrap();
        replica.catch_up().unwrap();
        assert_eq!(replica.safe_watermark(), replica.watermark());
        let mut read = replica.begin_read();
        assert_eq!(read.read(X).unwrap(), Bytes::from_static(b"dirty"));
        assert_eq!(read.read(Y).unwrap(), Bytes::from_static(b"during"));
        read.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_reader_between_inverted_commits_stays_serializable() {
        // The safe-point regression: under SGT, T_b reads x, then T_a
        // writes x (edge T_b → T_a in the serialization graph) and
        // commits FIRST; T_b later writes y and commits.  A follower
        // read pinned between the two commit records would observe T_a's
        // x and the pre-T_b y — a snapshot no serial order explains
        // (T_a → R via x, R → T_b via y, T_b → T_a via x: a cycle), so
        // the combined history would leave CSR.  Safe-point pinning
        // parks the reader before T_b began instead.
        let dir = temp_dir("wedge");
        let engine = primary(&dir);
        let mut tb = engine.begin();
        assert_eq!(tb.read(X).unwrap(), Bytes::from_static(b"0"));
        let mut ta = engine.begin();
        ta.write(X, Bytes::from_static(b"a")).unwrap();
        ta.commit().unwrap();
        // Everything up to T_a's commit is flushed; T_b still straddles.
        let replica = Arc::new(Replica::open(replica_config(), &dir).unwrap());
        replica.catch_up().unwrap();
        let mut read = replica.begin_read();
        let x = read.read(X).unwrap();
        let y = read.read(Y).unwrap();
        read.finish();
        assert_eq!(x, Bytes::from_static(b"0"), "pinned before the wedge");
        assert_eq!(y, Bytes::from_static(b"0"));
        // The straddler finishes; the combined history must classify.
        tb.write(Y, Bytes::from_static(b"b")).unwrap();
        tb.commit().unwrap();
        replica.catch_up().unwrap();
        let combined = replica.history().combined_schedule();
        assert!(
            mvcc_classify::is_csr(&combined),
            "wedged reader broke CSR: {combined}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_reads_ignore_commits_applied_after_the_pin() {
        let dir = temp_dir("pin");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"v1")).unwrap();
        s.commit().unwrap();
        let replica = Arc::new(Replica::open(replica_config(), &dir).unwrap());
        replica.catch_up().unwrap();
        let mut pinned = replica.begin_read();
        // A later commit applies while the session is pinned.
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"v2")).unwrap();
        s.commit().unwrap();
        replica.catch_up().unwrap();
        // The pinned session still reads its snapshot...
        assert_eq!(pinned.read(X).unwrap(), Bytes::from_static(b"v1"));
        pinned.finish();
        // ...while a fresh pin sees the new state.
        let mut fresh = replica.begin_read();
        assert_eq!(fresh.read(X).unwrap(), Bytes::from_static(b"v2"));
        fresh.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_from_the_local_checkpoint() {
        let dir = temp_dir("resume");
        let ckpt_dir = temp_dir("resume-ckpt");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"pre")).unwrap();
        s.commit().unwrap();
        let mut config = replica_config();
        config.checkpoint_dir = Some(ckpt_dir.clone());
        {
            let replica = Arc::new(Replica::open(config.clone(), &dir).unwrap());
            replica.catch_up().unwrap();
            assert_eq!(replica.checkpoint().unwrap(), 1);
        }
        // More primary traffic after the replica "crashed".
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"post")).unwrap();
        s.write(Y, Bytes::from_static(b"post-y")).unwrap();
        s.commit().unwrap();
        let replica = Arc::new(Replica::open(config, &dir).unwrap());
        let resumed_from = replica.watermark();
        assert!(resumed_from > 0, "must resume mid-log, not from zero");
        let receipt = replica.catch_up().unwrap();
        assert_eq!(
            receipt.commits, 1,
            "only the post-checkpoint commit re-ships"
        );
        let mut read = replica.begin_read();
        assert_eq!(read.read(X).unwrap(), Bytes::from_static(b"post"));
        assert_eq!(read.read(Y).unwrap(), Bytes::from_static(b"post-y"));
        read.finish();
        // The history spans the whole log, checkpoint or not: both
        // committed writers appear in the combined schedule.
        let combined = replica.history().combined_schedule();
        assert_eq!(combined.len(), 3 + 2, "3 shipped writes + 2 reader reads");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn replica_gc_reclaims_superseded_versions() {
        let dir = temp_dir("gc");
        let engine = primary(&dir);
        for i in 0..6u32 {
            let mut s = engine.begin();
            s.write(X, Bytes::from(format!("v{i}"))).unwrap();
            s.commit().unwrap();
        }
        let replica = Arc::new(Replica::open(replica_config(), &dir).unwrap());
        replica.catch_up().unwrap();
        let store = replica.shards().store_for(X);
        assert_eq!(store.version_count(X), 7, "all versions shipped");
        let reclaimed = replica.collect_garbage();
        assert!(reclaimed >= 5, "reclaimed {reclaimed}");
        assert_eq!(store.version_count(X), 1);
        let mut read = replica.begin_read();
        assert_eq!(read.read(X).unwrap(), Bytes::from_static(b"v5"));
        read.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abandoned_read_sessions_contribute_nothing() {
        let dir = temp_dir("drop");
        let engine = primary(&dir);
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"x")).unwrap();
        s.commit().unwrap();
        let replica = Arc::new(Replica::open(replica_config(), &dir).unwrap());
        replica.catch_up().unwrap();
        {
            let mut read = replica.begin_read();
            let _ = read.read(X).unwrap();
            // Dropped without finish().
        }
        assert_eq!(replica.history().readers_recorded(), 0);
        // The pinned snapshot was released: GC is not blocked forever.
        for store in replica.shards().iter() {
            assert!(store.active_snapshots().is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn primary_flush_and_replica_apply_spans_correlate_by_lsn() {
        use mvcc_telemetry::Stage;
        // The cross-process join of the causal trace: the primary's
        // group-commit leader records a WAL-flush span carrying the
        // batch's commit LSN, and the replica's apply path records its
        // apply span against the *same* LSN read back from the log —
        // the two halves of one commit's timeline meet on that key.
        let dir = temp_dir("tracecorr");
        let engine = Arc::new(Engine::new(
            CertifierKind::Sgt,
            EngineConfig {
                shards: 2,
                entities: 8,
                durability: DurabilityConfig::buffered(&dir),
                telemetry: mvcc_engine::TelemetryMode::On,
                ..EngineConfig::default()
            },
        ));
        // First transaction on a fresh thread: always trace-sampled, so
        // its commit batch is traced and the flush span is recorded.
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"flushed")).unwrap();
        s.write(Y, Bytes::from_static(b"flushed")).unwrap();
        s.commit().unwrap();
        // The replica shares the primary's telemetry sink, so both sides
        // of the shipping boundary land in one trace log (in a real
        // deployment each process greps its own log; the LSN is still
        // the join key either way).
        let mut config = replica_config();
        config.metrics = Some(engine.metrics_handle());
        let replica = Replica::open(config, &dir).unwrap();
        replica.catch_up().unwrap();

        let events = engine
            .metrics()
            .telemetry()
            .expect("telemetry is on")
            .trace_log()
            .events();
        let flush_lsns: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == Stage::WalFlush)
            .filter_map(|e| e.lsn)
            .collect();
        let apply_lsns: Vec<u64> = events
            .iter()
            .filter(|e| e.stage == Stage::ReplicaApply)
            .filter_map(|e| e.lsn)
            .collect();
        assert!(
            !flush_lsns.is_empty(),
            "the traced commit must record a flush span: {events:?}"
        );
        for lsn in &flush_lsns {
            assert!(
                apply_lsns.contains(lsn),
                "flush span LSN {lsn} has no matching replica apply span: {events:?}"
            );
        }
        // And the primary half is attributed: the flush span knows which
        // transaction's trace it belongs to.
        assert!(
            events
                .iter()
                .any(|e| e.stage == Stage::WalFlush && e.trace.is_some()),
            "the flush span must carry the traced commit's trace id: {events:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
