//! The lease-based leadership driver: detects primary silence and runs
//! the failover — elect, promote, install.
//!
//! Mirrors the [`mvcc_engine::GcDriver`]/[`mvcc_engine::CheckpointDriver`]
//! idiom: a background thread with a stop flag, started with a handle
//! whose `stop`/`Drop` joins it.  What it watches is a **lease
//! heartbeat**: an [`AtomicU64`] the live primary's process bumps
//! periodically ([`LeaderDriver::heartbeat`] hands the counter out; in a
//! real deployment this would be a lease in a coordination service — the
//! single-process harness models exactly the property that matters,
//! *silence*, without a network).  After [`LeaderConfig::silence`]
//! consecutive checks in which the counter did not move, the driver
//! declares the primary dead and fails over:
//!
//! 1. **Elect** — every replica ships whatever is still readable, and
//!    the one with the longest absorbed prefix (highest
//!    [`Replica::watermark`]) wins: promotion heals the log up to the
//!    fence, so electing the longest prefix is what minimizes discarded
//!    acknowledged-but-unflushed work.
//! 2. **Promote** — [`Replica::promote`] bumps the log's epoch (fencing
//!    the silent primary: if it was merely frozen and wakes up, its late
//!    appends and flushes are refused), recovers the committed prefix,
//!    and opens a new engine over a fresh segment lineage.
//! 3. **Install** — the promoted engine is swapped into the
//!    [`crate::WriteRouter`]; stranded writers see
//!    [`crate::RouterError::Deposed`] from the old routing until the
//!    install lands, then route to the new primary.
//!
//! The driver is **one-shot**: after a successful promotion it exits —
//! the promoted primary is a different engine whose liveness a new
//! driver (with a new heartbeat) would watch.  Failed promotions are
//! retried on the next silent check; errors surface through
//! [`LeaderDriver::last_error`], never silently swallowed.

use crate::replica::Replica;
use crate::router::WriteRouter;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use mvcc_engine::{CertifierKind, EngineConfig, EngineMetrics};
use mvcc_telemetry::{EventKind, Stage};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Leadership-driver pacing knobs.
#[derive(Debug, Clone)]
pub struct LeaderConfig {
    /// Sleep between heartbeat checks.
    pub check: Duration,
    /// Consecutive unchanged checks before the primary is declared dead
    /// (the lease: the primary must bump the heartbeat at least once per
    /// `silence × check` or lose leadership).
    pub silence: u32,
    /// Where to record the failover timeline (detect / elect / promote
    /// stages plus flight-recorder `Promotion` phase events).  Usually
    /// the *old primary's* [`mvcc_engine::Engine::metrics_handle`] — its
    /// telemetry is what the chaos harness dumps after a failed soak.
    /// `None` (the default) records nothing.
    pub metrics: Option<Arc<EngineMetrics>>,
}

impl Default for LeaderConfig {
    fn default() -> Self {
        LeaderConfig {
            check: Duration::from_millis(5),
            silence: 4,
            metrics: None,
        }
    }
}

/// Handle to the background leadership thread.  Stop it explicitly with
/// [`LeaderDriver::stop`] or implicitly by dropping it.
#[derive(Debug)]
pub struct LeaderDriver {
    stop: Arc<AtomicBool>,
    heartbeat: Arc<AtomicU64>,
    promotions: Arc<AtomicU64>,
    last_error: Arc<TrackedMutex<Option<String>>>,
    handle: Option<JoinHandle<()>>,
}

impl LeaderDriver {
    /// Spawns the watcher.  `router` is where a promoted engine is
    /// installed; `replicas` are the election candidates; `kind` and
    /// `template` parameterize the promoted engine (the template's
    /// durability directory is overridden per electee — see
    /// [`Replica::promote`]).
    pub fn start(
        router: Arc<WriteRouter>,
        replicas: Vec<Arc<Replica>>,
        kind: CertifierKind,
        template: EngineConfig,
        config: LeaderConfig,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let heartbeat = Arc::new(AtomicU64::new(0));
        let promotions = Arc::new(AtomicU64::new(0));
        let last_error = Arc::new(TrackedMutex::new(lock_class!("replica.leader-error"), None));
        let stop_flag = Arc::clone(&stop);
        let beat = Arc::clone(&heartbeat);
        let promoted_count = Arc::clone(&promotions);
        let error_slot = Arc::clone(&last_error);
        let handle = std::thread::spawn(move || {
            let mut last_seen = beat.load(Ordering::Acquire);
            // When the heartbeat last moved — the failover timeline's
            // zero point (Stage::FailoverDetect measures how long the
            // primary was silent before the driver declared it dead).
            // lint: allow(clock) — lease timing is the leader driver's whole job
            let mut last_move = Instant::now();
            let mut quiet = 0u32;
            let telemetry = config.metrics.as_deref();
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(config.check);
                let now = beat.load(Ordering::Acquire);
                if now != last_seen {
                    last_seen = now;
                    // lint: allow(clock) — lease timing is the leader driver's whole job
                    last_move = Instant::now();
                    quiet = 0;
                    continue;
                }
                quiet += 1;
                if quiet < config.silence {
                    continue;
                }
                if let Some(m) = telemetry {
                    let detect_us = last_move.elapsed().as_micros() as u64;
                    m.record_stage_value(Stage::FailoverDetect, detect_us);
                    // The promotion timeline also lands in the trace log,
                    // so the failover's three phases line up against the
                    // LSN-correlated apply/flush spans around them.
                    m.record_trace_event(Stage::FailoverDetect, None, None, detect_us);
                    m.flight(EventKind::Promotion {
                        phase: "detected".into(),
                        detail: format!("heartbeat silent for {quiet} checks"),
                    });
                }
                // The lease expired: elect the replica with the longest
                // absorbed prefix.  Each candidate ships what it still
                // can first, so the election compares final positions,
                // not polling luck.
                let elect_clock = telemetry.and_then(|m| m.stage_clock());
                let electee = replicas
                    .iter()
                    .max_by_key(|replica| {
                        let _ = replica.catch_up();
                        replica.watermark()
                    })
                    .cloned();
                let Some(electee) = electee else {
                    *error_slot.lock() = Some("no replicas to elect".to_string());
                    quiet = 0;
                    continue;
                };
                if let Some(m) = telemetry {
                    m.record_stage_since(Stage::FailoverElect, elect_clock);
                    if let Some(clock) = elect_clock {
                        // Correlated by the electee's final absorbed
                        // position — the LSN the election decided on.
                        m.record_trace_event(
                            Stage::FailoverElect,
                            None,
                            Some(electee.watermark()),
                            clock.elapsed().as_micros() as u64,
                        );
                    }
                    m.flight(EventKind::Promotion {
                        phase: "elected".into(),
                        detail: format!("watermark {}", electee.watermark()),
                    });
                }
                let promote_clock = telemetry.and_then(|m| m.stage_clock());
                match electee.promote(kind, template.clone()) {
                    Ok((engine, _report)) => {
                        if let Some(m) = telemetry {
                            m.record_stage_since(Stage::FailoverPromote, promote_clock);
                            if let Some(clock) = promote_clock {
                                // Correlated by the healed log's tail —
                                // the promotion cut every later commit
                                // extends past.
                                m.record_trace_event(
                                    Stage::FailoverPromote,
                                    None,
                                    engine.wal_last_lsn(),
                                    clock.elapsed().as_micros() as u64,
                                );
                            }
                            m.flight(EventKind::Promotion {
                                phase: "promoted".into(),
                                detail: format!("epoch {}", engine.epoch()),
                            });
                        }
                        router.install(Arc::clone(&engine));
                        if let Some(m) = telemetry {
                            m.flight(EventKind::Promotion {
                                phase: "installed".into(),
                                detail: format!("epoch {}", engine.epoch()),
                            });
                        }
                        promoted_count.fetch_add(1, Ordering::Release);
                        // One-shot: the new primary's liveness is a new
                        // driver's job.
                        return;
                    }
                    Err(e) => {
                        *error_slot.lock() = Some(format!("promotion failed: {e}"));
                        quiet = 0;
                    }
                }
            }
        });
        LeaderDriver {
            stop,
            heartbeat,
            promotions,
            last_error,
            handle: Some(handle),
        }
    }

    /// The lease counter.  A live primary's process must bump this
    /// (any `fetch_add`) at least once per `silence × check` interval;
    /// a frozen or dead one stops, and the driver fails over.
    pub fn heartbeat(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.heartbeat)
    }

    /// Number of promotions this driver has performed (0 or 1 — the
    /// driver is one-shot).
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Acquire)
    }

    /// The most recent failover error, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    /// Blocks until a promotion lands or the deadline passes; `true` on
    /// promotion.  Test/ops convenience — the driver works without it.
    pub fn wait_for_promotion(&self, deadline: Duration) -> bool {
        // lint: allow(clock) — test-support deadline helper
        let until = std::time::Instant::now() + deadline;
        // lint: allow(clock) — test-support deadline helper
        while std::time::Instant::now() < until {
            if self.promotions() > 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.promotions() > 0
    }

    /// Signals the thread to stop and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LeaderDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReplicaConfig;
    use bytes::Bytes;
    use mvcc_core::EntityId;
    use mvcc_durability::DurabilityConfig;
    use mvcc_engine::Engine;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvcc-leader-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const X: EntityId = EntityId(0);

    fn durable_config(dir: &std::path::Path) -> EngineConfig {
        EngineConfig {
            shards: 2,
            entities: 8,
            durability: DurabilityConfig::buffered(dir),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn a_heartbeating_primary_is_never_deposed() {
        let dir = temp_dir("alive");
        let engine = Arc::new(Engine::new(CertifierKind::Sgt, durable_config(&dir)));
        let replica = Arc::new(
            Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        let router = Arc::new(WriteRouter::new(Arc::clone(&engine)));
        let driver = LeaderDriver::start(
            Arc::clone(&router),
            vec![replica],
            CertifierKind::Sgt,
            durable_config(&dir),
            LeaderConfig {
                check: Duration::from_millis(1),
                silence: 3,
                ..LeaderConfig::default()
            },
        );
        let beat = driver.heartbeat();
        // Keep the lease alive across many check intervals.
        for _ in 0..20 {
            beat.fetch_add(1, Ordering::Release);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(driver.promotions(), 0, "a live primary must keep the lease");
        assert_eq!(router.epoch(), 0);
        driver.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn silence_elects_the_longest_replica_and_installs_the_promotion() {
        let dir = temp_dir("elect");
        let engine = Arc::new(Engine::new(CertifierKind::Sgt, durable_config(&dir)));
        let mut s = engine.begin();
        s.write(X, Bytes::from_static(b"committed")).unwrap();
        let lsn = s.commit_durable().unwrap().expect("durable");
        // Two candidates; the second has absorbed more (catch_up runs at
        // election time, so both end equal here — the tie breaks on the
        // first max, which is fine: any fully-caught-up replica is a
        // correct electee).
        let r1 = Arc::new(
            Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        let r2 = Arc::new(
            Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap(),
        );
        r2.catch_up().unwrap();
        let router = Arc::new(WriteRouter::new(Arc::clone(&engine)));
        let driver = LeaderDriver::start(
            Arc::clone(&router),
            vec![r1, r2],
            CertifierKind::Sgt,
            durable_config(&dir),
            LeaderConfig {
                check: Duration::from_millis(1),
                silence: 3,
                ..LeaderConfig::default()
            },
        );
        // Never bump the heartbeat: the lease expires and failover runs.
        assert!(driver.wait_for_promotion(Duration::from_secs(10)));
        assert_eq!(router.epoch(), 1, "the promoted engine owns epoch 1");
        assert!(router.installs() >= 1);
        // The new primary serves the old history and accepts new writes.
        let mut session = router.begin().unwrap();
        assert_eq!(session.read(X).unwrap(), Bytes::from_static(b"committed"));
        session.write(X, Bytes::from_static(b"after")).unwrap();
        let new_lsn = session.commit_durable().unwrap().expect("durable");
        assert!(new_lsn > lsn, "the new lineage extends the old numbering");
        // The deposed engine can never commit again.
        let mut stranded = engine.begin();
        stranded.write(X, Bytes::from_static(b"zombie")).unwrap();
        assert!(matches!(
            stranded.commit(),
            Err(mvcc_engine::EngineError::Deposed)
        ));
        assert!(engine.is_deposed());
        driver.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
