//! `mvcc-telemetry`: per-stage latency tracing, a flight recorder, and a
//! machine-readable exporter for the bench trajectory.
//!
//! The engine's counters say *how much* happened; this crate records
//! *how long each pipeline stage took* and *what just happened* — the
//! two things a perf campaign and a failed chaos soak respectively need.
//! Three pieces:
//!
//! * [`Histogram`] / [`HistogramSnapshot`] — a lock-free, mergeable
//!   log-linear histogram (16 linear sub-buckets per power-of-two
//!   decade) with interpolated p50/p95/p99/p999, replacing the old
//!   power-of-two buckets whose upper-bound quantiles overstated by up
//!   to 2×.
//! * [`Telemetry`] — the per-stage registry.  Hot-path recording is a
//!   plain store into a thread-local buffer ([`LocalHistogram`]),
//!   drained into the shared registry at batch boundaries, so tracing
//!   adds no synchronization edges to the pipeline (see the recorder
//!   module docs for why that means admission order is unperturbed).
//! * [`FlightRecorder`] — a bounded drop-oldest ring of structured
//!   events ([`EventKind`]) whose [`FlightRecorder::dump`] turns a
//!   failed soak from "a mystery" into a timeline.
//!
//! [`TelemetrySnapshot::to_json`] is the exporter behind the repo's
//! `BENCH_*.json` trajectory; the hand-rolled [`json`] module exists
//! because the vendored serde is a no-op stub.
//!
//! The **timeline layer** adds the time axis on top of the cumulative
//! registry: a [`TimelineRecorder`] samples delta frames
//! ([`TimelineFrame`]) on a fixed cadence into a bounded
//! [`TimelineRing`], exportable as JSONL and as a Prometheus-style text
//! exposition ([`metrics_text`]) — see the timeline module docs.
//!
//! On top of the histograms sits the **causal tracing layer**: every
//! transaction carries a [`TraceId`]; sampled ones collect a bounded
//! span tree ([`TraceTree`]) whose slowest instances the
//! [`ExemplarReservoir`] retains as tail exemplars, and cross-cutting
//! spans (WAL flush, replica apply, follower reads, promotion) land in
//! the LSN-correlated [`TraceLog`].

#![forbid(unsafe_code)]

pub mod exemplar;
pub mod flight;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod stage;
pub mod timeline;
pub mod trace;

pub use exemplar::{ExemplarReservoir, EXEMPLAR_CAPACITY};
pub use flight::{EventKind, FlightEvent, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use histogram::{Histogram, HistogramSnapshot, LocalHistogram};
pub use recorder::{StageSnapshot, Telemetry, TelemetryMode, TelemetrySnapshot, FLUSH_EVERY};
pub use stage::{Stage, StageUnit};
pub use timeline::{
    metrics_text, parse_jsonl, write_jsonl, FrameSource, QuantileSummary, ReplicaFrame,
    TimelineFrame, TimelineRecorder, TimelineRing, DEFAULT_TIMELINE_CAPACITY,
};
pub use trace::{
    SpanRecord, TraceEvent, TraceId, TraceLog, TraceTree, DEFAULT_TRACE_LOG_CAPACITY,
    MAX_TRACE_SPANS,
};
