//! A hand-rolled JSON writer and a minimal parser.
//!
//! The vendored `serde` is a no-op stub (the container is offline), so
//! the bench trajectory's machine-readable output is produced by a small
//! writer here, and validated — in tests and in the CI bench-smoke job —
//! by an equally small recursive-descent parser.  Both cover exactly the
//! JSON subset the exporter emits: objects, arrays, strings with the
//! standard escapes, finite numbers, booleans, and null.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects preserve key order (a `Vec` of pairs, not a map) — the
/// exporter emits deterministic documents and round-trip tests compare
/// them structurally.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Appends `text` to `out` as a JSON string literal (quotes included).
pub fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` as a JSON number.  Non-finite values (which
/// JSON cannot represent) are emitted as `null`.
pub fn write_number(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    let mut chars = text[*pos..].char_indices();
    while let Some((offset, c)) = chars.next() {
        match c {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{0008}'),
                Some((_, 'f')) => out.push('\u{000c}'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        code = code * 16
                            + h.to_digit(16)
                                .ok_or_else(|| format!("bad hex digit {h:?}"))?;
                    }
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("invalid \\u{code:04x} escape"))?,
                    );
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c if (c as u32) < 0x20 => {
                return Err("raw control character in string".into());
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    slice
        .parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {slice:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_exporter_subset() {
        let doc = r#"{"experiment":"E17","rows":[{"certifier":"sgt","txn_s":1234.5,"ok":true,"none":null,"stages":{"certify":{"count":0}}}]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("E17"));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].get("txn_s").unwrap().as_number(), Some(1234.5));
        assert_eq!(rows[0].get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(rows[0].get("none"), Some(&JsonValue::Null));
        let stages = rows[0].get("stages").unwrap().as_object().unwrap();
        assert_eq!(stages[0].0, "certify");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t control\u{0001} unicode✓";
        let mut encoded = String::new();
        write_string(&mut encoded, original);
        let parsed = parse(&encoded).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn numbers_round_trip() {
        for n in [0.0, 1.0, -3.25, 1234.5, 1e9, 0.001] {
            let mut encoded = String::new();
            write_number(&mut encoded, n);
            assert_eq!(parse(&encoded).unwrap().as_number(), Some(n));
        }
        let mut encoded = String::new();
        write_number(&mut encoded, f64::NAN);
        assert_eq!(encoded, "null");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            r#"{"a":}"#,
            r#"{"a":1} extra"#,
            r#""unterminated"#,
            "nul",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn key_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let pairs = v.as_object().unwrap();
        assert_eq!(pairs[0].0, "z");
        assert_eq!(pairs[1].0, "a");
    }
}
