//! A mergeable log-linear histogram with interpolated quantiles.
//!
//! The engine's original latency histogram used pure power-of-two
//! buckets: bucket `i` holds `[2^(i-1), 2^i)`, and a quantile query
//! returns the bucket's *upper bound* — an overstatement of up to 2× at
//! the top of a bucket.  This histogram refines that in two ways:
//!
//! * **Log-linear buckets.**  Each power-of-two decade is split into
//!   [`SUB`] (16) linear sub-buckets, so the worst-case relative width
//!   of any bucket is 1/16 ≈ 6.25% instead of 2×.  Values below 16 get
//!   exact unit-width buckets.
//! * **Interpolated quantiles.**  [`HistogramSnapshot::quantile`]
//!   linearly interpolates the requested rank *within* its bucket
//!   (mid-rank convention), so reported quantiles are estimates of the
//!   statistic, not bucket edges, and are monotone in `q` by
//!   construction.
//!
//! Two flavors share the bucket layout: the concurrent [`Histogram`]
//! (atomic counters, merged into by many threads) and the plain
//! [`LocalHistogram`] (thread-local, no atomics — the hot-path store is
//! a plain integer increment, flushed wholesale into the shared
//! histogram at a batch boundary).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two decade.
pub const SUB: u64 = 16;
const SUB_BITS: u32 = 4;

/// Recorded values saturate here (2^32 − 1 µs ≈ 71 minutes — far beyond
/// anything a pipeline stage can legitimately take).
pub const CLAMP: u64 = (1 << 32) - 1;

/// Total bucket count for the clamped value domain.
pub const BUCKETS: usize = 464;

/// Flat bucket index for `value` (callers clamp to [`CLAMP`] first).
fn bucket_of(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((value >> shift) - SUB) as usize;
    ((shift as usize) + 1) * (SUB as usize) + sub
}

/// Inclusive-lower / exclusive-upper value bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    let sub = SUB as usize;
    if i < sub {
        return (i as u64, i as u64 + 1);
    }
    let block = (i / sub) as u64;
    let offset = (i % sub) as u64;
    let shift = (block - 1) as u32;
    let lo = (SUB + offset) << shift;
    (lo, lo + (1u64 << shift))
}

/// Concurrent log-linear histogram: lock-free relaxed atomic counters.
///
/// `record` is wait-free (one `fetch_add` per counter touched); `merge`
/// folds a thread-local histogram in bucket-by-bucket.  Counter reads in
/// [`Histogram::snapshot`] are relaxed and unsynchronized with writers —
/// a snapshot taken mid-flight sees some prefix of each thread's
/// activity, which is the usual monitoring contract.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value directly (used off the hot path; hot paths go
    /// through a [`LocalHistogram`] and [`Histogram::merge`]).
    pub fn record(&self, value: u64) {
        let v = value.min(CLAMP);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Folds a drained thread-local histogram into this one.
    pub fn merge(&self, local: &LocalHistogram) {
        if local.total == 0 {
            return;
        }
        for (i, &count) in local.buckets.iter().enumerate() {
            if count > 0 {
                self.buckets[i].fetch_add(count, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(local.total, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
    }

    /// Copies the counters out for quantile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            total: self.total.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Thread-local histogram: plain integers, no atomics.
///
/// This is the hot-path sink — recording is an array increment — and it
/// is periodically drained into the shared [`Histogram`] (see the
/// recorder module for the flush policy).
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u64,
}

impl LocalHistogram {
    /// An empty local histogram.
    pub fn new() -> Self {
        LocalHistogram {
            buckets: vec![0; BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    /// Records one value — a plain (atomic-free) store.
    pub fn record(&mut self, value: u64) {
        let v = value.min(CLAMP);
        self.buckets[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Number of recorded values since the last drain.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resets all counters (after a merge).
    pub fn clear(&mut self) {
        if self.total == 0 {
            return;
        }
        for b in &mut self.buckets {
            *b = 0;
        }
        self.total = 0;
        self.sum = 0;
    }
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram::new()
    }
}

/// An owned copy of a histogram's counters, with quantile queries.
///
/// Snapshots are mergeable ([`HistogramSnapshot::merge`]) — merging is
/// exact, not an approximation, because all histograms share one bucket
/// layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (what a disabled or untouched stage reports).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: Vec::new(),
            total: 0,
            sum: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of the recorded values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) with linear interpolation
    /// inside the bucket (mid-rank convention), or `None` if empty.
    ///
    /// Monotone in `q`: the target rank is nondecreasing in `q` and the
    /// interpolated position is nondecreasing in rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cum = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            cum += count;
            if cum >= target {
                let rank_in_bucket = target - (cum - count); // 1..=count
                let (lo, hi) = bucket_bounds(i);
                let fraction = (rank_in_bucket as f64 - 0.5) / count as f64;
                return Some(lo as f64 + (hi - lo) as f64 * fraction);
            }
        }
        // Unreachable when counts sum to total; be conservative if a
        // racy snapshot ever disagrees.
        None
    }

    /// The windowed delta `self − earlier`, where `earlier` is a prior
    /// snapshot of the *same* histogram (counters are monotone, so the
    /// per-bucket difference is exactly the window's recordings — this
    /// is what makes the timeline's windowed quantiles exact rather than
    /// approximations).  Subtraction saturates per bucket so a racy pair
    /// degrades to an undercount instead of wrapping; the total is
    /// recomputed from the bucket deltas so quantile ranks stay
    /// consistent with the counts.  Returns an empty snapshot when the
    /// window recorded nothing.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        if self.total <= earlier.total || self.counts.is_empty() {
            return HistogramSnapshot::empty();
        }
        if earlier.counts.is_empty() {
            return self.clone();
        }
        let mut counts = vec![0u64; self.counts.len()];
        let mut total = 0u64;
        for (i, slot) in counts.iter_mut().enumerate() {
            let before = earlier.counts.get(i).copied().unwrap_or(0);
            *slot = self.counts[i].saturating_sub(before);
            total += *slot;
        }
        if total == 0 {
            return HistogramSnapshot::empty();
        }
        HistogramSnapshot {
            counts,
            total,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Merges another snapshot into this one (exact — shared layout).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.total == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn buckets_tile_the_domain_contiguously() {
        // Every bucket's upper bound is the next bucket's lower bound,
        // and every value maps into the bucket whose bounds contain it.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi, next_lo, "gap between buckets {i} and {}", i + 1);
        }
        for v in [0, 1, 15, 16, 17, 31, 32, 33, 100, 1000, 4095, 4096, CLAMP] {
            let i = bucket_of(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v < hi,
                "value {v} outside bucket {i} [{lo},{hi})"
            );
        }
        assert_eq!(bucket_of(CLAMP), BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in SUB as usize..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(hi - lo <= lo / SUB + 1, "bucket {i} too wide: [{lo},{hi})");
        }
    }

    #[test]
    fn quantiles_interpolate_instead_of_overstating() {
        let h = Histogram::new();
        h.record(1000);
        let snap = h.snapshot();
        // 1000 lands in [992, 1024): the interpolated p99 is the bucket
        // midpoint 1008 — within 1% of the truth, where the old
        // power-of-two accessor would have said 1024 (2.4%) and, one
        // decade up, as much as 2×.
        let p99 = snap.quantile(0.99).unwrap();
        assert!((p99 - 1008.0).abs() < f64::EPSILON, "p99 = {p99}");
        assert!((p99 - 1000.0).abs() / 1000.0 < 0.0625);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x >> 45); // values in [0, 2^19)
        }
        let snap = h.snapshot();
        let mut last = 0.0f64;
        for step in 1..=100 {
            let q = step as f64 / 100.0;
            let v = snap.quantile(q).unwrap();
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn empty_histograms_answer_none_not_zero() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(HistogramSnapshot::empty().quantile(0.99), None);
    }

    #[test]
    fn saturation_lands_in_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        let (lo, hi) = bucket_bounds(BUCKETS - 1);
        let v = snap.quantile(1.0).unwrap();
        assert!(v >= lo as f64 && v <= hi as f64);
    }

    #[test]
    fn local_merge_equals_direct_recording() {
        let shared = Histogram::new();
        let direct = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0, 3, 16, 900, 77777, 1 << 30] {
            local.record(v);
            direct.record(v);
        }
        shared.merge(&local);
        local.clear();
        assert_eq!(local.total(), 0);
        shared.merge(&local); // merging an empty local is a no-op
        assert_eq!(shared.snapshot(), direct.snapshot());
    }

    #[test]
    fn snapshot_diff_recovers_the_window_exactly() {
        let h = Histogram::new();
        h.record(10);
        h.record(500);
        let earlier = h.snapshot();
        h.record(500);
        h.record(9000);
        let later = h.snapshot();

        // The diff must equal a histogram that saw only the window.
        let window_only = Histogram::new();
        window_only.record(500);
        window_only.record(9000);
        let window = later.diff(&earlier);
        assert_eq!(window, window_only.snapshot());
        assert_eq!(window.count(), 2);

        // Empty windows and empty earlier snapshots degrade cleanly.
        assert!(later.diff(&later).is_empty());
        assert_eq!(later.diff(&HistogramSnapshot::empty()), later);
        assert!(HistogramSnapshot::empty().diff(&earlier).is_empty());
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 50, 3000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 50, 70000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        let mut from_empty = HistogramSnapshot::empty();
        from_empty.merge(&a.snapshot());
        from_empty.merge(&b.snapshot());
        assert_eq!(from_empty, both.snapshot());
    }
}
