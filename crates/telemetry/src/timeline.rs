//! The metrics timeline: windowed delta frames over the shared registry.
//!
//! Every number PR 7–9 exposed is cumulative-since-start: the stage
//! histograms, the counters, the commit-latency distribution all answer
//! "how much, ever", never "how much, *lately*".  This module adds the
//! time axis.  A [`TimelineRecorder`] thread samples a [`FrameSource`] on
//! a fixed cadence; each sample is a [`TimelineFrame`] — the *delta*
//! between two successive registry snapshots (windowed txn/s, abort rate
//! by reason, stage quantiles from mergeable histogram diffs, WAL flush
//! latency, per-replica apply watermarks and lag, watchdog verdicts) —
//! pushed into a bounded drop-oldest [`TimelineRing`], so a soak that
//! runs for hours keeps the recent past at O(1) memory, exactly like the
//! flight recorder keeps recent events.
//!
//! Frames read the existing lock-free registry (atomic counters and the
//! mergeable histograms): sampling adds **no synchronization edges to
//! the hot path** — the only new lock is the ring's own mutex, touched
//! once per cadence tick by the recorder thread and by readers.
//!
//! Two export surfaces, both hand-rolled like the rest of the repo's
//! JSON (the vendored serde is a no-op stub): [`write_jsonl`] /
//! [`parse_jsonl`] round-trip a recorded run as `timeline.jsonl` (one
//! frame per line — the `mvccstat replay` input and a CI-validated
//! artifact), and [`metrics_text`] renders one frame as a
//! Prometheus-style text exposition for scrape-shaped consumers.

use crate::histogram::HistogramSnapshot;
use crate::json::{self, JsonValue};
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default frame capacity of a [`TimelineRing`] — ten minutes of recent
/// past at the default 100 ms cadence.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 6_000;

/// A compact five-number summary of one windowed histogram diff: what a
/// frame stores instead of the full bucket vector, so frames stay small
/// enough to ring-buffer and serialize by the thousand.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantileSummary {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Mean of the windowed samples (0.0 when empty).
    pub mean: f64,
    /// Interpolated windowed p50 (0.0 when empty).
    pub p50: f64,
    /// Interpolated windowed p95 (0.0 when empty).
    pub p95: f64,
    /// Interpolated windowed p99 (0.0 when empty).
    pub p99: f64,
    /// Interpolated windowed p999 (0.0 when empty).
    pub p999: f64,
}

impl QuantileSummary {
    /// Summarizes a (windowed) histogram snapshot.
    pub fn from_histogram(h: &HistogramSnapshot) -> Self {
        QuantileSummary {
            count: h.count(),
            mean: h.mean().unwrap_or(0.0),
            p50: h.quantile(0.50).unwrap_or(0.0),
            p95: h.quantile(0.95).unwrap_or(0.0),
            p99: h.quantile(0.99).unwrap_or(0.0),
            p999: h.quantile(0.999).unwrap_or(0.0),
        }
    }

    /// True when the window recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn write_json(&self, out: &mut String) {
        out.push_str(&format!("{{\"count\":{}", self.count));
        if self.count > 0 {
            for (key, value) in [
                ("mean", self.mean),
                ("p50", self.p50),
                ("p95", self.p95),
                ("p99", self.p99),
                ("p999", self.p999),
            ] {
                out.push_str(&format!(",\"{key}\":"));
                json::write_number(out, value);
            }
        }
        out.push('}');
    }

    fn from_json(value: &JsonValue, what: &str) -> Result<Self, String> {
        let count = require_u64(value, "count", what)?;
        if count == 0 {
            return Ok(QuantileSummary::default());
        }
        Ok(QuantileSummary {
            count,
            mean: require_f64(value, "mean", what)?,
            p50: require_f64(value, "p50", what)?,
            p95: require_f64(value, "p95", what)?,
            p99: require_f64(value, "p99", what)?,
            p999: require_f64(value, "p999", what)?,
        })
    }
}

/// One replica's position inside a frame's window.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaFrame {
    /// The member's name (probe-assigned, e.g. `replica-0`).
    pub name: String,
    /// The replica's apply watermark (next LSN it will apply) at sample
    /// time.
    pub watermark: u64,
    /// How far the watermark trails the primary's last appended LSN.
    pub lag_lsn: u64,
}

/// One windowed delta frame of the metrics timeline.
///
/// Counter fields (`begun`, `committed`, `aborted`, `wal_flushes`, …)
/// are deltas over the frame's window; gauge fields (`primary_lsn`,
/// `epoch`, watermarks) are point-in-time readings at the end of it.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineFrame {
    /// Frame sequence number (0-based, monotone per recorder).
    pub seq: u64,
    /// Microseconds since the sampler started, at the end of the window.
    pub at_us: u64,
    /// Window length in microseconds.
    pub window_us: u64,
    /// Sessions begun inside the window.
    pub begun: u64,
    /// Transactions committed inside the window.
    pub committed: u64,
    /// Transactions aborted inside the window.
    pub aborted: u64,
    /// Windowed committed-transaction throughput (per second).
    pub txn_s: f64,
    /// Windowed abort fraction: aborted / (committed + aborted), 0.0 for
    /// an idle window.
    pub abort_rate: f64,
    /// Windowed abort counts by reason name (non-zero reasons only).
    pub aborts_by_reason: Vec<(String, u64)>,
    /// WAL flushes inside the window.
    pub wal_flushes: u64,
    /// WAL fsyncs inside the window.
    pub wal_fsyncs: u64,
    /// Windowed commit-latency summary (from the always-on fine
    /// histogram diff).
    pub commit: QuantileSummary,
    /// Windowed WAL flush/fsync latency summary (from the `wal-flush`
    /// stage diff; empty with telemetry off).
    pub wal_flush: QuantileSummary,
    /// Windowed per-stage summaries by stage name (non-empty windows
    /// only; empty with telemetry off).
    pub stages: Vec<(String, QuantileSummary)>,
    /// The primary's last appended WAL LSN at sample time (0 with
    /// durability off).
    pub primary_lsn: u64,
    /// The primary's flushed-horizon LSN at sample time.
    pub durable_lsn: u64,
    /// The primary's epoch at sample time.
    pub epoch: u64,
    /// Per-replica positions at sample time.
    pub replicas: Vec<ReplicaFrame>,
    /// Watchdog windows ruled inside the frame's window.
    pub watchdog_windows: u64,
    /// Watchdog violations ruled inside the frame's window (any non-zero
    /// value is a correctness alarm).
    pub watchdog_violations: u64,
}

impl TimelineFrame {
    /// An all-zero frame (test/scripting convenience).
    pub fn zeroed(seq: u64) -> Self {
        TimelineFrame {
            seq,
            at_us: 0,
            window_us: 1,
            begun: 0,
            committed: 0,
            aborted: 0,
            txn_s: 0.0,
            abort_rate: 0.0,
            aborts_by_reason: Vec::new(),
            wal_flushes: 0,
            wal_fsyncs: 0,
            commit: QuantileSummary::default(),
            wal_flush: QuantileSummary::default(),
            stages: Vec::new(),
            primary_lsn: 0,
            durable_lsn: 0,
            epoch: 0,
            replicas: Vec::new(),
            watchdog_windows: 0,
            watchdog_violations: 0,
        }
    }

    /// Serializes the frame as one compact JSON object (one
    /// `timeline.jsonl` line, without the trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"seq\":{},\"at_us\":{},\"window_us\":{},\"begun\":{},\"committed\":{},\"aborted\":{}",
            self.seq, self.at_us, self.window_us, self.begun, self.committed, self.aborted
        ));
        out.push_str(",\"txn_s\":");
        json::write_number(&mut out, self.txn_s);
        out.push_str(",\"abort_rate\":");
        json::write_number(&mut out, self.abort_rate);
        out.push_str(",\"aborts\":{");
        for (i, (reason, count)) in self.aborts_by_reason.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, reason);
            out.push_str(&format!(":{count}"));
        }
        out.push_str(&format!(
            "}},\"wal_flushes\":{},\"wal_fsyncs\":{}",
            self.wal_flushes, self.wal_fsyncs
        ));
        out.push_str(",\"commit\":");
        self.commit.write_json(&mut out);
        out.push_str(",\"wal_flush\":");
        self.wal_flush.write_json(&mut out);
        out.push_str(",\"stages\":{");
        for (i, (stage, summary)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, stage);
            out.push(':');
            summary.write_json(&mut out);
        }
        out.push_str(&format!(
            "}},\"primary_lsn\":{},\"durable_lsn\":{},\"epoch\":{}",
            self.primary_lsn, self.durable_lsn, self.epoch
        ));
        out.push_str(",\"replicas\":[");
        for (i, replica) in self.replicas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_string(&mut out, &replica.name);
            out.push_str(&format!(
                ",\"watermark\":{},\"lag_lsn\":{}}}",
                replica.watermark, replica.lag_lsn
            ));
        }
        out.push_str(&format!(
            "],\"watchdog_windows\":{},\"watchdog_violations\":{}}}",
            self.watchdog_windows, self.watchdog_violations
        ));
        out
    }

    /// Parses one frame from a parsed JSONL line.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let seq = require_u64(value, "seq", "frame")?;
        let what = format!("frame {seq}");
        let mut aborts_by_reason = Vec::new();
        if let Some(pairs) = value.get("aborts").and_then(JsonValue::as_object) {
            for (reason, count) in pairs {
                let count = count
                    .as_number()
                    .ok_or_else(|| format!("{what}: non-numeric abort count for {reason}"))?;
                aborts_by_reason.push((reason.clone(), count as u64));
            }
        } else {
            return Err(format!("{what}: missing or non-object key: aborts"));
        }
        let mut stages = Vec::new();
        if let Some(pairs) = value.get("stages").and_then(JsonValue::as_object) {
            for (stage, summary) in pairs {
                stages.push((stage.clone(), QuantileSummary::from_json(summary, &what)?));
            }
        } else {
            return Err(format!("{what}: missing or non-object key: stages"));
        }
        let mut replicas = Vec::new();
        if let Some(members) = value.get("replicas").and_then(JsonValue::as_array) {
            for member in members {
                let name = member
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{what}: replica without a name"))?;
                replicas.push(ReplicaFrame {
                    name: name.to_string(),
                    watermark: require_u64(member, "watermark", &what)?,
                    lag_lsn: require_u64(member, "lag_lsn", &what)?,
                });
            }
        } else {
            return Err(format!("{what}: missing or non-array key: replicas"));
        }
        let commit = value
            .get("commit")
            .ok_or_else(|| format!("{what}: missing key: commit"))
            .and_then(|v| QuantileSummary::from_json(v, &what))?;
        let wal_flush = value
            .get("wal_flush")
            .ok_or_else(|| format!("{what}: missing key: wal_flush"))
            .and_then(|v| QuantileSummary::from_json(v, &what))?;
        Ok(TimelineFrame {
            seq,
            at_us: require_u64(value, "at_us", &what)?,
            window_us: require_u64(value, "window_us", &what)?,
            begun: require_u64(value, "begun", &what)?,
            committed: require_u64(value, "committed", &what)?,
            aborted: require_u64(value, "aborted", &what)?,
            txn_s: require_f64(value, "txn_s", &what)?,
            abort_rate: require_f64(value, "abort_rate", &what)?,
            aborts_by_reason,
            wal_flushes: require_u64(value, "wal_flushes", &what)?,
            wal_fsyncs: require_u64(value, "wal_fsyncs", &what)?,
            commit,
            wal_flush,
            stages,
            primary_lsn: require_u64(value, "primary_lsn", &what)?,
            durable_lsn: require_u64(value, "durable_lsn", &what)?,
            epoch: require_u64(value, "epoch", &what)?,
            replicas,
            watchdog_windows: require_u64(value, "watchdog_windows", &what)?,
            watchdog_violations: require_u64(value, "watchdog_violations", &what)?,
        })
    }
}

impl fmt::Display for TimelineFrame {
    /// One `mvccstat` table row: the per-frame live/replay rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:<5} +{:>7.1}ms  txn/s {:>9.0}  abort {:>5.1}%  p99 {:>8.1}µs  \
             fsync p99 {:>7.1}µs  lsn {:>6}",
            self.seq,
            self.at_us as f64 / 1_000.0,
            self.txn_s,
            self.abort_rate * 100.0,
            self.commit.p99,
            self.wal_flush.p99,
            self.primary_lsn,
        )?;
        for replica in &self.replicas {
            write!(f, "  {} lag {}", replica.name, replica.lag_lsn)?;
        }
        if self.watchdog_violations > 0 {
            write!(f, "  WATCHDOG-VIOLATION x{}", self.watchdog_violations)?;
        }
        Ok(())
    }
}

fn require_u64(value: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_number)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("{what}: missing or non-numeric key: {key}"))
}

fn require_f64(value: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(JsonValue::as_number)
        .ok_or_else(|| format!("{what}: missing or non-numeric key: {key}"))
}

/// Serializes frames as JSONL: one frame per line, oldest first — the
/// `timeline.jsonl` artifact format.
pub fn write_jsonl(frames: &[TimelineFrame]) -> String {
    let mut out = String::with_capacity(frames.len() * 512);
    for frame in frames {
        out.push_str(&frame.to_json_line());
        out.push('\n');
    }
    out
}

/// Parses a `timeline.jsonl` document (blank lines skipped), returning
/// the frames oldest first.
pub fn parse_jsonl(text: &str) -> Result<Vec<TimelineFrame>, String> {
    let mut frames = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        frames.push(TimelineFrame::from_json(&value).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(frames)
}

/// Renders one frame as a Prometheus-style text exposition: `# TYPE`
/// headers, `snake_case` metric names, labels for per-reason / per-stage
/// / per-member breakdowns.  Windowed deltas are exposed as gauges (the
/// frame *is* the rate window).
pub fn metrics_text(frame: &TimelineFrame) -> String {
    let mut out = String::with_capacity(1024);
    let mut gauge = |name: &str, labels: &str, value: f64, typed: bool| {
        if typed {
            out.push_str(&format!("# TYPE {name} gauge\n"));
        }
        if labels.is_empty() {
            out.push_str(&format!("{name} {value}\n"));
        } else {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    };
    gauge("mvcc_timeline_frame", "", frame.seq as f64, true);
    gauge(
        "mvcc_timeline_window_seconds",
        "",
        frame.window_us as f64 / 1e6,
        true,
    );
    gauge("mvcc_txn_rate", "", frame.txn_s, true);
    gauge("mvcc_abort_rate", "", frame.abort_rate, true);
    let mut first = true;
    for (reason, count) in &frame.aborts_by_reason {
        gauge(
            "mvcc_aborts_window",
            &format!("reason=\"{reason}\""),
            *count as f64,
            first,
        );
        first = false;
    }
    let mut quantiles = |name: &str, label: &str, summary: &QuantileSummary, family_first: bool| {
        if summary.is_empty() {
            return;
        }
        let mut typed = family_first;
        for (q, value) in [
            ("0.5", summary.p50),
            ("0.95", summary.p95),
            ("0.99", summary.p99),
            ("0.999", summary.p999),
        ] {
            let labels = if label.is_empty() {
                format!("quantile=\"{q}\"")
            } else {
                format!("{label},quantile=\"{q}\"")
            };
            gauge(name, &labels, value, typed);
            typed = false;
        }
    };
    quantiles("mvcc_commit_latency_us", "", &frame.commit, true);
    quantiles("mvcc_wal_flush_us", "", &frame.wal_flush, true);
    // One TYPE header for the whole mvcc_stage_us family, not one per
    // stage — the exposition format allows a family's TYPE only once.
    let mut family_first = true;
    for (stage, summary) in &frame.stages {
        quantiles(
            "mvcc_stage_us",
            &format!("stage=\"{stage}\""),
            summary,
            family_first,
        );
        family_first = family_first && summary.is_empty();
    }
    gauge("mvcc_wal_fsyncs_window", "", frame.wal_fsyncs as f64, true);
    gauge("mvcc_primary_lsn", "", frame.primary_lsn as f64, true);
    gauge("mvcc_durable_lsn", "", frame.durable_lsn as f64, true);
    gauge("mvcc_epoch", "", frame.epoch as f64, true);
    let mut first = true;
    for replica in &frame.replicas {
        gauge(
            "mvcc_replica_lag_lsn",
            &format!("member=\"{}\"", replica.name),
            replica.lag_lsn as f64,
            first,
        );
        first = false;
    }
    gauge(
        "mvcc_watchdog_violations_window",
        "",
        frame.watchdog_violations as f64,
        true,
    );
    out
}

#[derive(Debug)]
struct FrameRing {
    frames: VecDeque<TimelineFrame>,
    dropped: u64,
}

/// The bounded drop-oldest frame ring a [`TimelineRecorder`] fills and
/// readers (the `rates:` Display block, `mvccstat live`, the anomaly
/// assertions) snapshot from.
#[derive(Debug)]
pub struct TimelineRing {
    capacity: usize,
    ring: TrackedMutex<FrameRing>,
}

impl TimelineRing {
    /// A ring holding at most `capacity` frames (zero is bumped to 1).
    pub fn new(capacity: usize) -> Self {
        TimelineRing {
            capacity: capacity.max(1),
            ring: TrackedMutex::new(
                lock_class!("telemetry.timeline-ring"),
                FrameRing {
                    frames: VecDeque::new(),
                    dropped: 0,
                },
            ),
        }
    }

    /// Appends a frame, dropping the oldest at capacity.
    pub fn push(&self, frame: TimelineFrame) {
        let mut ring = self.ring.lock();
        if ring.frames.len() == self.capacity {
            ring.frames.pop_front();
            ring.dropped += 1;
        }
        ring.frames.push_back(frame);
    }

    /// The newest frame, if any.
    pub fn latest(&self) -> Option<TimelineFrame> {
        self.ring.lock().frames.back().cloned()
    }

    /// Copies the held frames out, oldest first.
    pub fn frames(&self) -> Vec<TimelineFrame> {
        self.ring.lock().frames.iter().cloned().collect()
    }

    /// Number of frames currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().frames.len()
    }

    /// True when no frame has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames dropped to keep the ring bounded.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// What a [`TimelineRecorder`] samples each tick.  Implemented by the
/// engine's sampler (which owns the previous-snapshot state the deltas
/// are computed against); closures work too.
pub trait FrameSource: Send {
    /// Produces the frame for sequence number `seq`.
    fn sample(&mut self, seq: u64) -> TimelineFrame;
}

impl<F: FnMut(u64) -> TimelineFrame + Send> FrameSource for F {
    fn sample(&mut self, seq: u64) -> TimelineFrame {
        self(seq)
    }
}

/// The background cadence thread: samples its [`FrameSource`] every
/// `interval` into a shared [`TimelineRing`].  Stopping (or dropping)
/// the recorder takes one final closing sample, so even a run shorter
/// than the cadence yields at least one frame.
#[derive(Debug)]
pub struct TimelineRecorder {
    stop: Arc<AtomicBool>,
    ring: Arc<TimelineRing>,
    handle: Option<JoinHandle<()>>,
}

impl TimelineRecorder {
    /// Spawns the recorder thread.
    pub fn start(
        mut source: impl FrameSource + 'static,
        interval: Duration,
        capacity: usize,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let ring = Arc::new(TimelineRing::new(capacity));
        let stop_flag = Arc::clone(&stop);
        let sink = Arc::clone(&ring);
        let handle = std::thread::spawn(move || {
            let mut seq = 0u64;
            while !stop_flag.load(Ordering::Acquire) {
                std::thread::park_timeout(interval);
                if stop_flag.load(Ordering::Acquire) {
                    break;
                }
                sink.push(source.sample(seq));
                seq += 1;
            }
            // The closing frame: whatever happened since the last tick.
            sink.push(source.sample(seq));
        });
        TimelineRecorder {
            stop,
            ring,
            handle: Some(handle),
        }
    }

    /// The shared frame ring (clone to read from other threads).
    pub fn ring(&self) -> Arc<TimelineRing> {
        Arc::clone(&self.ring)
    }

    /// Stops the thread (after its closing sample) and returns the ring.
    pub fn stop(mut self) -> Arc<TimelineRing> {
        self.shutdown();
        Arc::clone(&self.ring)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for TimelineRecorder {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame(seq: u64) -> TimelineFrame {
        let mut frame = TimelineFrame::zeroed(seq);
        frame.at_us = 1000 * (seq + 1);
        frame.window_us = 1000;
        frame.begun = 12;
        frame.committed = 10;
        frame.aborted = 2;
        frame.txn_s = 10_000.0;
        frame.abort_rate = 2.0 / 12.0;
        frame.aborts_by_reason = vec![("write-conflict".into(), 2)];
        frame.wal_flushes = 3;
        frame.wal_fsyncs = 1;
        frame.commit = QuantileSummary {
            count: 10,
            mean: 12.5,
            p50: 9.0,
            p95: 30.0,
            p99: 55.0,
            p999: 80.0,
        };
        frame.wal_flush = QuantileSummary {
            count: 3,
            mean: 4.0,
            p50: 3.0,
            p95: 6.0,
            p99: 7.0,
            p999: 7.5,
        };
        frame.stages = vec![
            ("certify".into(), frame.wal_flush),
            ("group-commit-apply".into(), frame.commit),
        ];
        frame.primary_lsn = 42;
        frame.durable_lsn = 40;
        frame.epoch = 1;
        frame.replicas = vec![ReplicaFrame {
            name: "replica-0".into(),
            watermark: 39,
            lag_lsn: 3,
        }];
        frame.watchdog_windows = 1;
        frame
    }

    #[test]
    fn the_ring_is_bounded_and_drops_oldest() {
        let ring = TimelineRing::new(3);
        for seq in 0..7 {
            ring.push(TimelineFrame::zeroed(seq));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 4);
        let seqs: Vec<u64> = ring.frames().iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "oldest frames must go first");
        assert_eq!(ring.latest().unwrap().seq, 6);
        assert_eq!(TimelineRing::new(0).capacity(), 1, "zero capacity bumped");
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let frames: Vec<TimelineFrame> = (0..4).map(sample_frame).collect();
        let text = write_jsonl(&frames);
        assert_eq!(text.lines().count(), 4, "one line per frame");
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, frames, "round trip must be lossless");
        // Blank lines are tolerated; garbage is not.
        assert_eq!(parse_jsonl("\n").unwrap(), Vec::new());
        assert!(parse_jsonl("{\"seq\":}").is_err());
        assert!(
            parse_jsonl("{\"seq\":1}").unwrap_err().contains("aborts"),
            "missing keys must be named"
        );
    }

    #[test]
    fn empty_quantile_summaries_serialize_compactly() {
        let frame = TimelineFrame::zeroed(9);
        let line = frame.to_json_line();
        assert!(line.contains("\"commit\":{\"count\":0}"), "{line}");
        let parsed = parse_jsonl(&format!("{line}\n")).unwrap();
        assert_eq!(parsed[0], frame);
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let text = metrics_text(&sample_frame(3));
        for needle in [
            "# TYPE mvcc_txn_rate gauge\nmvcc_txn_rate 10000\n",
            "mvcc_abort_rate 0.16666666666666666\n",
            "mvcc_aborts_window{reason=\"write-conflict\"} 2\n",
            "mvcc_commit_latency_us{quantile=\"0.99\"} 55\n",
            "mvcc_stage_us{stage=\"certify\",quantile=\"0.5\"} 3\n",
            "mvcc_replica_lag_lsn{member=\"replica-0\"} 3\n",
            "mvcc_primary_lsn 42\n",
            "mvcc_watchdog_violations_window 0\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Exactly one TYPE header per metric family.
        let type_lines = text
            .lines()
            .filter(|l| l.starts_with("# TYPE mvcc_stage_us "))
            .count();
        assert_eq!(type_lines, 1, "{text}");
    }

    #[test]
    fn the_recorder_takes_a_closing_sample_on_stop() {
        let recorder = TimelineRecorder::start(
            |seq: u64| TimelineFrame::zeroed(seq),
            Duration::from_secs(3600),
            8,
        );
        let ring = recorder.stop();
        assert_eq!(ring.len(), 1, "the closing sample must land");
        assert_eq!(ring.latest().unwrap().seq, 0);
    }

    #[test]
    fn the_recorder_samples_on_cadence() {
        let recorder = TimelineRecorder::start(
            |seq: u64| TimelineFrame::zeroed(seq),
            Duration::from_millis(1),
            64,
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while recorder.ring().len() < 3 {
            assert!(std::time::Instant::now() < deadline, "recorder stalled");
            std::thread::sleep(Duration::from_millis(1));
        }
        let ring = recorder.stop();
        let frames = ring.frames();
        assert!(frames.len() >= 3);
        for pair in frames.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "sequence must be dense");
        }
    }

    #[test]
    fn frame_display_is_one_table_row() {
        let rendered = format!("{}", sample_frame(3));
        assert!(rendered.contains("txn/s"), "{rendered}");
        assert!(rendered.contains("replica-0 lag 3"), "{rendered}");
        assert!(!rendered.contains('\n'), "one row per frame: {rendered}");
        let mut violating = sample_frame(4);
        violating.watchdog_violations = 2;
        assert!(format!("{violating}").contains("WATCHDOG-VIOLATION x2"));
    }
}
