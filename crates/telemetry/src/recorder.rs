//! The telemetry registry: per-stage shared histograms fed by
//! thread-local buffers, plus the flight recorder.
//!
//! ## Why the hot path never touches an atomic
//!
//! A stage sample is recorded into a *thread-local* [`LocalHistogram`] —
//! a plain array increment, no atomic, no lock, no fence.  Locals are
//! drained into the shared per-stage [`Histogram`]s (a short burst of
//! relaxed `fetch_add`s) only at batch boundaries: every
//! [`FLUSH_EVERY`] samples, when the owning thread exits (the
//! thread-local's `Drop`), or explicitly via
//! [`Telemetry::flush_current_thread`].  Recording therefore cannot
//! perturb admission order: it adds no synchronization edges between
//! worker threads — two sessions that never synchronized before
//! telemetry still never synchronize, so the interleavings the chaos
//! tests explore are the same ones production sees.
//!
//! ## Visibility contract
//!
//! [`Telemetry::snapshot`] flushes the *calling* thread's buffers and
//! reads the shared histograms.  Samples still buffered in *other* live
//! threads are invisible until those threads hit a flush boundary — so
//! benchmarks join their workers before snapshotting (worker exit
//! flushes), which makes joined-then-snapshot totals exact.

use crate::exemplar::{ExemplarReservoir, EXEMPLAR_CAPACITY};
use crate::flight::{EventKind, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::histogram::{Histogram, HistogramSnapshot, LocalHistogram};
use crate::json;
use crate::stage::Stage;
use crate::trace::{TraceId, TraceLog, DEFAULT_TRACE_LOG_CAPACITY};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Samples buffered per thread before a drain into the shared registry.
pub const FLUSH_EVERY: u32 = 256;

/// Whether an engine records telemetry at all.
///
/// `Off` is the zero-cost mode: the engine holds no registry, so every
/// stage probe is an `Option` check that folds to "do nothing" — no
/// clock reads, no buffers, no events.  The overhead guard test pins
/// `On` within a few percent of `Off`; `Off` pins it at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Record per-stage histograms and flight-recorder events.
    On,
    /// Record nothing (the default).
    #[default]
    Off,
}

impl TelemetryMode {
    /// True when recording is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, TelemetryMode::On)
    }
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct Shared {
    id: u64,
    stages: Vec<Histogram>,
    flight: FlightRecorder,
    exemplars: ExemplarReservoir,
    trace_log: TraceLog,
}

/// A telemetry registry: one histogram per [`Stage`] plus a flight
/// recorder.  Cheap to clone (it is a handle); all clones feed the same
/// registry.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Shared>,
}

impl Telemetry {
    /// A fresh registry with the default flight-recorder capacity.
    pub fn new() -> Self {
        Telemetry::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A fresh registry whose flight recorder holds `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Arc::new(Shared {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                stages: (0..Stage::COUNT).map(|_| Histogram::new()).collect(),
                flight: FlightRecorder::new(capacity),
                exemplars: ExemplarReservoir::new(EXEMPLAR_CAPACITY),
                trace_log: TraceLog::new(DEFAULT_TRACE_LOG_CAPACITY),
            }),
        }
    }

    /// Records one duration sample for `stage` (stored in microseconds).
    pub fn record_duration(&self, stage: Stage, elapsed: Duration) {
        self.record_value(
            stage,
            u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
        );
    }

    /// Records one raw sample for `stage` — a value in the stage's unit.
    ///
    /// The hot path: a plain store into this thread's local buffer.
    pub fn record_value(&self, stage: Stage, value: u64) {
        let recorded = LOCAL.try_with(|local| {
            local.borrow_mut().record(&self.inner, stage, value);
        });
        if recorded.is_err() {
            // The thread-local is mid-destruction (thread teardown).
            // Fall back to a direct shared store — correctness over the
            // fast path for this final handful of samples.
            self.inner.stages[stage.index()].record(value);
        }
    }

    /// Records a structured flight-recorder event.
    pub fn record_event(&self, kind: EventKind) {
        self.inner.flight.record(kind);
    }

    /// Records a flight-recorder event attributed to a trace.
    pub fn record_event_traced(&self, kind: EventKind, trace: Option<TraceId>) {
        self.inner.flight.record_traced(kind, trace);
    }

    /// The flight recorder (for dumps and tests).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// The tail-exemplar reservoir: full span trees of the slowest
    /// commits recorded through this registry.
    pub fn exemplars(&self) -> &ExemplarReservoir {
        &self.inner.exemplars
    }

    /// The cross-cutting trace log: WAL-flush, replica-apply,
    /// follower-read and promotion spans, correlated by LSN.
    pub fn trace_log(&self) -> &TraceLog {
        &self.inner.trace_log
    }

    /// Drains the calling thread's buffered samples into the shared
    /// registry.
    pub fn flush_current_thread(&self) {
        let _ = LOCAL.try_with(|local| local.borrow_mut().flush_registry(self.inner.id));
    }

    /// Snapshots every stage histogram (after flushing the calling
    /// thread's buffers — see the module docs for the visibility
    /// contract).  Only stages with at least one sample appear.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.flush_current_thread();
        let mut stages = Vec::new();
        for stage in Stage::all() {
            let hist = self.inner.stages[stage.index()].snapshot();
            if !hist.is_empty() {
                stages.push(StageSnapshot {
                    stage,
                    histogram: hist,
                });
            }
        }
        TelemetrySnapshot { stages }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

/// One stage's snapshotted histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Which stage.
    pub stage: Stage,
    /// Its recorded distribution.
    pub histogram: HistogramSnapshot,
}

/// A point-in-time copy of every non-empty stage histogram, with the
/// machine-readable exporter the bench trajectory is built from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Non-empty stages, in registry order.
    pub stages: Vec<StageSnapshot>,
}

impl TelemetrySnapshot {
    /// A snapshot with no recorded stages (what `TelemetryMode::Off`
    /// reports).
    pub fn empty() -> Self {
        TelemetrySnapshot { stages: Vec::new() }
    }

    /// True when no stage recorded anything.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The histogram for `stage`, if it recorded anything.
    pub fn get(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| &s.histogram)
    }

    /// The windowed delta `self − earlier`, where `earlier` is a prior
    /// snapshot of the *same* registry: the per-stage
    /// [`HistogramSnapshot::diff`], keeping only stages that recorded
    /// inside the window.  This is what turns the cumulative registry
    /// into timeline frames.
    pub fn diff(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut stages = Vec::new();
        for entry in &self.stages {
            let window = match earlier.get(entry.stage) {
                Some(before) => entry.histogram.diff(before),
                None => entry.histogram.clone(),
            };
            if !window.is_empty() {
                stages.push(StageSnapshot {
                    stage: entry.stage,
                    histogram: window,
                });
            }
        }
        TelemetrySnapshot { stages }
    }

    /// Serializes the snapshot as a JSON object keyed by stage name:
    ///
    /// ```json
    /// {"certify":{"unit":"us","count":42,"mean":3.1,
    ///             "p50":2.5,"p95":7.9,"p99":12.0,"p999":14.5}, ...}
    /// ```
    ///
    /// Quantile keys are present only for non-empty histograms (and
    /// every stage listed here is non-empty), so consumers can rely on
    /// `count > 0 ⇒ p50/p95/p99/p999 present and monotone`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, entry) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, entry.stage.name());
            out.push_str(":{\"unit\":");
            json::write_string(&mut out, entry.stage.unit().as_str());
            out.push_str(&format!(",\"count\":{}", entry.histogram.count()));
            if let Some(mean) = entry.histogram.mean() {
                out.push_str(",\"mean\":");
                json::write_number(&mut out, mean);
            }
            for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999)] {
                if let Some(v) = entry.histogram.quantile(q) {
                    out.push_str(&format!(",\"{key}\":"));
                    json::write_number(&mut out, v);
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------
// Thread-local buffering.
// ---------------------------------------------------------------------

thread_local! {
    static LOCAL: RefCell<LocalRegistry> = RefCell::new(LocalRegistry::default());
}

/// Per-thread buffers for every registry this thread has recorded into.
/// A thread rarely touches more than one or two registries, so lookup is
/// a short linear scan.
#[derive(Default)]
struct LocalRegistry {
    entries: Vec<LocalEntry>,
}

struct LocalEntry {
    id: u64,
    shared: Weak<Shared>,
    stages: Vec<LocalHistogram>,
    pending: u32,
}

impl LocalRegistry {
    fn record(&mut self, shared: &Arc<Shared>, stage: Stage, value: u64) {
        let entry = match self.entries.iter_mut().find(|e| e.id == shared.id) {
            Some(entry) => entry,
            None => {
                self.entries.push(LocalEntry {
                    id: shared.id,
                    shared: Arc::downgrade(shared),
                    stages: (0..Stage::COUNT).map(|_| LocalHistogram::new()).collect(),
                    pending: 0,
                });
                // lint: allow(unwrap) — entries is non-empty: an entry was pushed just above
                self.entries.last_mut().expect("just pushed")
            }
        };
        entry.stages[stage.index()].record(value);
        entry.pending += 1;
        if entry.pending >= FLUSH_EVERY {
            entry.flush();
        }
    }

    fn flush_registry(&mut self, id: u64) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.id == id) {
            entry.flush();
        }
    }
}

impl LocalEntry {
    fn flush(&mut self) {
        if let Some(shared) = self.shared.upgrade() {
            for (i, local) in self.stages.iter_mut().enumerate() {
                if local.total() > 0 {
                    shared.stages[i].merge(local);
                    local.clear();
                }
            }
        }
        self.pending = 0;
    }
}

impl Drop for LocalRegistry {
    fn drop(&mut self) {
        // Thread exit: drain whatever is buffered so joined-then-
        // snapshot sees every sample.
        for entry in &mut self.entries {
            entry.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_keeps_only_window_active_stages() {
        let telemetry = Telemetry::new();
        telemetry.record_value(Stage::Certify, 10);
        telemetry.record_value(Stage::WalFlush, 100);
        let earlier = telemetry.snapshot();
        telemetry.record_value(Stage::Certify, 20);
        telemetry.record_value(Stage::ReplicaApply, 5);
        let later = telemetry.snapshot();

        let window = later.diff(&earlier);
        // WalFlush was idle inside the window, so it must vanish.
        assert!(window.get(Stage::WalFlush).is_none());
        let certify = window.get(Stage::Certify).expect("certify in window");
        assert_eq!(certify.count(), 1, "only the windowed sample remains");
        // ReplicaApply first appeared inside the window: kept whole.
        assert_eq!(window.get(Stage::ReplicaApply).map(|h| h.count()), Some(1));
        // Diffing identical snapshots yields nothing.
        assert!(later.diff(&later).is_empty());
    }

    #[test]
    fn concurrent_recording_is_deterministic_after_joins() {
        // N threads each record M samples; once all are joined, the
        // merged totals must equal the sum of the inputs exactly — no
        // lost updates, no double counts, buffered tails included.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000; // not a multiple of FLUSH_EVERY
        let telemetry = Telemetry::new();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let telemetry = telemetry.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        telemetry.record_value(Stage::Certify, (t * PER_THREAD + i) % 1000);
                        telemetry.record_value(Stage::WalFlushTxns, 4);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = telemetry.snapshot();
        let certify = snap.get(Stage::Certify).unwrap();
        assert_eq!(certify.count(), THREADS * PER_THREAD);
        let flush = snap.get(Stage::WalFlushTxns).unwrap();
        assert_eq!(flush.count(), THREADS * PER_THREAD);
        assert_eq!(flush.mean(), Some(4.0));
        // Untouched stages are absent, not zero-filled.
        assert_eq!(snap.get(Stage::FailoverDetect), None);
    }

    #[test]
    fn snapshot_flushes_the_calling_thread() {
        let telemetry = Telemetry::new();
        // Fewer than FLUSH_EVERY samples: still buffered locally…
        for _ in 0..10 {
            telemetry.record_value(Stage::CommitLatency, 5);
        }
        // …but a snapshot must see them (it drains this thread first).
        let snap = telemetry.snapshot();
        assert_eq!(snap.get(Stage::CommitLatency).unwrap().count(), 10);
    }

    #[test]
    fn two_registries_do_not_cross_talk() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.record_value(Stage::Certify, 1);
        b.record_value(Stage::WalFlush, 2);
        assert_eq!(a.snapshot().get(Stage::WalFlush), None);
        assert_eq!(b.snapshot().get(Stage::Certify), None);
        assert_eq!(a.snapshot().get(Stage::Certify).unwrap().count(), 1);
    }

    #[test]
    fn duration_recording_uses_microseconds() {
        let telemetry = Telemetry::new();
        telemetry.record_duration(Stage::WalFlush, Duration::from_millis(3));
        let snap = telemetry.snapshot();
        let mean = snap.get(Stage::WalFlush).unwrap().mean().unwrap();
        assert!((mean - 3000.0).abs() < 200.0, "mean = {mean}");
    }

    #[test]
    fn off_mode_is_off_and_default() {
        assert_eq!(TelemetryMode::default(), TelemetryMode::Off);
        assert!(!TelemetryMode::Off.is_on());
        assert!(TelemetryMode::On.is_on());
    }

    #[test]
    fn to_json_round_trips_against_a_hand_written_document() {
        let telemetry = Telemetry::new();
        // One sample of 3 in Certify: unit-width bucket [3,4), so every
        // quantile interpolates to 3.5 and the mean is exactly 3.
        telemetry.record_value(Stage::Certify, 3);
        // Four samples of 8 in WalFlushTxns: bucket [8,9); mid-rank
        // interpolation puts p50 at rank 2 of 4 → 8 + (2-0.5)/4 = 8.375,
        // p95/p99/p999 at rank 4 → 8.875.
        for _ in 0..4 {
            telemetry.record_value(Stage::WalFlushTxns, 8);
        }
        let emitted = telemetry.snapshot().to_json();
        let expected = concat!(
            "{\"certify\":{\"unit\":\"us\",\"count\":1,\"mean\":3,",
            "\"p50\":3.5,\"p95\":3.5,\"p99\":3.5,\"p999\":3.5},",
            "\"wal-flush-txns\":{\"unit\":\"count\",\"count\":4,\"mean\":8,",
            "\"p50\":8.375,\"p95\":8.875,\"p99\":8.875,\"p999\":8.875}}"
        );
        assert_eq!(
            json::parse(&emitted).unwrap(),
            json::parse(expected).unwrap(),
            "emitted: {emitted}"
        );
    }

    #[test]
    fn empty_snapshot_exports_an_empty_object() {
        assert_eq!(TelemetrySnapshot::empty().to_json(), "{}");
        assert!(Telemetry::new().snapshot().is_empty());
    }
}
