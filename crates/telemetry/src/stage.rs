//! The stage taxonomy: every pipeline point the engine traces.
//!
//! A [`Stage`] names one instrumented point in the transaction pipeline —
//! from admission queue-wait through WAL flush to failover MTTR.  The
//! enum is deliberately closed: stages index a fixed-size histogram
//! registry, so adding one is a one-line change here plus a probe at the
//! call site, and every consumer (snapshot, Display, JSON exporter)
//! picks it up for free.

use std::fmt;

/// One instrumented point in the pipeline.
///
/// Stages come in two unit families (see [`Stage::unit`]): durations in
/// microseconds and size distributions in plain counts (batch sizes).
/// Both are recorded into the same log-linear histogram type — a batch
/// of 7 steps and a latency of 7 µs land in the same bucket shape, which
/// keeps the registry uniform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time a parked step request waited in an admission lane queue
    /// before a drain leader ruled it (µs).  The fast path — lane free,
    /// caller rules its own step — never queues and is not recorded
    /// here, so this histogram is the *contention* signal.
    AdmissionQueueWait,
    /// Time a drain leader spent servicing one admission batch: certify,
    /// per-step resolution, history append, and the WAL append (µs).
    AdmissionService,
    /// Time inside the certifier's admission ruling alone (µs) — the
    /// algorithmic core the scheduler-theory crates model.
    Certify,
    /// Steps ruled per admission batch (count).
    AdmissionBatchSteps,
    /// Time a commit-drain leader spent applying one group-commit batch:
    /// validation, shard publication, and durability (µs).
    GroupCommitApply,
    /// Time in the WAL append-and-flush call for a commit batch (µs) —
    /// in `Fsync` mode this is dominated by the fsync itself.
    WalFlush,
    /// Transactions made durable per WAL flush (count) — the
    /// group-commit amortization factor.
    WalFlushTxns,
    /// Whole-transaction commit latency, begin to durable commit (µs).
    CommitLatency,
    /// Replica shipped→applied time per ship batch: from the moment the
    /// shipper starts reading the primary's tail to the batch being
    /// visible to follower reads (µs).
    ReplicaApply,
    /// Failover: from the last observed heartbeat movement to the leader
    /// driver declaring the primary dead (µs).
    FailoverDetect,
    /// Failover: election — catching up candidate replicas and picking
    /// the longest log (µs).
    FailoverElect,
    /// Failover: promoting the electee (healing the log, epoch bump,
    /// recovery into an engine) and installing it in the router (µs).
    FailoverPromote,
    /// Time from a promoted engine opening on its new epoch to its first
    /// committed transaction (µs).  Summed with the three failover
    /// stages above this is the measured MTTR.
    EpochFirstCommit,
    /// Time a follower read spent pinning its transaction-consistent
    /// safe point on a replica (µs) — the read-path half of the causal
    /// trace, correlated to the apply path by the pinned safe LSN.
    FollowerReadPin,
}

/// The unit a stage's histogram is denominated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageUnit {
    /// Microseconds.
    Micros,
    /// A plain count (batch sizes).
    Count,
}

impl StageUnit {
    /// Short unit label used by Display and the JSON exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            StageUnit::Micros => "us",
            StageUnit::Count => "count",
        }
    }
}

/// All stages, in registry order.
const ALL: [Stage; Stage::COUNT] = [
    Stage::AdmissionQueueWait,
    Stage::AdmissionService,
    Stage::Certify,
    Stage::AdmissionBatchSteps,
    Stage::GroupCommitApply,
    Stage::WalFlush,
    Stage::WalFlushTxns,
    Stage::CommitLatency,
    Stage::ReplicaApply,
    Stage::FailoverDetect,
    Stage::FailoverElect,
    Stage::FailoverPromote,
    Stage::EpochFirstCommit,
    Stage::FollowerReadPin,
];

impl Stage {
    /// Number of stages in the registry.
    pub const COUNT: usize = 14;

    /// Every stage, in registry order (the order histograms are laid out
    /// and the order snapshots and JSON documents list them).
    pub fn all() -> [Stage; Stage::COUNT] {
        ALL
    }

    /// The stage's dense registry index, `0..Stage::COUNT`.
    pub fn index(self) -> usize {
        match self {
            Stage::AdmissionQueueWait => 0,
            Stage::AdmissionService => 1,
            Stage::Certify => 2,
            Stage::AdmissionBatchSteps => 3,
            Stage::GroupCommitApply => 4,
            Stage::WalFlush => 5,
            Stage::WalFlushTxns => 6,
            Stage::CommitLatency => 7,
            Stage::ReplicaApply => 8,
            Stage::FailoverDetect => 9,
            Stage::FailoverElect => 10,
            Stage::FailoverPromote => 11,
            Stage::EpochFirstCommit => 12,
            Stage::FollowerReadPin => 13,
        }
    }

    /// The stage at registry index `i`, if any.
    pub fn from_index(i: usize) -> Option<Stage> {
        ALL.get(i).copied()
    }

    /// Stable kebab-case name used in Display output and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::AdmissionQueueWait => "admission-queue-wait",
            Stage::AdmissionService => "admission-service",
            Stage::Certify => "certify",
            Stage::AdmissionBatchSteps => "admission-batch-steps",
            Stage::GroupCommitApply => "group-commit-apply",
            Stage::WalFlush => "wal-flush",
            Stage::WalFlushTxns => "wal-flush-txns",
            Stage::CommitLatency => "commit-latency",
            Stage::ReplicaApply => "replica-apply",
            Stage::FailoverDetect => "failover-detect",
            Stage::FailoverElect => "failover-elect",
            Stage::FailoverPromote => "failover-promote",
            Stage::EpochFirstCommit => "epoch-first-commit",
            Stage::FollowerReadPin => "follower-read-pin",
        }
    }

    /// The stage with the given kebab-case name, if any — the inverse of
    /// [`Stage::name`], used by schema validators that read stage names
    /// back out of exported documents.
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::all().into_iter().find(|s| s.name() == name)
    }

    /// The unit this stage's histogram is denominated in.
    pub fn unit(self) -> StageUnit {
        match self {
            Stage::AdmissionBatchSteps | Stage::WalFlushTxns => StageUnit::Count,
            _ => StageUnit::Micros,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_round_trip() {
        for (i, stage) in Stage::all().iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::from_index(i), Some(*stage));
            assert_eq!(Stage::from_name(stage.name()), Some(*stage));
        }
        assert_eq!(Stage::from_name("no-such-stage"), None);
        assert_eq!(Stage::all().len(), Stage::COUNT);
        assert_eq!(Stage::from_index(Stage::COUNT), None);
    }

    #[test]
    fn names_are_unique_and_kebab() {
        let names: Vec<&str> = Stage::all().iter().map(|s| s.name()).collect();
        for (i, a) in names.iter().enumerate() {
            assert!(a.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn count_stages_are_exactly_the_batch_sizes() {
        let counts: Vec<Stage> = Stage::all()
            .iter()
            .copied()
            .filter(|s| s.unit() == StageUnit::Count)
            .collect();
        assert_eq!(
            counts,
            vec![Stage::AdmissionBatchSteps, Stage::WalFlushTxns]
        );
    }
}
