//! Causal tracing: per-transaction span trees and the cross-cutting
//! trace log.
//!
//! Every transaction carries a [`TraceId`] from `begin`.  A *sampled*
//! transaction additionally collects a bounded tree of [`SpanRecord`]s —
//! one per pipeline stage it actually passed through — rooted at the
//! whole-transaction commit latency ([`TraceTree`]).  The tree answers
//! "why was *this* transaction slow": its dominant span names the stage
//! that ate the latency.
//!
//! Attribution rule: a span belongs to the transaction whose work it
//! measures, *not* to the thread that happened to measure it.  Under
//! flat-combining admission a drain leader certifies other sessions'
//! steps; the engine hands the measured span back through the same
//! outcome slot that carries the step's verdict, so it lands on the
//! owner's tree without any new synchronization edge.
//!
//! Spans that cross transactions or processes — a group-commit WAL flush
//! shared by a whole batch, a replica applying a shipped commit record,
//! a follower read pinning a safe point, the promotion timeline — go to
//! the [`TraceLog`]: a bounded drop-oldest ring of [`TraceEvent`]s.
//! Cross-process correlation is by **LSN**: the primary's flush span and
//! the replica's apply span for the same commit carry the same LSN, so
//! the two logs join without shipping trace ids over the wire.

use crate::stage::Stage;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// Spans kept per transaction before the tree is truncated.  Bounds the
/// per-session memory of a traced transaction no matter how many steps
/// it takes.
pub const MAX_TRACE_SPANS: usize = 32;

/// Default event capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_LOG_CAPACITY: usize = 1024;

/// A transaction's trace identity, minted at `begin`.
///
/// The engine packs its epoch into the high bits and the transaction id
/// into the low 32, so ids stay unique across a failover (the promoted
/// engine reuses transaction numbering on a new epoch) and a violation
/// report can name the exact transactions in an offending window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Packs an epoch and a transaction id into one trace id.
    pub fn pack(epoch: u64, tx: u32) -> TraceId {
        TraceId((epoch << 32) | u64::from(tx))
    }

    /// The transaction id in the low 32 bits.
    pub fn tx(self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }

    /// The epoch in the high bits.
    pub fn epoch(self) -> u64 {
        self.0 >> 32
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.epoch(), self.tx())
    }
}

/// One measured span in a transaction's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The pipeline stage this span measures.
    pub stage: Stage,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Tree depth: 1 = direct child of the transaction root, 2 = nested
    /// (e.g. the WAL flush inside the group-commit apply).
    pub depth: u8,
    /// The WAL LSN this span is correlated to, when the stage touches
    /// durability (the group-commit flush and everything downstream).
    pub lsn: Option<u64>,
}

/// A committed transaction's bounded span tree: the root is the whole
/// begin-to-durable commit latency, children are the stages it passed
/// through (depth 1) and their nested sub-spans (depth 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// Whose trace this is.
    pub trace: TraceId,
    /// Root span: whole-transaction commit latency in microseconds.
    pub total_us: u64,
    /// Child spans, in recording order, at most [`MAX_TRACE_SPANS`].
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because the tree hit its bound.
    pub truncated: u64,
}

impl TraceTree {
    /// A fresh tree for `trace` with no spans yet.
    pub fn new(trace: TraceId) -> TraceTree {
        TraceTree {
            trace,
            total_us: 0,
            spans: Vec::new(),
            truncated: 0,
        }
    }

    /// Appends a span, enforcing the [`MAX_TRACE_SPANS`] bound.
    pub fn push(&mut self, span: SpanRecord) {
        if self.spans.len() < MAX_TRACE_SPANS {
            self.spans.push(span);
        } else {
            self.truncated += 1;
        }
    }

    /// The stage that dominates this transaction's recorded latency: the
    /// depth-1 span with the largest duration.  `None` only when no span
    /// was recorded at all.
    pub fn dominant_stage(&self) -> Option<Stage> {
        self.spans
            .iter()
            .filter(|s| s.depth == 1)
            .max_by_key(|s| s.dur_us)
            .map(|s| s.stage)
    }

    /// The LSN of the first durability-correlated span, if any — the key
    /// a cross-process join uses.
    pub fn flush_lsn(&self) -> Option<u64> {
        self.spans.iter().find_map(|s| s.lsn)
    }
}

/// One cross-cutting span: work not owned by a single live session
/// (replica apply, follower-read pin, promotion phases, the shared WAL
/// flush), timestamped relative to trace-log creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the log was created.
    pub at_us: u64,
    /// The stage this span measures.
    pub stage: Stage,
    /// The owning transaction's trace, when one is known in-process.
    pub trace: Option<TraceId>,
    /// The WAL LSN correlating this span across processes, if any.
    pub lsn: Option<u64>,
    /// Duration in microseconds.
    pub dur_us: u64,
}

#[derive(Debug)]
struct TraceRing {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded drop-oldest ring of cross-cutting [`TraceEvent`]s.
///
/// Same design rationale as the flight recorder: these events are
/// per-batch or per-incident (never per step), so a short mutex is
/// cheaper than it looks, and drop-oldest keeps memory flat over a
/// soak while retaining the recent past a post-mortem joins against.
#[derive(Debug)]
pub struct TraceLog {
    start: Instant,
    capacity: usize,
    ring: TrackedMutex<TraceRing>,
}

impl TraceLog {
    /// A log holding at most `capacity` events (zero is bumped to 1).
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            start: Instant::now(),
            capacity: capacity.max(1),
            ring: TrackedMutex::new(
                lock_class!("telemetry.trace-log"),
                TraceRing {
                    events: VecDeque::new(),
                    dropped: 0,
                },
            ),
        }
    }

    /// Records one cross-cutting span, timestamped now.
    pub fn record(&self, stage: Stage, trace: Option<TraceId>, lsn: Option<u64>, dur_us: u64) {
        let at_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.ring.lock();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            at_us,
            stage,
            trace,
            lsn,
            dur_us,
        });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to keep the ring bounded.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Copies the held events out, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().events.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_pack_epoch_and_tx_and_render() {
        let id = TraceId::pack(3, 41);
        assert_eq!(id.epoch(), 3);
        assert_eq!(id.tx(), 41);
        assert_eq!(id.to_string(), "t3.41");
        assert_ne!(
            TraceId::pack(0, 41),
            id,
            "epochs disambiguate reused tx ids"
        );
    }

    #[test]
    fn a_tree_is_bounded_and_counts_truncation() {
        let mut tree = TraceTree::new(TraceId::pack(0, 1));
        for i in 0..(MAX_TRACE_SPANS + 5) {
            tree.push(SpanRecord {
                stage: Stage::Certify,
                dur_us: i as u64,
                depth: 1,
                lsn: None,
            });
        }
        assert_eq!(tree.spans.len(), MAX_TRACE_SPANS);
        assert_eq!(tree.truncated, 5);
    }

    #[test]
    fn dominant_stage_is_the_largest_depth_one_span() {
        let mut tree = TraceTree::new(TraceId::pack(0, 2));
        assert_eq!(tree.dominant_stage(), None, "no spans, nothing to blame");
        tree.push(SpanRecord {
            stage: Stage::Certify,
            dur_us: 10,
            depth: 1,
            lsn: None,
        });
        tree.push(SpanRecord {
            stage: Stage::GroupCommitApply,
            dur_us: 90,
            depth: 1,
            lsn: None,
        });
        // A huge *nested* span must not outrank its depth-1 parents.
        tree.push(SpanRecord {
            stage: Stage::WalFlush,
            dur_us: 500,
            depth: 2,
            lsn: Some(7),
        });
        assert_eq!(tree.dominant_stage(), Some(Stage::GroupCommitApply));
        assert_eq!(tree.flush_lsn(), Some(7));
    }

    #[test]
    fn the_trace_log_drops_oldest_at_capacity() {
        let log = TraceLog::new(2);
        for lsn in 0..5u64 {
            log.record(Stage::ReplicaApply, None, Some(lsn), 1);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let lsns: Vec<Option<u64>> = log.events().iter().map(|e| e.lsn).collect();
        assert_eq!(lsns, vec![Some(3), Some(4)]);
        assert!(TraceLog::new(0).is_empty());
    }

    #[test]
    fn trace_log_timestamps_are_nondecreasing() {
        let log = TraceLog::new(8);
        log.record(Stage::WalFlush, Some(TraceId::pack(0, 1)), Some(1), 3);
        log.record(Stage::WalFlush, None, Some(2), 4);
        let events = log.events();
        assert!(events[0].at_us <= events[1].at_us);
        assert_eq!(events[0].trace, Some(TraceId::pack(0, 1)));
    }
}
