//! The flight recorder: a bounded drop-oldest ring of recent structured
//! events.
//!
//! When a chaos soak fails, counters tell you *how much* happened but
//! not *what the pipeline was doing* at the kill site.  The flight
//! recorder keeps the last N structured events — batches ruled, flushes,
//! checkpoint cuts, fence refusals, promotion phases, GC reclaims,
//! aborts — and [`FlightRecorder::dump`] renders them as a timeline the
//! failing test prints.  The ring is bounded and drop-oldest: a soak
//! that runs for minutes keeps only the recent past, which is the part a
//! failure post-mortem needs, and memory stays flat.
//!
//! Recording takes a short mutex.  That is deliberate: events are orders
//! of magnitude rarer than stage samples (one per *batch* or per rare
//! incident, not one per step), and a ring shared by readers has to
//! serialize somewhere.  The hot per-step path never records events.

use crate::trace::TraceId;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use std::collections::VecDeque;
use std::fmt;
use std::time::{Duration, Instant};

/// Default event capacity of the ring.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One structured event, timestamped relative to recorder creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// The transaction this event belongs to, when the recording site
    /// knew one — lets a dumped kill-site/fence/abort event be joined
    /// against that transaction's span tree.
    pub trace: Option<TraceId>,
}

/// The structured event vocabulary.
///
/// Site/phase/reason fields are `String`s rather than engine enums so
/// the telemetry crate stays below the engine in the dependency order —
/// every layer can describe its events without a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// An admission drain leader ruled a batch of this many steps.
    AdmissionBatch {
        /// Steps in the batch.
        steps: u64,
    },
    /// A group-commit batch was appended and flushed to the WAL.
    WalFlush {
        /// Bytes appended.
        bytes: u64,
        /// Whether the flush included an fsync.
        fsynced: bool,
        /// Transactions made durable by this flush.
        txns: u64,
    },
    /// A fuzzy checkpoint was cut.
    CheckpointCut {
        /// Checkpoint sequence number.
        seq: u64,
    },
    /// An epoch fence refused a write from a deposed primary.
    FenceRefusal {
        /// Pipeline site that observed the refusal.
        site: String,
    },
    /// A scripted chaos kill site fired (recorded *before* the hook
    /// runs, so a frozen-forever thread still leaves its trace).
    KillSite {
        /// The kill site's name.
        site: String,
    },
    /// A failover / promotion phase transition.
    Promotion {
        /// Phase name, e.g. `detected`, `elected`, `promoted`, `installed`.
        phase: String,
        /// Free-form detail (epoch, watermark, replica index…).
        detail: String,
    },
    /// A GC pass reclaimed obsolete versions.
    GcReclaim {
        /// Versions reclaimed.
        versions: u64,
    },
    /// A transaction aborted.
    Abort {
        /// The abort reason's name.
        reason: String,
    },
    /// First commit on a promoted engine's new epoch.
    EpochFirstCommit {
        /// The new epoch.
        epoch: u64,
    },
    /// The online classification watchdog ruled on a sampled
    /// committed-history window.
    WatchdogVerdict {
        /// The certifier's claimed class (e.g. `CSR`).
        class: String,
        /// Whether the window classified into the class.
        ok: bool,
        /// Committed transactions in the checked window.
        txns: u64,
        /// Free-form detail: window shape, or the offending trace ids
        /// on a violation.
        detail: String,
    },
    /// An anomaly detector transition: an alarm fired (`onset`) or
    /// stopped holding (`clear`) at a timeline frame.
    Anomaly {
        /// The anomaly's name, e.g. `abort-storm`, `lag-stall`.
        anomaly: String,
        /// `onset` or `clear`.
        phase: String,
        /// The timeline frame sequence number of the transition.
        frame: u64,
        /// Free-form detail: the triggering member / rate / baseline.
        detail: String,
    },
    /// Free-form annotation from tests or harnesses.
    Note {
        /// The annotation.
        text: String,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::AdmissionBatch { steps } => write!(f, "admission-batch steps={steps}"),
            EventKind::WalFlush {
                bytes,
                fsynced,
                txns,
            } => write!(f, "wal-flush bytes={bytes} fsynced={fsynced} txns={txns}"),
            EventKind::CheckpointCut { seq } => write!(f, "checkpoint-cut seq={seq}"),
            EventKind::FenceRefusal { site } => write!(f, "fence-refusal site={site}"),
            EventKind::KillSite { site } => write!(f, "kill-site site={site}"),
            EventKind::Promotion { phase, detail } => {
                write!(f, "promotion phase={phase} {detail}")
            }
            EventKind::GcReclaim { versions } => write!(f, "gc-reclaim versions={versions}"),
            EventKind::Abort { reason } => write!(f, "abort reason={reason}"),
            EventKind::EpochFirstCommit { epoch } => {
                write!(f, "epoch-first-commit epoch={epoch}")
            }
            EventKind::WatchdogVerdict {
                class,
                ok,
                txns,
                detail,
            } => {
                write!(f, "watchdog class={class} ok={ok} txns={txns} {detail}")
            }
            EventKind::Anomaly {
                anomaly,
                phase,
                frame,
                detail,
            } => {
                write!(f, "anomaly {anomaly} phase={phase} frame={frame} {detail}")
            }
            EventKind::Note { text } => write!(f, "note {text}"),
        }
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

/// The bounded drop-oldest event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    ring: TrackedMutex<Ring>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (oldest dropped
    /// first).  A zero capacity is bumped to 1 — a recorder that can
    /// hold nothing cannot explain anything.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            start: Instant::now(),
            capacity: capacity.max(1),
            ring: TrackedMutex::new(
                lock_class!("telemetry.flight-ring"),
                Ring {
                    events: VecDeque::new(),
                    dropped: 0,
                },
            ),
        }
    }

    /// Records one event, timestamped now, with no trace attribution.
    pub fn record(&self, kind: EventKind) {
        self.record_traced(kind, None);
    }

    /// Records one event attributed to a transaction's trace (when the
    /// recording site knows one).
    pub fn record_traced(&self, kind: EventKind, trace: Option<TraceId>) {
        let at_us = duration_to_us(self.start.elapsed());
        let mut ring = self.ring.lock();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent { at_us, kind, trace });
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().events.len()
    }

    /// True if no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events dropped to keep the ring bounded.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Copies the held events out, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// Renders the held events as a human-readable timeline — what a
    /// failing chaos or soak test prints.  An empty recorder says so
    /// explicitly rather than printing nothing.
    pub fn dump(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::new();
        if ring.events.is_empty() {
            out.push_str("flight recorder: no events recorded\n");
            return out;
        }
        out.push_str(&format!(
            "flight recorder: {} event(s), {} older dropped\n",
            ring.events.len(),
            ring.dropped
        ));
        for event in &ring.events {
            match event.trace {
                Some(trace) => out.push_str(&format!(
                    "  +{:>10}µs  {} trace={}\n",
                    event.at_us, event.kind, trace
                )),
                None => out.push_str(&format!("  +{:>10}µs  {}\n", event.at_us, event.kind)),
            }
        }
        out
    }
}

fn duration_to_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_ring_drops_oldest_at_capacity() {
        let rec = FlightRecorder::new(3);
        for seq in 0..5 {
            rec.record(EventKind::CheckpointCut { seq });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let seqs: Vec<u64> = rec
            .events()
            .iter()
            .map(|e| match e.kind {
                EventKind::CheckpointCut { seq } => seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest events must go first");
        let dump = rec.dump();
        assert!(dump.contains("3 event(s), 2 older dropped"), "{dump}");
        assert!(dump.contains("checkpoint-cut seq=4"), "{dump}");
    }

    #[test]
    fn dump_on_empty_says_so() {
        let rec = FlightRecorder::new(8);
        assert!(rec.is_empty());
        assert_eq!(rec.dump(), "flight recorder: no events recorded\n");
    }

    #[test]
    fn timestamps_are_nondecreasing() {
        let rec = FlightRecorder::new(8);
        rec.record(EventKind::Note { text: "a".into() });
        std::thread::sleep(Duration::from_millis(2));
        rec.record(EventKind::Note { text: "b".into() });
        let events = rec.events();
        assert!(events[0].at_us <= events[1].at_us);
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let rec = FlightRecorder::new(0);
        rec.record(EventKind::Note { text: "x".into() });
        rec.record(EventKind::Note { text: "y".into() });
        assert_eq!(rec.len(), 1);
        assert!(rec.dump().contains("note y"));
    }

    #[test]
    fn every_event_kind_renders() {
        let kinds = vec![
            EventKind::AdmissionBatch { steps: 3 },
            EventKind::WalFlush {
                bytes: 128,
                fsynced: true,
                txns: 4,
            },
            EventKind::CheckpointCut { seq: 7 },
            EventKind::FenceRefusal {
                site: "commit-flush".into(),
            },
            EventKind::KillSite {
                site: "group-commit-flush".into(),
            },
            EventKind::Promotion {
                phase: "elected".into(),
                detail: "watermark=42".into(),
            },
            EventKind::GcReclaim { versions: 12 },
            EventKind::Abort {
                reason: "write-conflict".into(),
            },
            EventKind::EpochFirstCommit { epoch: 1 },
            EventKind::WatchdogVerdict {
                class: "CSR".into(),
                ok: true,
                txns: 42,
                detail: "complete".into(),
            },
            EventKind::Anomaly {
                anomaly: "lag-stall".into(),
                phase: "onset".into(),
                frame: 17,
                detail: "member=replica-1 lag=9".into(),
            },
            EventKind::Note { text: "hi".into() },
        ];
        let rec = FlightRecorder::new(kinds.len());
        for k in kinds {
            rec.record(k);
        }
        let dump = rec.dump();
        for needle in [
            "admission-batch",
            "wal-flush",
            "checkpoint-cut",
            "fence-refusal",
            "kill-site",
            "promotion",
            "gc-reclaim",
            "abort",
            "epoch-first-commit",
            "watchdog class=CSR ok=true txns=42",
            "anomaly lag-stall phase=onset frame=17 member=replica-1 lag=9",
            "note hi",
        ] {
            assert!(dump.contains(needle), "missing {needle} in:\n{dump}");
        }
    }

    #[test]
    fn traced_events_render_their_trace_id_untraced_ones_do_not() {
        let rec = FlightRecorder::new(4);
        rec.record_traced(
            EventKind::KillSite {
                site: "group-commit-flush".into(),
            },
            Some(TraceId::pack(1, 9)),
        );
        rec.record(EventKind::CheckpointCut { seq: 2 });
        let dump = rec.dump();
        assert!(
            dump.contains("kill-site site=group-commit-flush trace=t1.9"),
            "{dump}"
        );
        assert!(
            !dump.contains("checkpoint-cut seq=2 trace="),
            "untraced events must not grow a trace suffix: {dump}"
        );
        let events = rec.events();
        assert_eq!(events[0].trace, Some(TraceId::pack(1, 9)));
        assert_eq!(events[1].trace, None);
    }
}
