//! The tail-exemplar reservoir: full span trees for the slowest commits
//! only.
//!
//! Keeping every transaction's span tree would cost memory proportional
//! to throughput; keeping none would leave the stage histograms without
//! witnesses.  The reservoir keeps the middle ground the "why slow"
//! report needs: the **slowest ~[`EXEMPLAR_CAPACITY`] commit-latency
//! outliers**, each with its full [`TraceTree`], in O(capacity) memory.
//!
//! The admission check is O(1) on the hot path: an atomic *dynamic
//! threshold* holds the latency of the fastest retained exemplar once
//! the reservoir is full, so the common case — a commit faster than the
//! current tail — is a pair of relaxed atomics and no lock.  Only genuine tail
//! candidates take the short mutex, where the new tree evicts the
//! current minimum.  The threshold is therefore **monotone
//! nondecreasing** once the reservoir fills: every eviction replaces
//! the minimum with something larger, so the new minimum can only rise.
//! The 8-thread reservoir test pins both the bound and that
//! monotonicity.

use crate::trace::TraceTree;
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// How many tail exemplars are retained per registry (per certifier in
/// the bench harness — each engine owns one registry).
pub const EXEMPLAR_CAPACITY: usize = 64;

#[derive(Debug, Default)]
struct Kept {
    trees: Vec<TraceTree>,
}

/// The dynamic-threshold reservoir of the slowest commit span trees.
#[derive(Debug)]
pub struct ExemplarReservoir {
    capacity: usize,
    /// Latency of the fastest retained exemplar once full; 0 while the
    /// reservoir still has room (everything traced is admitted).
    threshold_us: AtomicU64,
    offered: AtomicU64,
    retained: AtomicU64,
    kept: TrackedMutex<Kept>,
}

impl ExemplarReservoir {
    /// A reservoir retaining at most `capacity` trees (zero bumped to 1).
    pub fn new(capacity: usize) -> ExemplarReservoir {
        ExemplarReservoir {
            capacity: capacity.max(1),
            threshold_us: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            retained: AtomicU64::new(0),
            kept: TrackedMutex::new(lock_class!("telemetry.exemplars"), Kept::default()),
        }
    }

    /// Offers a committed transaction's tree; returns whether it was
    /// retained.  The fast path for sub-threshold commits is two relaxed
    /// atomics — no lock, no allocation touched.  Rejection on the fast
    /// path is always sound: the threshold is monotone, so a latency at
    /// or below it can never beat a future minimum either.
    pub fn offer(&self, tree: TraceTree) -> bool {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let threshold = self.threshold_us.load(Ordering::Relaxed);
        if threshold > 0 && tree.total_us <= threshold {
            return false;
        }
        let mut kept = self.kept.lock();
        if kept.trees.len() < self.capacity {
            kept.trees.push(tree);
            self.retained.fetch_add(1, Ordering::Relaxed);
            if kept.trees.len() == self.capacity {
                self.store_threshold(&kept);
            }
            return true;
        }
        // Full: re-check under the lock (the atomic read above may have
        // raced), then evict the current minimum.
        let (min_idx, min_us) = kept
            .trees
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.total_us))
            .min_by_key(|&(_, us)| us)
            .unwrap_or((0, 0));
        if tree.total_us <= min_us {
            return false;
        }
        kept.trees[min_idx] = tree;
        self.retained.fetch_add(1, Ordering::Relaxed);
        self.store_threshold(&kept);
        true
    }

    fn store_threshold(&self, kept: &Kept) {
        let min = kept.trees.iter().map(|t| t.total_us).min().unwrap_or(0);
        self.threshold_us.store(min, Ordering::Relaxed);
    }

    /// The current admission threshold in µs (0 until the reservoir
    /// fills).  Monotone nondecreasing once non-zero.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Trees currently retained, slowest first.
    pub fn snapshot(&self) -> Vec<TraceTree> {
        let kept = self.kept.lock();
        let mut trees = kept.trees.clone();
        trees.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        trees
    }

    /// `(offered, retained)` counters — retained counts admissions, not
    /// the current size (an admitted tree may later be evicted).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.offered.load(Ordering::Relaxed),
            self.retained.load(Ordering::Relaxed),
        )
    }

    /// Number of trees currently retained.
    pub fn len(&self) -> usize {
        self.kept.lock().trees.len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceId;

    fn tree(tx: u32, total_us: u64) -> TraceTree {
        TraceTree {
            total_us,
            ..TraceTree::new(TraceId::pack(0, tx))
        }
    }

    #[test]
    fn the_reservoir_keeps_exactly_the_slowest() {
        let res = ExemplarReservoir::new(4);
        for i in 0..20u64 {
            // Offer latencies 0,7,14,…,133 in a scrambled order.
            let latency = (i * 7) % 140;
            res.offer(tree(i as u32, latency));
        }
        let kept: Vec<u64> = res.snapshot().iter().map(|t| t.total_us).collect();
        assert_eq!(kept.len(), 4);
        let mut all: Vec<u64> = (0..20).map(|i| (i * 7) % 140).collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(kept, all[..4].to_vec(), "kept must be the global top-4");
        assert_eq!(res.threshold_us(), all[3]);
        let (offered, _) = res.counters();
        assert_eq!(offered, 20);
    }

    #[test]
    fn below_threshold_offers_are_rejected_without_eviction() {
        let res = ExemplarReservoir::new(2);
        assert!(res.offer(tree(1, 100)));
        assert!(res.offer(tree(2, 200)));
        assert_eq!(res.threshold_us(), 100);
        assert!(!res.offer(tree(3, 50)), "below the tail: rejected");
        assert!(!res.offer(tree(4, 100)), "ties lose to the incumbent");
        assert!(res.offer(tree(5, 150)), "a new outlier evicts the min");
        assert_eq!(res.threshold_us(), 150);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn the_bound_and_threshold_monotonicity_hold_under_eight_threads() {
        // Satellite: 8 threads hammer one reservoir with distinct
        // latencies; the bound must hold exactly, the retained set must
        // be the global top-capacity, and every thread must observe a
        // nondecreasing threshold sequence (the dynamic threshold only
        // ever rises once the reservoir is full).
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        let res = std::sync::Arc::new(ExemplarReservoir::new(EXEMPLAR_CAPACITY));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let res = std::sync::Arc::clone(&res);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for i in 0..PER_THREAD {
                        // Distinct latencies across all threads, offered
                        // in an interleaved (non-monotone) order.
                        let latency = (i * THREADS + t) ^ 0x155;
                        res.offer(tree((t * PER_THREAD + i) as u32, latency));
                        let now = res.threshold_us();
                        assert!(
                            now >= last,
                            "threshold regressed: {last} -> {now} on thread {t}"
                        );
                        last = now;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let kept: Vec<u64> = res.snapshot().iter().map(|t| t.total_us).collect();
        assert_eq!(kept.len(), EXEMPLAR_CAPACITY, "bound violated");
        let mut all: Vec<u64> = (0..THREADS)
            .flat_map(|t| (0..PER_THREAD).map(move |i| (i * THREADS + t) ^ 0x155))
            .collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(
            kept,
            all[..EXEMPLAR_CAPACITY].to_vec(),
            "retained set must be the global slowest {EXEMPLAR_CAPACITY}"
        );
        let (offered, _) = res.counters();
        assert_eq!(offered, THREADS * PER_THREAD);
    }

    #[test]
    fn zero_capacity_is_bumped_to_one() {
        let res = ExemplarReservoir::new(0);
        assert!(res.offer(tree(1, 5)));
        assert!(res.offer(tree(2, 9)));
        assert_eq!(res.len(), 1);
        assert_eq!(res.snapshot()[0].total_us, 9);
    }
}
