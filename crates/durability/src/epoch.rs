//! Primary epochs and the fencing marker.
//!
//! Failover needs an answer to the oldest distributed-systems question:
//! how does a deposed primary learn it is deposed before it corrupts the
//! log?  This module gives the log directory a single small *epoch
//! marker* file (`epoch.mv`) naming the current primary epoch and the
//! **fence**: the LSN at which the previous lineage was cut and the
//! segment sequence number the new lineage starts at.
//!
//! * Writers carry the epoch they opened the log under and re-read the
//!   marker before every append and flush; a marker with a higher epoch
//!   means another writer promoted over them, and the append is refused
//!   ([`std::io::ErrorKind::PermissionDenied`], see
//!   [`crate::wal::WalWriter`]).
//! * Readers ([`crate::scan_log`], [`crate::read_tail`]) treat records
//!   at or past `fence_lsn` inside pre-`start_segment` segments as
//!   *fenced residue* — bytes a deposed primary managed to buffer after
//!   the promotion scan — and resubscribe to the new lineage instead of
//!   delivering them.
//!
//! The marker is written atomically (temp file + rename + directory
//! sync) and carries a CRC, so readers either see the previous marker or
//! the new one, never a torn one.  Promotion writes it twice: first a
//! *provisional* marker (new epoch, previous fence) that fences every
//! older writer before the promotion scan runs, then — after healing the
//! log and creating the new lineage's first segment — the *final* marker
//! with the new fence.  A crash between the two leaves the provisional
//! marker: every writer stays fenced, readers keep honoring the previous
//! completed fence, and the next promotion simply bumps the epoch again.
//!
//! ## The fencing window (documented caveat)
//!
//! A write already in flight *between* a deposed primary's fence check
//! and its `write_all` can land bytes after the promotion scan sampled
//! the log.  Those bytes are fenced out (readers skip them, the next
//! heal truncates them) even if the deposed primary acked the commit —
//! equivalent to buffered-mode crash loss of an acked commit.  Fsync
//! mode narrows the window; only storage-side compare-and-swap (which a
//! plain filesystem does not offer) could close it.  The deterministic
//! failover tests schedule around the window; the argument for why the
//! *surviving* history still classifies is in DESIGN.md's Failover
//! section.

use crate::record::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes opening the epoch marker file.
pub const EPOCH_MAGIC: &[u8; 8] = b"MVEP0001";

/// File name of the epoch marker inside a log directory.
pub const EPOCH_FILE: &str = "epoch.mv";

/// Payload bytes after the magic: epoch + fence LSN + start segment +
/// provisional flag.
const PAYLOAD: usize = 8 + 8 + 8 + 1;

/// Total marker file size: magic + payload + CRC-32 of the payload.
const MARKER_LEN: usize = 8 + PAYLOAD + 4;

/// The current primary epoch of a log directory and the fence cut the
/// last completed promotion made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMarker {
    /// The current primary epoch.  Writers of an older epoch are fenced.
    pub epoch: u64,
    /// First LSN that belongs to the lineage *after* the last completed
    /// promotion ([`u64::MAX`] when no promotion has completed yet):
    /// records at or past it inside pre-`start_segment` segments are a
    /// deposed primary's residue, not log.
    pub fence_lsn: u64,
    /// Sequence number of the first segment of the current lineage
    /// ([`u64::MAX`] when no promotion has completed yet).
    pub start_segment: u64,
    /// `true` while a promotion is between its two marker writes: the
    /// epoch is already claimed (writers fenced) but the new fence has
    /// not been published — `fence_lsn`/`start_segment` still describe
    /// the *previous* completed promotion.
    pub provisional: bool,
}

impl EpochMarker {
    /// `true` when the marker carries a completed promotion's fence cut.
    pub fn has_fence(&self) -> bool {
        self.fence_lsn != u64::MAX
    }
}

/// Reads the epoch marker under `dir`.  `Ok(None)` when no marker exists
/// (the directory is still in its genesis epoch 0); a torn or
/// CRC-invalid marker is corruption, not genesis.
pub fn read_epoch_marker(dir: &Path) -> io::Result<Option<EpochMarker>> {
    let path = dir.join(EPOCH_FILE);
    let mut file = match File::open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::with_capacity(MARKER_LEN);
    file.read_to_end(&mut bytes)?;
    let corrupt =
        |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("epoch marker: {what}"));
    if bytes.len() != MARKER_LEN {
        return Err(corrupt("wrong length"));
    }
    if &bytes[0..8] != EPOCH_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let payload = &bytes[8..8 + PAYLOAD];
    // lint: allow(unwrap) — slice length fixed by the on-disk format
    let stored = u32::from_le_bytes(bytes[8 + PAYLOAD..].try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(corrupt("crc mismatch"));
    }
    // lint: allow(unwrap) — slice length fixed by the on-disk format
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().expect("8 bytes"));
    Ok(Some(EpochMarker {
        epoch: u64_at(0),
        fence_lsn: u64_at(8),
        start_segment: u64_at(16),
        provisional: payload[24] != 0,
    }))
}

/// Atomically replaces the epoch marker under `dir`: write to a temp
/// file, fsync it, rename over the marker, fsync the directory.  A crash
/// at any point leaves either the old marker or the new one.
pub fn write_epoch_marker(dir: &Path, marker: &EpochMarker) -> io::Result<()> {
    let mut payload = Vec::with_capacity(PAYLOAD);
    payload.extend_from_slice(&marker.epoch.to_le_bytes());
    payload.extend_from_slice(&marker.fence_lsn.to_le_bytes());
    payload.extend_from_slice(&marker.start_segment.to_le_bytes());
    payload.push(u8::from(marker.provisional));
    let mut bytes = Vec::with_capacity(MARKER_LEN);
    bytes.extend_from_slice(EPOCH_MAGIC);
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    let tmp = dir.join(format!("{EPOCH_FILE}.tmp"));
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    crate::wal::sync_dir(dir)
}

/// `true` when `e` is a fencing refusal from a [`crate::wal::WalWriter`]
/// whose epoch has been superseded — the one WAL error a caller should
/// treat as "deposed" rather than "durability lost".
pub fn is_fence_error(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::PermissionDenied && e.to_string().contains("fenced")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mvcc-epoch-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn absent_marker_is_genesis() {
        let dir = temp_dir("genesis");
        assert_eq!(read_epoch_marker(&dir).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn marker_round_trips_and_replaces_atomically() {
        let dir = temp_dir("round");
        let first = EpochMarker {
            epoch: 1,
            fence_lsn: u64::MAX,
            start_segment: u64::MAX,
            provisional: true,
        };
        write_epoch_marker(&dir, &first).unwrap();
        assert_eq!(read_epoch_marker(&dir).unwrap(), Some(first));
        assert!(!first.has_fence());
        let second = EpochMarker {
            epoch: 1,
            fence_lsn: 42,
            start_segment: 3,
            provisional: false,
        };
        write_epoch_marker(&dir, &second).unwrap();
        assert_eq!(read_epoch_marker(&dir).unwrap(), Some(second));
        assert!(second.has_fence());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_markers_are_corruption_not_genesis() {
        let dir = temp_dir("torn");
        let marker = EpochMarker {
            epoch: 2,
            fence_lsn: 7,
            start_segment: 1,
            provisional: false,
        };
        write_epoch_marker(&dir, &marker).unwrap();
        let path = dir.join(EPOCH_FILE);
        // Short file: corruption.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        assert!(read_epoch_marker(&dir).is_err());
        // Flipped payload byte: the CRC refuses it.
        let mut copy = bytes.clone();
        copy[10] ^= 0xff;
        std::fs::write(&path, &copy).unwrap();
        assert!(read_epoch_marker(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fence_errors_are_recognizable() {
        let fence = io::Error::new(
            io::ErrorKind::PermissionDenied,
            "WAL writer fenced: epoch 0 superseded by epoch 1",
        );
        assert!(is_fence_error(&fence));
        let other = io::Error::new(io::ErrorKind::PermissionDenied, "read-only filesystem");
        assert!(!is_fence_error(&other));
        let io = io::Error::other("disk on fire");
        assert!(!is_fence_error(&io));
    }
}
