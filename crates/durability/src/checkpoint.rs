//! Checkpoint files: periodic snapshots of the committed store state.
//!
//! A checkpoint bounds recovery work: instead of replaying the whole log,
//! recovery loads the newest valid checkpoint and replays only commit
//! records with `lsn >= replay_from_lsn`.  A checkpoint file carries, per
//! shard, the committed version chains, the shard's commit counter **and
//! the GC watermark the checkpoint was cut at** — recording the watermark
//! is what guarantees a recovered store never hands out a snapshot below
//! the reclaimed horizon (versions under the watermark may be gone from
//! the checkpointed chains, so a snapshot that old would read the void).
//!
//! Checkpoints are fuzzy with respect to concurrent commits: the engine
//! samples `replay_from_lsn` *before* snapshotting the shards, so a
//! commit that lands during the snapshot is either already in the
//! checkpointed chains or replayed from the log — replay is idempotent
//! per `(writer, commit timestamp)` version, so the overlap is harmless.
//!
//! Files are written to a temporary name, fsynced, then renamed into
//! place (`checkpoint-<seq>.ckpt`), and the whole body is CRC-guarded: a
//! checkpoint torn by a crash mid-write is skipped at recovery, which
//! falls back to the previous one (or to log-only replay).

use crate::record::crc32;
use bytes::Bytes;
use mvcc_core::{EntityId, TxId};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"MVCKPT01";

/// One committed version as persisted by checkpoints and rebuilt by
/// recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedVersion {
    /// The writing transaction ([`TxId::INITIAL`] for the pre-seed).
    pub writer: TxId,
    /// The writer's commit timestamp on the owning shard.
    pub commit_ts: u64,
    /// The version payload.
    pub value: Bytes,
}

/// The persisted state of one store shard.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardCheckpoint {
    /// The shard's commit-timestamp high-water mark.
    pub commit_counter: u64,
    /// The GC watermark the checkpoint was cut at: versions superseded at
    /// or below it may be absent from `chains`, so no recovered snapshot
    /// may be issued below this horizon.
    pub watermark: u64,
    /// Per-entity committed version chains (every version committed).
    pub chains: Vec<(EntityId, Vec<CommittedVersion>)>,
}

/// One whole checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointData {
    /// Monotonic checkpoint sequence number.
    pub seq: u64,
    /// Recovery replays log records with `lsn >= replay_from_lsn`; all
    /// earlier commits are already reflected in `shards`.
    pub replay_from_lsn: u64,
    /// The engine's next transaction id at the cut.
    pub next_tx: u32,
    /// Per-shard committed state, indexed by shard.
    pub shards: Vec<ShardCheckpoint>,
}

/// The path of checkpoint `seq` under `dir`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:08}.ckpt"))
}

/// Lists checkpoint files under `dir`, sorted by sequence number.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut checkpoints = Vec::new();
    if !dir.exists() {
        return Ok(checkpoints);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            checkpoints.push((seq, entry.path()));
        }
    }
    checkpoints.sort();
    Ok(checkpoints)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes `data` and writes it atomically (temp file + fsync +
/// rename) under `dir`.  Returns the final path.
pub fn write_checkpoint(dir: &Path, data: &CheckpointData) -> io::Result<PathBuf> {
    let mut body = Vec::with_capacity(1024);
    put_u64(&mut body, data.seq);
    put_u64(&mut body, data.replay_from_lsn);
    put_u32(&mut body, data.next_tx);
    put_u32(&mut body, data.shards.len() as u32);
    for shard in &data.shards {
        put_u64(&mut body, shard.commit_counter);
        put_u64(&mut body, shard.watermark);
        put_u32(&mut body, shard.chains.len() as u32);
        for (entity, versions) in &shard.chains {
            put_u32(&mut body, entity.0);
            put_u32(&mut body, versions.len() as u32);
            for version in versions {
                put_u32(&mut body, version.writer.0);
                put_u64(&mut body, version.commit_ts);
                put_u32(&mut body, version.value.len() as u32);
                body.extend_from_slice(&version.value);
            }
        }
    }
    let tmp = dir.join(format!("checkpoint-{:08}.ckpt.tmp", data.seq));
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(CHECKPOINT_MAGIC)?;
        file.write_all(&crc32(&body).to_le_bytes())?;
        file.write_all(&(body.len() as u32).to_le_bytes())?;
        file.write_all(&body)?;
        file.sync_data()?;
    }
    let path = checkpoint_path(dir, data.seq);
    std::fs::rename(&tmp, &path)?;
    // Make the rename itself durable: without a directory fsync a host
    // crash can forget the entry even though the file data was synced.
    crate::wal::sync_dir(dir)?;
    Ok(path)
}

/// A little-endian reader over a checkpoint body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        // lint: allow(unwrap) — slice length fixed by the on-disk format
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        // lint: allow(unwrap) — slice length fixed by the on-disk format
        Some(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let bytes = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(bytes)
    }
}

/// Reads and validates one checkpoint file.  Returns `None` when the file
/// is torn, corrupt or not a checkpoint (the caller falls back to an
/// older checkpoint or to log-only recovery).
pub fn read_checkpoint(path: &Path) -> io::Result<Option<CheckpointData>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(parse_checkpoint(&bytes))
}

fn parse_checkpoint(bytes: &[u8]) -> Option<CheckpointData> {
    if bytes.len() < 16 || &bytes[0..8] != CHECKPOINT_MAGIC {
        return None;
    }
    // lint: allow(unwrap) — slice length fixed by the on-disk format
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    // lint: allow(unwrap) — slice length fixed by the on-disk format
    let body_len = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    let body = bytes.get(16..16 + body_len)?;
    if crc32(body) != stored_crc {
        return None;
    }
    let mut r = Reader { buf: body, pos: 0 };
    let seq = r.u64()?;
    let replay_from_lsn = r.u64()?;
    let next_tx = r.u32()?;
    let shard_count = r.u32()? as usize;
    if shard_count > body_len {
        return None;
    }
    let mut shards = Vec::with_capacity(shard_count);
    for _ in 0..shard_count {
        let commit_counter = r.u64()?;
        let watermark = r.u64()?;
        let chain_count = r.u32()? as usize;
        if chain_count > body_len {
            return None;
        }
        let mut chains = Vec::with_capacity(chain_count);
        for _ in 0..chain_count {
            let entity = EntityId(r.u32()?);
            let version_count = r.u32()? as usize;
            if version_count > body_len {
                return None;
            }
            let mut versions = Vec::with_capacity(version_count);
            for _ in 0..version_count {
                let writer = TxId(r.u32()?);
                let commit_ts = r.u64()?;
                let len = r.u32()? as usize;
                let value = Bytes::copy_from_slice(r.bytes(len)?);
                versions.push(CommittedVersion {
                    writer,
                    commit_ts,
                    value,
                });
            }
            chains.push((entity, versions));
        }
        shards.push(ShardCheckpoint {
            commit_counter,
            watermark,
            chains,
        });
    }
    Some(CheckpointData {
        seq,
        replay_from_lsn,
        next_tx,
        shards,
    })
}

/// Loads the newest valid checkpoint under `dir`, skipping torn or
/// corrupt ones.
pub fn latest_checkpoint(dir: &Path) -> io::Result<Option<CheckpointData>> {
    for (_, path) in list_checkpoints(dir)?.into_iter().rev() {
        if let Some(data) = read_checkpoint(&path)? {
            return Ok(Some(data));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mvcc-ckpt-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(seq: u64) -> CheckpointData {
        CheckpointData {
            seq,
            replay_from_lsn: 42,
            next_tx: 9,
            shards: vec![
                ShardCheckpoint {
                    commit_counter: 7,
                    watermark: 5,
                    chains: vec![(
                        EntityId(0),
                        vec![
                            CommittedVersion {
                                writer: TxId::INITIAL,
                                commit_ts: 0,
                                value: Bytes::from_static(b"0"),
                            },
                            CommittedVersion {
                                writer: TxId(3),
                                commit_ts: 7,
                                value: Bytes::from_static(b"three"),
                            },
                        ],
                    )],
                },
                ShardCheckpoint {
                    commit_counter: 2,
                    watermark: 2,
                    chains: vec![(
                        EntityId(1),
                        vec![CommittedVersion {
                            writer: TxId(2),
                            commit_ts: 2,
                            value: Bytes::new(),
                        }],
                    )],
                },
            ],
        }
    }

    #[test]
    fn write_read_round_trip() {
        let dir = temp_dir("round");
        let data = sample(1);
        let path = write_checkpoint(&dir, &data).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), Some(data.clone()));
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(data));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_checkpoint_prefers_the_newest_valid_one() {
        let dir = temp_dir("latest");
        write_checkpoint(&dir, &sample(1)).unwrap();
        write_checkpoint(&dir, &sample(2)).unwrap();
        let newest = sample(3);
        write_checkpoint(&dir, &newest).unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(newest));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_skipped_not_trusted() {
        let dir = temp_dir("corrupt");
        let good = sample(1);
        write_checkpoint(&dir, &good).unwrap();
        // Write checkpoint 2 and then corrupt its body: recovery must fall
        // back to checkpoint 1.
        let path = write_checkpoint(&dir, &sample(2)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), None);
        assert_eq!(latest_checkpoint(&dir).unwrap(), Some(good));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoints_are_skipped() {
        let dir = temp_dir("torn");
        let path = write_checkpoint(&dir, &sample(1)).unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len / 2).unwrap();
        drop(file);
        assert_eq!(read_checkpoint(&path).unwrap(), None);
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_checkpoint_files_are_ignored() {
        let dir = temp_dir("noise");
        std::fs::write(dir.join("wal-00000000.seg"), b"not a checkpoint").unwrap();
        std::fs::write(dir.join("notes.txt"), b"hello").unwrap();
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
