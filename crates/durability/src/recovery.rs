//! Crash recovery: checkpoint + log tail → committed store state and the
//! durable admission history.
//!
//! [`recover`] rebuilds two things from a log directory:
//!
//! 1. **Data** — per-shard committed version chains and commit counters,
//!    starting from the newest valid checkpoint and replaying commit
//!    records with `lsn >= replay_from_lsn`.  Only [`WalRecord::Commit`]
//!    applies data: a transaction with write records but no commit record
//!    (in flight at the crash, or its commit record torn off the tail)
//!    contributes nothing — exactly the *avoids cascading aborts* (ACA)
//!    discipline carried across the crash, since no committed transaction
//!    ever depended on such a loser's data.
//! 2. **History** — the admitted step sequence (read/write records, in
//!    ruling order) and the committed transaction set, across the whole
//!    log.  The committed projection of that sequence is the object the
//!    offline `mvcc-classify` checkers certify; recovery realizes a
//!    committed projection of a *prefix* of the certified history (the
//!    valid log prefix), and the certifier classes are closed under both
//!    prefixes and committed projection, so the recovered history is
//!    still in the class the certifier promised.  Segments are retained
//!    after checkpoints for exactly this reason: checkpoints bound *data*
//!    replay, while the history remains classifiable from the log alone.
//!
//! Torn or corrupt tail records are detected by CRC ([`crate::wal::scan_log`])
//! and everything from the first bad byte on is ignored; [`crate::wal::WalWriter::open`]
//! physically truncates the same prefix before the engine resumes
//! appending.

use crate::checkpoint::{latest_checkpoint, CommittedVersion, ShardCheckpoint};
use crate::record::WalRecord;
use crate::wal::scan_log;
use bytes::Bytes;
use mvcc_core::{EntityId, Schedule, Step, TxId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// What the recovering engine must know about the topology the log was
/// written under.
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Number of store shards (entities are owned by `entity % shards`).
    pub shards: usize,
    /// Number of pre-created entities.
    pub entities: usize,
    /// The pre-seed value of every entity (`T0`'s write).
    pub initial: Bytes,
}

/// The rebuilt state of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredShard {
    /// Commit-counter high-water mark (max of the checkpointed counter
    /// and every replayed commit timestamp).
    pub commit_counter: u64,
    /// The reclaimed horizon: no snapshot below this timestamp may ever
    /// be issued again (versions under it may be gone).
    pub watermark: u64,
    /// Per-entity committed chains, sorted by commit timestamp.
    pub chains: Vec<(EntityId, Vec<CommittedVersion>)>,
}

/// Bookkeeping of one recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: Option<u64>,
    /// Valid log records scanned.
    pub records_scanned: u64,
    /// Commit records whose data was (re)applied after the checkpoint.
    pub commits_replayed: u64,
    /// `true` when the log ended in a torn or corrupt record that was
    /// logically truncated.
    pub truncated_tail: bool,
    /// Whole segments discarded because they followed a corruption.
    pub orphaned_segments: usize,
    /// Transactions with admitted writes but no durable commit record —
    /// discarded by recovery (the crash aborted them).
    pub discarded: Vec<TxId>,
    /// Wall-clock duration of the recovery pass.
    pub elapsed: Duration,
}

/// Everything [`recover`] rebuilds.
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// Per-shard committed state, indexed by shard.
    pub shards: Vec<RecoveredShard>,
    /// Every admitted step in the durable prefix, in ruling order
    /// (committed and discarded transactions alike).
    pub admitted: Vec<Step>,
    /// Transactions with a durable commit record.
    pub committed: BTreeSet<TxId>,
    /// The next transaction id a resumed engine may allocate.
    pub next_tx: u32,
    /// How the pass went.
    pub report: RecoveryReport,
}

impl RecoveredState {
    /// The committed projection of the durable admission history — the
    /// schedule the offline classifiers certify.
    pub fn committed_schedule(&self) -> Schedule {
        Schedule::from_steps(
            self.admitted
                .iter()
                .copied()
                .filter(|s| self.committed.contains(&s.tx))
                .collect(),
        )
    }

    /// The newest committed version of every entity, across all shards —
    /// the WAL's committed projection of the store state.
    pub fn latest_committed(&self) -> BTreeMap<EntityId, CommittedVersion> {
        let mut latest = BTreeMap::new();
        for shard in &self.shards {
            for (entity, versions) in &shard.chains {
                if let Some(version) = versions.last() {
                    latest.insert(*entity, version.clone());
                }
            }
        }
        latest
    }
}

/// In-flight write set accumulated from write records until a commit
/// record lands (or never does).
type PendingWrites = HashMap<TxId, Vec<(EntityId, Bytes)>>;

/// Rebuilds committed state and the durable history from the log under
/// `dir`.  An empty or absent directory recovers to the fresh-engine
/// state (all entities at `opts.initial`, nothing committed).
pub fn recover(dir: &Path, opts: &RecoveryOptions) -> io::Result<RecoveredState> {
    assert!(opts.shards > 0, "at least one shard");
    // lint: allow(clock) — recovery duration is reported in the RecoveryReport
    let started = Instant::now();
    let checkpoint = latest_checkpoint(dir)?;
    if let Some(ckpt) = &checkpoint {
        if ckpt.shards.len() != opts.shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint was cut with {} shards, recovery configured {}",
                    ckpt.shards.len(),
                    opts.shards
                ),
            ));
        }
    }
    let replay_from_lsn = checkpoint.as_ref().map_or(0, |c| c.replay_from_lsn);
    let checkpoint_seq = checkpoint.as_ref().map(|c| c.seq);
    let ckpt_next_tx = checkpoint.as_ref().map_or(1, |c| c.next_tx);

    // Seed the chains: from the checkpoint, or the fresh pre-seeded state.
    let mut shards: Vec<ShardState> = match checkpoint {
        Some(ckpt) => ckpt
            .shards
            .into_iter()
            .map(ShardState::from_checkpoint)
            .collect(),
        None => (0..opts.shards)
            .map(|idx| ShardState::fresh(idx, opts))
            .collect(),
    };

    let scan = scan_log(dir)?;
    let mut admitted = Vec::new();
    let mut committed = BTreeSet::new();
    let mut pending: PendingWrites = HashMap::new();
    let mut max_tx = 0u32;
    let mut commits_replayed = 0u64;
    let mut seen_writers: BTreeSet<TxId> = BTreeSet::new();

    let note_tx = |max_tx: &mut u32, tx: TxId| {
        if !tx.is_padding() {
            *max_tx = (*max_tx).max(tx.0);
        }
    };

    for scanned in &scan.records {
        match &scanned.record {
            WalRecord::Begin { tx } | WalRecord::Abort { tx } => {
                note_tx(&mut max_tx, *tx);
                if matches!(scanned.record, WalRecord::Abort { .. }) {
                    pending.remove(tx);
                }
            }
            WalRecord::Read { tx, entity } => {
                note_tx(&mut max_tx, *tx);
                admitted.push(Step::read(*tx, *entity));
            }
            WalRecord::Write { tx, entity, value } => {
                note_tx(&mut max_tx, *tx);
                admitted.push(Step::write(*tx, *entity));
                seen_writers.insert(*tx);
                pending
                    .entry(*tx)
                    .or_default()
                    .push((*entity, value.clone()));
            }
            WalRecord::Commit { entries } => {
                for entry in entries {
                    note_tx(&mut max_tx, entry.tx);
                    committed.insert(entry.tx);
                    let writes = pending.remove(&entry.tx).unwrap_or_default();
                    if scanned.lsn < replay_from_lsn {
                        // Already absorbed by the checkpoint; every shard
                        // counter in the checkpoint reflects it too.
                        continue;
                    }
                    commits_replayed += 1;
                    for (entity, value) in writes {
                        let shard_idx = entity.index() % opts.shards;
                        let Some(&(_, ts)) = entry
                            .shards
                            .iter()
                            .find(|&&(shard, _)| shard as usize == shard_idx)
                        else {
                            // A commit record that does not name the shard
                            // of one of its writes would be an upstream
                            // bug; tolerate it by skipping the write.
                            continue;
                        };
                        shards[shard_idx].apply(entity, entry.tx, ts, value);
                    }
                    for &(shard, ts) in &entry.shards {
                        if let Some(state) = shards.get_mut(shard as usize) {
                            state.commit_counter = state.commit_counter.max(ts);
                        }
                    }
                }
            }
            WalRecord::Checkpoint { .. } => {}
        }
    }

    // Transactions that admitted writes but never durably committed: the
    // crash aborted them (their versions are simply never applied).
    let discarded: Vec<TxId> = seen_writers
        .into_iter()
        .filter(|tx| !committed.contains(tx))
        .collect();

    let shards = shards.into_iter().map(ShardState::finish).collect();
    let report = RecoveryReport {
        checkpoint_seq,
        records_scanned: scan.records.len() as u64,
        commits_replayed,
        truncated_tail: scan.truncated_tail,
        orphaned_segments: scan.orphaned_segments.len(),
        discarded,
        elapsed: started.elapsed(),
    };
    Ok(RecoveredState {
        shards,
        admitted,
        committed,
        next_tx: ckpt_next_tx.max(max_tx.saturating_add(1)).max(1),
        report,
    })
}

/// Mutable shard state during replay.
struct ShardState {
    commit_counter: u64,
    watermark: u64,
    chains: BTreeMap<EntityId, Vec<CommittedVersion>>,
}

impl ShardState {
    fn fresh(idx: usize, opts: &RecoveryOptions) -> Self {
        let chains = (0..opts.entities as u32)
            .map(EntityId)
            .filter(|e| e.index() % opts.shards == idx)
            .map(|e| {
                (
                    e,
                    vec![CommittedVersion {
                        writer: TxId::INITIAL,
                        commit_ts: 0,
                        value: opts.initial.clone(),
                    }],
                )
            })
            .collect();
        ShardState {
            commit_counter: 0,
            watermark: 0,
            chains,
        }
    }

    fn from_checkpoint(ckpt: ShardCheckpoint) -> Self {
        ShardState {
            commit_counter: ckpt.commit_counter,
            watermark: ckpt.watermark,
            chains: ckpt.chains.into_iter().collect(),
        }
    }

    /// Applies one committed write, idempotently: a `(writer, ts)` version
    /// already present (the checkpoint absorbed it during the fuzzy
    /// overlap window) is not duplicated.
    fn apply(&mut self, entity: EntityId, writer: TxId, ts: u64, value: Bytes) {
        let chain = self.chains.entry(entity).or_default();
        if chain
            .iter()
            .any(|v| v.writer == writer && v.commit_ts == ts)
        {
            return;
        }
        chain.push(CommittedVersion {
            writer,
            commit_ts: ts,
            value,
        });
    }

    /// Canonicalizes into a [`RecoveredShard`]: chains sorted by commit
    /// timestamp (the unique total order of committed versions per shard).
    fn finish(self) -> RecoveredShard {
        let mut chains: Vec<(EntityId, Vec<CommittedVersion>)> = self.chains.into_iter().collect();
        for (_, versions) in &mut chains {
            versions.sort_by_key(|v| v.commit_ts);
        }
        RecoveredShard {
            commit_counter: self.commit_counter,
            watermark: self.watermark,
            chains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{write_checkpoint, CheckpointData};
    use crate::record::CommitEntry;
    use crate::wal::{DurabilityMode, WalWriter};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mvcc-rec-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn opts() -> RecoveryOptions {
        RecoveryOptions {
            shards: 2,
            entities: 4,
            initial: Bytes::from_static(b"0"),
        }
    }

    fn commit(tx: u32, shards: Vec<(u32, u64)>) -> WalRecord {
        WalRecord::Commit {
            entries: vec![CommitEntry {
                tx: TxId(tx),
                shards,
            }],
        }
    }

    fn write(tx: u32, entity: u32, value: &[u8]) -> WalRecord {
        WalRecord::Write {
            tx: TxId(tx),
            entity: EntityId(entity),
            value: Bytes::copy_from_slice(value),
        }
    }

    #[test]
    fn empty_directory_recovers_to_the_fresh_state() {
        let dir = temp_dir("empty");
        let state = recover(&dir, &opts()).unwrap();
        assert_eq!(state.shards.len(), 2);
        assert!(state.committed.is_empty());
        assert!(state.admitted.is_empty());
        assert_eq!(state.next_tx, 1);
        // Every entity sits at its pre-seed.
        let latest = state.latest_committed();
        assert_eq!(latest.len(), 4);
        for version in latest.values() {
            assert_eq!(version.writer, TxId::INITIAL);
            assert_eq!(version.value, Bytes::from_static(b"0"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_transactions_recover_uncommitted_are_discarded() {
        let dir = temp_dir("basic");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_batch(&[
                WalRecord::Begin { tx: TxId(1) },
                write(1, 0, b"one"), // shard 0
                write(1, 1, b"uno"), // shard 1
                WalRecord::Begin { tx: TxId(2) },
                write(2, 2, b"loser"), // shard 0, never commits
            ])
            .unwrap();
            wal.append_and_flush(&[commit(1, vec![(0, 1), (1, 1)])])
                .unwrap();
        }
        let state = recover(&dir, &opts()).unwrap();
        assert_eq!(state.committed, BTreeSet::from([TxId(1)]));
        assert_eq!(state.report.discarded, vec![TxId(2)]);
        assert_eq!(state.next_tx, 3);
        let latest = state.latest_committed();
        assert_eq!(latest[&EntityId(0)].value, Bytes::from_static(b"one"));
        assert_eq!(latest[&EntityId(1)].value, Bytes::from_static(b"uno"));
        // The loser's write never applied: entity 2 is still at pre-seed.
        assert_eq!(latest[&EntityId(2)].writer, TxId::INITIAL);
        // Shard counters follow the replayed timestamps.
        assert_eq!(state.shards[0].commit_counter, 1);
        assert_eq!(state.shards[1].commit_counter, 1);
        // History: both writes of T1 and the loser's write were admitted;
        // the committed projection keeps only T1's.
        assert_eq!(state.admitted.len(), 3);
        assert_eq!(state.committed_schedule().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_commits_are_not_resurrected() {
        let dir = temp_dir("torn");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_and_flush(&[write(1, 0, b"durable"), commit(1, vec![(0, 1)])])
                .unwrap();
            wal.append_and_flush(&[write(2, 0, b"torn"), commit(2, vec![(0, 2)])])
                .unwrap();
        }
        // Tear the last commit record off the tail.
        let (_, path) = crate::wal::list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);
        let state = recover(&dir, &opts()).unwrap();
        assert!(state.report.truncated_tail);
        assert_eq!(state.committed, BTreeSet::from([TxId(1)]));
        assert_eq!(
            state.latest_committed()[&EntityId(0)].value,
            Bytes::from_static(b"durable")
        );
        assert_eq!(state.report.discarded, vec![TxId(2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_bounds_data_replay_but_history_spans_the_log() {
        let dir = temp_dir("ckpt");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write(1, 0, b"pre"), commit(1, vec![(0, 1)])])
            .unwrap();
        // Cut a checkpoint reflecting T1 (replay resumes after its commit).
        let ckpt = CheckpointData {
            seq: 1,
            replay_from_lsn: wal.last_lsn().unwrap() + 1,
            next_tx: 2,
            shards: vec![
                ShardCheckpoint {
                    commit_counter: 1,
                    watermark: 1,
                    chains: vec![(
                        EntityId(0),
                        vec![CommittedVersion {
                            writer: TxId(1),
                            commit_ts: 1,
                            value: Bytes::from_static(b"pre"),
                        }],
                    )],
                },
                ShardCheckpoint {
                    commit_counter: 0,
                    watermark: 0,
                    chains: vec![(
                        EntityId(1),
                        vec![CommittedVersion {
                            writer: TxId::INITIAL,
                            commit_ts: 0,
                            value: Bytes::from_static(b"0"),
                        }],
                    )],
                },
            ],
        };
        write_checkpoint(&dir, &ckpt).unwrap();
        wal.append_and_flush(&[write(2, 0, b"post"), commit(2, vec![(0, 2)])])
            .unwrap();
        let state = recover(&dir, &opts()).unwrap();
        assert_eq!(state.report.checkpoint_seq, Some(1));
        // Only T2's commit replayed as data...
        assert_eq!(state.report.commits_replayed, 1);
        // ...but the committed history spans both epochs.
        assert_eq!(state.committed, BTreeSet::from([TxId(1), TxId(2)]));
        assert_eq!(state.committed_schedule().len(), 2);
        let chain: &Vec<CommittedVersion> = state.shards[0]
            .chains
            .iter()
            .find(|(e, _)| *e == EntityId(0))
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(chain.len(), 2, "checkpointed + replayed versions");
        assert_eq!(chain[1].value, Bytes::from_static(b"post"));
        assert_eq!(state.shards[0].commit_counter, 2);
        assert_eq!(state.shards[0].watermark, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzzy_checkpoint_overlap_is_idempotent() {
        // The checkpoint already contains T1's version, but T1's commit
        // record lies at or after replay_from_lsn (the fuzzy window):
        // replay must not duplicate the version.
        let dir = temp_dir("fuzzy");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write(1, 0, b"v"), commit(1, vec![(0, 1)])])
            .unwrap();
        let ckpt = CheckpointData {
            seq: 1,
            replay_from_lsn: 0, // conservative: replay everything
            next_tx: 2,
            shards: vec![
                ShardCheckpoint {
                    commit_counter: 1,
                    watermark: 0,
                    chains: vec![(
                        EntityId(0),
                        vec![CommittedVersion {
                            writer: TxId(1),
                            commit_ts: 1,
                            value: Bytes::from_static(b"v"),
                        }],
                    )],
                },
                ShardCheckpoint::default(),
            ],
        };
        write_checkpoint(&dir, &ckpt).unwrap();
        let state = recover(&dir, &opts()).unwrap();
        let chain: &Vec<CommittedVersion> = state.shards[0]
            .chains
            .iter()
            .find(|(e, _)| *e == EntityId(0))
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(chain.len(), 1, "no duplicate from the overlap window");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_count_mismatch_is_refused() {
        let dir = temp_dir("mismatch");
        write_checkpoint(
            &dir,
            &CheckpointData {
                seq: 1,
                replay_from_lsn: 0,
                next_tx: 1,
                shards: vec![ShardCheckpoint::default()],
            },
        )
        .unwrap();
        let err = recover(&dir, &opts()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_chains_are_sorted_by_commit_timestamp() {
        // Two writers of the same entity committing in "inverted" order
        // (possible under SGT-style certifiers: chain-append order need
        // not match commit order) recover into timestamp order, so the
        // newest committed value is the max-timestamp one.
        let dir = temp_dir("sorted");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_batch(&[
                write(1, 0, b"first-admitted"),
                write(2, 0, b"second-admitted"),
            ])
            .unwrap();
            // T2 commits first (ts 1), then T1 (ts 2).
            wal.append_and_flush(&[commit(2, vec![(0, 1)]), commit(1, vec![(0, 2)])])
                .unwrap();
        }
        let state = recover(&dir, &opts()).unwrap();
        let latest = state.latest_committed();
        assert_eq!(latest[&EntityId(0)].writer, TxId(1));
        assert_eq!(latest[&EntityId(0)].commit_ts, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
