//! Tailing the write-ahead log: the resumable cursor a log shipper reads
//! the primary's segments through.
//!
//! Recovery ([`crate::recovery`]) reads the log once, at rest.  A read
//! replica instead *follows* the log while the primary keeps appending:
//! it needs a cursor it can poll, that
//!
//! * yields only whole, CRC-checked records (the same trust boundary as
//!   recovery — a record the CRC rejects is never shipped);
//! * **parks** on every cold-tail shape a live log can present — a torn
//!   record at the physical tail (a flush landed mid-record), a
//!   zero-length or header-less freshly rotated segment, an empty or
//!   not-yet-created log directory — and resumes cleanly once the writer
//!   catches up, instead of erroring;
//! * detects real damage: a CRC mismatch with more log after it, or a
//!   gap in the LSN sequence (a record the shipper would otherwise
//!   silently skip), is an error, not a park;
//! * can **seek**: [`WalCursor::from_lsn`] positions past records a
//!   restarted replica already applied (its local checkpoint names the
//!   LSN), re-reading but not re-delivering the prefix.
//!
//! The cursor is plain data (`segment`, byte `offset`, `next_lsn`), so a
//! replica can persist it alongside its checkpoint and resume exactly
//! where it stopped.
//!
//! ## Promotions
//!
//! After a failover the directory's epoch marker names a fence
//! ([`crate::epoch`]): old-lineage bytes at or past the fence LSN are a
//! deposed primary's residue.  The tailer **resubscribes** rather than
//! errors on every promotion shape — a stale-epoch record at the fence, a
//! torn residue frame, or an old segment healed away entirely all rebind
//! the cursor to the first segment of the new lineage, whose records
//! continue the LSN sequence exactly at the fence.  One caveat is
//! inherent: a tailer that already *delivered* residue during the
//! promotion window (before the fence was published) cannot detect that
//! locally — the split-brain tests pin down that the healed log itself
//! never re-serves residue, which is what bounds the damage to replicas
//! rebuilt from the log.

use crate::epoch::read_epoch_marker;
use crate::record::{decode_record, DecodeError};
use crate::wal::{list_segments, segment_path, ScannedRecord, SEGMENT_HEADER, SEGMENT_MAGIC};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

/// A resumable read position in a segmented log directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalCursor {
    /// The segment being read (`None` until the cursor has bound itself to
    /// the first segment that exists — an empty directory has nothing to
    /// bind to yet).
    segment: Option<u64>,
    /// Byte offset of the next unread byte inside `segment` (at least
    /// [`SEGMENT_HEADER`] once the segment's header has been verified).
    offset: u64,
    /// LSN the next *delivered* record must carry.  Records below it (a
    /// seek's skip prefix) are decoded and discarded; a record above it
    /// means the log lost a record and is reported as corruption.
    next_lsn: u64,
}

impl WalCursor {
    /// A cursor at the very beginning of the log.
    pub fn origin() -> Self {
        WalCursor {
            segment: None,
            offset: 0,
            next_lsn: 0,
        }
    }

    /// A cursor that delivers records starting at `lsn`: the physical scan
    /// still begins at the first segment (records are CRC-checked along
    /// the way), but everything below `lsn` is skipped, not delivered.
    /// This is how a restarted replica resumes from its checkpoint's LSN.
    pub fn from_lsn(lsn: u64) -> Self {
        WalCursor {
            segment: None,
            offset: 0,
            next_lsn: lsn,
        }
    }

    /// LSN of the next record this cursor will deliver.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The segment the cursor is positioned in, once bound.
    pub fn segment(&self) -> Option<u64> {
        self.segment
    }
}

/// One poll's worth of tail records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailBatch {
    /// Whole, CRC-valid records in log order, each with `lsn >= ` the
    /// cursor's `next_lsn` at call time.
    pub records: Vec<ScannedRecord>,
    /// `true` when the poll consumed everything currently readable: the
    /// cursor stands at the physical end of the last segment, or at a
    /// cold tail (torn record / unwritten segment) that only the writer
    /// can extend.  `false` means more is readable right now (the batch
    /// limit stopped the poll) — poll again without sleeping.
    pub caught_up: bool,
}

/// Why the tail is unreadable *as corruption* (parking conditions are not
/// errors — they surface as an empty, caught-up [`TailBatch`]).
fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Bytes read from a segment per poll.  Large enough to amortize the
/// syscalls, small enough that a shipper catching up through multi-MB
/// segments does not re-read them quadratically (and does not stall
/// whoever waits on the caller's apply lock).
const READ_WINDOW: u64 = 256 * 1024;

/// Polls the log under `dir` from `cursor`, delivering at most
/// `max_records` records and advancing the cursor past everything it
/// consumed (delivered or skipped).
///
/// Cold-tail shapes — an absent or empty directory, a zero-length or
/// half-written tail segment, a torn record at the physical end — return
/// an empty (or short) batch with `caught_up = true` and leave the cursor
/// where it can resume; they are the normal states of a live log between
/// flushes.  A CRC-invalid record *followed by more log* (a later segment
/// exists), an LSN gap, or a vanished segment the cursor still needs are
/// real corruption and return an error.
pub fn read_tail(dir: &Path, cursor: &mut WalCursor, max_records: usize) -> io::Result<TailBatch> {
    let mut batch = TailBatch {
        records: Vec::new(),
        caught_up: true,
    };
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        // The log does not exist yet (or the directory is empty
        // mid-stream, before the writer's first segment lands): park.
        return Ok(batch);
    }
    // Sampled once per poll: a fence published mid-poll is seen next poll.
    let fence = read_epoch_marker(dir)?.filter(|m| m.has_fence());
    // Rebinds the cursor to the first segment of the fenced lineage;
    // `false` when it is not listed yet (park and re-list next poll).
    let rebind_to_new_lineage =
        |cursor: &mut WalCursor, start_segment: u64, segments: &[(u64, std::path::PathBuf)]| {
            match segments.iter().find(|&&(s, _)| s >= start_segment) {
                Some(&(s, _)) => {
                    cursor.segment = Some(s);
                    cursor.offset = 0;
                    true
                }
                None => false,
            }
        };
    // Bind an unbound cursor to the first segment that exists.
    if cursor.segment.is_none() {
        cursor.segment = Some(segments[0].0);
        cursor.offset = 0;
    }
    loop {
        // lint: allow(unwrap) — cursor.segment is Some on this branch, checked above
        let seq = cursor.segment.expect("cursor bound above");
        let Some(position) = segments.iter().position(|&(s, _)| s == seq) else {
            if let Some(f) = fence {
                if seq < f.start_segment {
                    // Not "vanished": the segment was an old-epoch one
                    // superseded by a promotion (healing deletes segments
                    // that held nothing but a deposed primary's residue).
                    // Resubscribe to the new lineage instead of erroring.
                    if rebind_to_new_lineage(cursor, f.start_segment, &segments) {
                        continue;
                    }
                    break;
                }
            }
            if segments.last().is_some_and(|&(s, _)| s > seq) {
                // The cursor's segment is gone while *later* segments
                // exist (whether or not earlier ones survive): the log
                // lost records the cursor still needed.  This must be an
                // error, not a park — parking here would stall the
                // shipper forever while reporting success.
                return Err(corrupt(format!("segment {seq} vanished under the cursor")));
            }
            // The cursor points one past the newest segment (it advanced
            // eagerly after finishing the previous one): park until the
            // writer rotates.
            break;
        };
        let old_lineage = fence.is_some_and(|f| seq < f.start_segment);
        let has_successor = position + 1 < segments.len();
        let path = segment_path(dir, seq);
        let mut bytes = Vec::new();
        let mut file = File::open(&path)?;
        // Bound each poll's read to a window: re-reading a whole 8 MB
        // segment per poll while catching up would be quadratic I/O (and
        // the caller may hold a lock across this call).  `file_len` is
        // sampled first so a decode failure at the window edge can be
        // told apart from a genuinely torn tail — the file may grow
        // after the sample, which only errs on the side of re-polling.
        let file_len = file.metadata()?.len();
        if cursor.offset > 0 {
            file.seek(SeekFrom::Start(cursor.offset))?;
        }
        let window_base = cursor.offset;
        (&mut file).take(READ_WINDOW).read_to_end(&mut bytes)?;
        let mut local = 0usize;
        if cursor.offset < SEGMENT_HEADER as u64 {
            // Header not yet verified.  A segment shorter than its header
            // (zero-length file, header torn mid-write) is a cold tail if
            // it is the newest segment; with a successor present the
            // writer is long past it, so a short header is damage.
            if (bytes.len() as u64) < SEGMENT_HEADER as u64 - cursor.offset {
                if has_successor {
                    return Err(corrupt(format!("segment {seq} has a torn header")));
                }
                break;
            }
            if cursor.offset == 0 {
                if &bytes[0..8] != SEGMENT_MAGIC {
                    return Err(corrupt(format!("segment {seq} has bad magic")));
                }
                // lint: allow(unwrap) — slice length fixed by the on-disk format
                let stamped = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
                if stamped != seq {
                    return Err(corrupt(format!(
                        "segment file {seq} claims sequence {stamped}"
                    )));
                }
            }
            local = (SEGMENT_HEADER as u64 - cursor.offset) as usize;
            cursor.offset = SEGMENT_HEADER as u64;
        }
        let mut parked = false;
        let mut rebind = false;
        while local < bytes.len() {
            if batch.records.len() >= max_records {
                batch.caught_up = false;
                return Ok(batch);
            }
            match decode_record(&bytes[local..]) {
                Ok((consumed, lsn, epoch, record)) => {
                    if old_lineage {
                        // lint: allow(unwrap) — fence presence established by the enclosing branch
                        let f = fence.expect("old_lineage implies a fence");
                        if lsn >= f.fence_lsn && epoch < f.epoch {
                            // A deposed primary's residue at the fence cut:
                            // do not advance past it — jump to the new
                            // lineage, which owns this LSN onward.
                            rebind = true;
                            break;
                        }
                    }
                    local += consumed;
                    cursor.offset += consumed as u64;
                    if lsn < cursor.next_lsn {
                        // The seek prefix: already applied, not delivered.
                        continue;
                    }
                    if lsn > cursor.next_lsn {
                        return Err(corrupt(format!(
                            "LSN gap at segment {seq}: expected {}, found {lsn}",
                            cursor.next_lsn
                        )));
                    }
                    cursor.next_lsn = lsn + 1;
                    batch.records.push(ScannedRecord { lsn, epoch, record });
                }
                Err(_) if old_lineage && fence.is_some_and(|f| cursor.next_lsn >= f.fence_lsn) => {
                    // Every record up to the fence has been consumed, so a
                    // torn or corrupt frame here is residue the deposed
                    // primary left mid-write (a pre-fence problem would
                    // have surfaced while `next_lsn` was still below the
                    // fence).  Resubscribe to the new lineage.
                    rebind = true;
                    break;
                }
                Err(DecodeError::Truncated) if window_base + (bytes.len() as u64) < file_len => {
                    // The record crosses the read window while more of the
                    // file exists beyond it — not a tail shape.  Extend
                    // the buffer far enough to cover the record (its frame
                    // header declares the length once 4 bytes are visible;
                    // records may legitimately exceed READ_WINDOW) and
                    // retry the same decode.  Returning without progress
                    // here would livelock the shipper on any record larger
                    // than the window.
                    let avail = bytes.len() - local;
                    let needed = if avail >= 4 {
                        let len = u32::from_le_bytes(
                            // lint: allow(unwrap) — slice length fixed by the on-disk format
                            bytes[local..local + 4].try_into().expect("4 bytes"),
                        );
                        (crate::record::FRAME_OVERHEAD as u64 + u64::from(len))
                            .saturating_sub(avail as u64)
                    } else {
                        crate::record::FRAME_OVERHEAD as u64
                    };
                    let room = file_len - (window_base + bytes.len() as u64);
                    let grow = needed.max(4096).min(room);
                    (&mut file).take(grow).read_to_end(&mut bytes)?;
                    continue;
                }
                Err(DecodeError::Truncated) if !has_successor => {
                    // A torn record at the physical tail: the writer's
                    // flush landed mid-record.  Park; the next poll
                    // re-reads from this offset.
                    parked = true;
                    break;
                }
                Err(e) => {
                    // Torn with a successor (the writer finished this
                    // segment long ago) or CRC-invalid anywhere: damage.
                    return Err(corrupt(format!(
                        "segment {seq} offset {}: {e}",
                        cursor.offset
                    )));
                }
            }
        }
        if rebind {
            // lint: allow(unwrap) — fence presence established by the enclosing branch
            let f = fence.expect("rebind implies a fence");
            if rebind_to_new_lineage(cursor, f.start_segment, &segments) {
                continue;
            }
            // The new lineage's first segment is not listed yet (the poll
            // raced the promotion's directory update): park, re-list next
            // poll.
            break;
        }
        if !parked && window_base + (bytes.len() as u64) < file_len {
            // The window ended exactly on a record boundary with more
            // file behind it: keep reading the same segment right away.
            batch.caught_up = false;
            return Ok(batch);
        }
        if parked || !has_successor {
            // Either a cold tail, or the newest segment read to its
            // physical end: caught up.
            break;
        }
        // Finished a completed segment: advance to its successor.
        cursor.segment = Some(segments[position + 1].0);
        cursor.offset = 0;
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, CommitEntry, WalRecord};
    use crate::wal::{DurabilityMode, WalWriter};
    use bytes::Bytes;
    use mvcc_core::{EntityId, TxId};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mvcc-tail-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_rec(tx: u32, value: &[u8]) -> WalRecord {
        WalRecord::Write {
            tx: TxId(tx),
            entity: EntityId(tx % 4),
            value: Bytes::copy_from_slice(value),
        }
    }

    #[test]
    fn tail_follows_appends_across_polls() {
        let dir = temp_dir("follow");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        let mut cursor = WalCursor::origin();
        wal.append_and_flush(&[write_rec(1, b"a"), write_rec(2, b"b")])
            .unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(batch.records.len(), 2);
        assert!(batch.caught_up);
        // Nothing new: an empty, caught-up poll.
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert!(batch.records.is_empty() && batch.caught_up);
        // More appends resume the stream with consecutive LSNs.
        wal.append_and_flush(&[write_rec(3, b"c")]).unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].lsn, 2);
    }

    #[test]
    fn batch_limit_reports_not_caught_up() {
        let dir = temp_dir("limit");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        let records: Vec<WalRecord> = (0..6u32).map(|i| write_rec(i, b"x")).collect();
        wal.append_and_flush(&records).unwrap();
        let mut cursor = WalCursor::origin();
        let first = read_tail(&dir, &mut cursor, 4).unwrap();
        assert_eq!(first.records.len(), 4);
        assert!(!first.caught_up, "limit hit: more is readable");
        let rest = read_tail(&dir, &mut cursor, 4).unwrap();
        assert_eq!(rest.records.len(), 2);
        assert!(rest.caught_up);
        assert_eq!(rest.records[0].lsn, 4);
    }

    #[test]
    fn empty_and_absent_directories_park() {
        let dir = temp_dir("empty");
        let mut cursor = WalCursor::origin();
        // Existing but empty: park.
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert!(batch.records.is_empty() && batch.caught_up);
        // Absent entirely: also a park, not an error (the primary may not
        // have created its log yet).
        let ghost = dir.join("never-created");
        let batch = read_tail(&ghost, &mut cursor, 64).unwrap();
        assert!(batch.records.is_empty() && batch.caught_up);
        // Once the writer shows up, the same cursor picks the log up.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write_rec(1, b"late")]).unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].lsn, 0);
    }

    #[test]
    fn zero_length_tail_segment_parks_then_resumes() {
        let dir = temp_dir("zerolen");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write_rec(1, b"solid")]).unwrap();
        let mut cursor = WalCursor::origin();
        assert_eq!(read_tail(&dir, &mut cursor, 64).unwrap().records.len(), 1);
        // A zero-length next segment appears (rotation torn before the
        // header landed): the tailer must park on it, not error.
        let ghost = segment_path(&dir, 1);
        std::fs::write(&ghost, b"").unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert!(batch.records.is_empty(), "nothing readable yet");
        assert!(batch.caught_up);
        // The writer completes the segment; the same cursor resumes.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        encode_record(1, 0, &write_rec(2, b"resumed"), &mut bytes);
        std::fs::write(&ghost, &bytes).unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].lsn, 1);
    }

    #[test]
    fn torn_tail_record_parks_and_resumes_without_loss() {
        let dir = temp_dir("torn");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write_rec(1, b"whole"), write_rec(2, b"to-be-torn")])
            .unwrap();
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Tear the last record's final 3 bytes off.
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full.len() as u64 - 3).unwrap();
        drop(file);
        let mut cursor = WalCursor::origin();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(batch.records.len(), 1, "only the whole record ships");
        assert!(batch.caught_up, "torn tail parks");
        // The writer completes the record (restore the full bytes): the
        // parked cursor delivers it exactly once.
        std::fs::write(&path, &full).unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].lsn, 1);
    }

    #[test]
    fn corruption_with_a_successor_is_an_error_not_a_park() {
        let dir = temp_dir("corrupt");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
        for i in 0..6u32 {
            wal.append_and_flush(&[write_rec(i, &[7u8; 48])]).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "need rotation");
        // Flip a payload byte in the middle segment.
        let (_, middle) = &segments[1];
        let mut bytes = std::fs::read(middle).unwrap();
        let flip = SEGMENT_HEADER + crate::record::FRAME_OVERHEAD + 1;
        bytes[flip] ^= 0xff;
        std::fs::write(middle, &bytes).unwrap();
        let mut cursor = WalCursor::origin();
        let err = read_tail(&dir, &mut cursor, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn a_vanished_middle_segment_is_an_error_not_a_silent_stall() {
        let dir = temp_dir("vanish");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
        for i in 0..6u32 {
            wal.append_and_flush(&[write_rec(i, &[9u8; 48])]).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "need a middle segment");
        // Consume segment 0 fully so the cursor sits in the middle one.
        let mut cursor = WalCursor::origin();
        loop {
            let batch = read_tail(&dir, &mut cursor, 1).unwrap();
            if cursor.segment() != Some(segments[0].0) || batch.caught_up {
                break;
            }
        }
        let seq = cursor.segment().unwrap();
        // Delete the cursor's segment while earlier AND later ones
        // survive: the tailer must error (a park would stall forever
        // while reporting success).
        std::fs::remove_file(segment_path(&dir, seq)).unwrap();
        let err = read_tail(&dir, &mut cursor, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("vanished"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lsn_gaps_are_detected() {
        let dir = temp_dir("gap");
        // Hand-build a segment whose records jump from LSN 0 to LSN 2.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        encode_record(0, 0, &write_rec(1, b"a"), &mut bytes);
        encode_record(2, 0, &write_rec(2, b"b"), &mut bytes);
        std::fs::write(segment_path(&dir, 0), &bytes).unwrap();
        let mut cursor = WalCursor::origin();
        let err = read_tail(&dir, &mut cursor, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("LSN gap"), "{err}");
    }

    #[test]
    fn from_lsn_skips_the_applied_prefix() {
        let dir = temp_dir("seek");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
        for i in 0..8u32 {
            wal.append_and_flush(&[write_rec(i, &[3u8; 32])]).unwrap();
        }
        let mut cursor = WalCursor::from_lsn(5);
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert_eq!(cursor.next_lsn(), 8);
    }

    #[test]
    fn rotation_during_an_active_tail_never_drops_a_record() {
        // The WalWriter satellite: a writer rotating through tiny segments
        // while a tailer follows concurrently must hand the tailer every
        // LSN exactly once, in order — rotation (flush old, create new,
        // switch) has no window in which a record is invisible to a
        // reader that already consumed the old segment's end.
        let dir = temp_dir("rotate");
        let total: u64 = 300;
        let writer_dir = dir.clone();
        let writer = std::thread::spawn(move || {
            // Tiny threshold: every few appends rotates.
            let wal = WalWriter::open(&writer_dir, DurabilityMode::Buffered, 96).unwrap();
            for i in 0..total {
                wal.append_and_flush(&[write_rec(i as u32, &[5u8; 24])])
                    .unwrap();
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
            }
        });
        let mut cursor = WalCursor::origin();
        let mut seen: Vec<u64> = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while seen.len() < total as usize {
            assert!(
                std::time::Instant::now() < deadline,
                "tailer starved: saw {} of {total}",
                seen.len()
            );
            let batch = read_tail(&dir, &mut cursor, 32).unwrap();
            seen.extend(batch.records.iter().map(|r| r.lsn));
            if batch.caught_up && batch.records.is_empty() {
                std::thread::yield_now();
            }
        }
        writer.join().unwrap();
        assert_eq!(
            seen,
            (0..total).collect::<Vec<_>>(),
            "every LSN once, in order"
        );
        assert!(
            list_segments(&dir).unwrap().len() > 3,
            "the run must actually rotate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn large_segments_are_read_in_windows_without_loss() {
        // A segment much larger than READ_WINDOW: polls bounded by the
        // window report not-caught-up (so callers re-poll immediately,
        // without sleeping) and deliver every record exactly once.
        let dir = temp_dir("window");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64 << 20).unwrap();
        let total = 120u32;
        let payload = vec![0xa5u8; 8 * 1024];
        for i in 0..total {
            wal.append_and_flush(&[write_rec(i, &payload)]).unwrap();
        }
        let mut cursor = WalCursor::origin();
        let mut seen = Vec::new();
        let mut polls = 0;
        loop {
            let batch = read_tail(&dir, &mut cursor, usize::MAX).unwrap();
            seen.extend(batch.records.iter().map(|r| r.lsn));
            polls += 1;
            if batch.caught_up {
                break;
            }
        }
        assert_eq!(seen, (0..u64::from(total)).collect::<Vec<_>>());
        assert!(
            polls > 2,
            "a ~1 MB segment must take several windowed polls, took {polls}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_larger_than_the_read_window_still_ship() {
        // Livelock regression: a record bigger than READ_WINDOW must make
        // the tailer extend its buffer to cover the record (the frame
        // header declares the length), not spin forever on an empty
        // not-caught-up batch.
        let dir = temp_dir("bigrec");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64 << 20).unwrap();
        let big = vec![0x5au8; (READ_WINDOW as usize) + 50_000];
        wal.append_and_flush(&[
            write_rec(1, b"small-before"),
            write_rec(2, &big),
            write_rec(3, b"small-after"),
        ])
        .unwrap();
        let mut cursor = WalCursor::origin();
        let mut seen = Vec::new();
        for _ in 0..16 {
            let batch = read_tail(&dir, &mut cursor, 64).unwrap();
            seen.extend(batch.records);
            if batch.caught_up {
                break;
            }
        }
        assert_eq!(
            seen.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "bounded polls must deliver all three records"
        );
        match &seen[1].record {
            WalRecord::Write { value, .. } => assert_eq!(value.len(), big.len()),
            other => panic!("wrong record {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_tailer_skips_residue_and_rebinds_to_the_promoted_lineage() {
        // Satellite: the "vanished segment" error path must not fire for
        // old-epoch segments superseded by a promotion — the shipper
        // resubscribes to the new lineage instead.
        let dir = temp_dir("fencejump");
        let old = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        old.append_and_flush(&[write_rec(1, b"pre-a"), write_rec(2, b"pre-b")])
            .unwrap();
        let mut cursor = WalCursor::origin();
        assert_eq!(read_tail(&dir, &mut cursor, 64).unwrap().records.len(), 2);
        let promoted = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        // Residue: the deposed primary's encoded bytes land in the old
        // segment after the promotion scan (the in-flight-write window).
        let mut residue = Vec::new();
        encode_record(2, 0, &write_rec(9, b"resurrect-me"), &mut residue);
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(segment_path(&dir, 0))
                .unwrap();
            file.write_all(&residue).unwrap();
        }
        promoted
            .append_and_flush(&[write_rec(3, b"post-a"), write_rec(4, b"post-b")])
            .unwrap();
        // The parked cursor sits in the old segment; its next poll must
        // skip the stale-epoch record and deliver the new lineage.
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch
                .records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(2, 1), (3, 1)]
        );
        for rec in &batch.records {
            if let WalRecord::Write { value, .. } = &rec.record {
                assert_ne!(&value[..], b"resurrect-me", "residue must never ship");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_healed_away_segment_rebinds_instead_of_erroring() {
        // Promotion healing can delete an old segment outright (when it
        // held nothing but residue).  A cursor still bound there — e.g. a
        // replica resuming from its checkpoint at the fence — must
        // resubscribe to the new lineage, not report "vanished under the
        // cursor".
        let dir = temp_dir("healedaway");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
        for i in 0..4u32 {
            wal.append_and_flush(&[write_rec(i, &[8u8; 48])]).unwrap();
        }
        drop(wal);
        let promoted = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        promoted.append_and_flush(&[write_rec(9, b"next")]).unwrap();
        // A cursor seeking to the fence, physically bound to the first
        // old segment, which then disappears.
        let mut cursor = WalCursor::from_lsn(4);
        let first = list_segments(&dir).unwrap()[0].0;
        cursor.segment = Some(first);
        std::fs::remove_file(segment_path(&dir, first)).unwrap();
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch
                .records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(4, 1)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_lsn_resumes_across_an_epoch_boundary() {
        // Satellite: a restarted replica whose checkpoint LSN lies on
        // either side of a promotion fence must resume cleanly — the old
        // lineage's surviving prefix and the new lineage share one
        // consecutive LSN sequence.
        let dir = temp_dir("seekepoch");
        let old = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        for i in 0..5u32 {
            old.append_and_flush(&[write_rec(i, b"old")]).unwrap();
        }
        let promoted = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        for i in 5..9u32 {
            promoted.append_and_flush(&[write_rec(i, b"new")]).unwrap();
        }
        // Resume from inside the old lineage: pre-fence records 3..5 come
        // from the old segment, 5.. from the new one, consecutively.
        let mut cursor = WalCursor::from_lsn(3);
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch
                .records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(3, 0), (4, 0), (5, 1), (6, 1), (7, 1), (8, 1)]
        );
        // Resume exactly at the fence.
        let mut cursor = WalCursor::from_lsn(5);
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![5, 6, 7, 8]
        );
        // Resume past the fence.
        let mut cursor = WalCursor::from_lsn(7);
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![7, 8]
        );
        assert_eq!(cursor.next_lsn(), 9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_lsn_resumes_across_an_epoch_boundary_with_torn_residue() {
        // Fault injection on the same seek: the old segment additionally
        // ends in a *torn* residue frame (the deposed primary died
        // mid-write).  The seek must still cross the boundary.
        let dir = temp_dir("seektorn");
        let old = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        for i in 0..5u32 {
            old.append_and_flush(&[write_rec(i, b"old")]).unwrap();
        }
        let promoted = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        let mut residue = Vec::new();
        encode_record(5, 0, &write_rec(9, b"torn-residue"), &mut residue);
        residue.truncate(residue.len() - 4);
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(segment_path(&dir, 0))
                .unwrap();
            file.write_all(&residue).unwrap();
        }
        promoted
            .append_and_flush(&[write_rec(5, b"new-5"), write_rec(6, b"new-6")])
            .unwrap();
        let mut cursor = WalCursor::from_lsn(4);
        let batch = read_tail(&dir, &mut cursor, 64).unwrap();
        assert_eq!(
            batch
                .records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(4, 0), (5, 1), (6, 1)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn commit_records_ship_with_their_entries() {
        let dir = temp_dir("commit");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        let commit = WalRecord::Commit {
            entries: vec![CommitEntry {
                tx: TxId(4),
                shards: vec![(0, 9), (1, 3)],
            }],
        };
        wal.append_and_flush(std::slice::from_ref(&commit)).unwrap();
        let mut cursor = WalCursor::origin();
        let batch = read_tail(&dir, &mut cursor, 8).unwrap();
        assert_eq!(batch.records.len(), 1);
        assert_eq!(batch.records[0].record, commit);
    }
}
