//! The write-ahead log: segmented append-only files and the group-append
//! writer.
//!
//! A log directory holds monotonically numbered segment files
//! (`wal-<seq>.seg`), each starting with a 24-byte header (`MVWAL002` +
//! the segment sequence number + the primary epoch it was opened under)
//! followed by framed records ([`crate::record`]).  The [`WalWriter`]
//! appends batches under one mutex, assigns consecutive LSNs, rotates to
//! a fresh segment when the current one exceeds the configured size, and
//! flushes according to the configured [`DurabilityMode`]:
//!
//! * [`DurabilityMode::Buffered`] — `flush` pushes the user-space buffer
//!   into the OS (survives a process crash, not a host crash);
//! * [`DurabilityMode::Fsync`] — `flush` additionally `fsync`s the
//!   segment (survives a host crash).
//!
//! The engine's group-commit drain leader is the only caller of
//! [`WalWriter::flush`], so one commit batch costs exactly one flush (and
//! in fsync mode exactly one fsync) regardless of batch size — durability
//! rides the same amortization as the storage group commit.
//!
//! Opening a log that ends in a torn record (the normal crash shape)
//! truncates the tail back to the last whole record before appending;
//! segments after a corrupt record are discarded, so the on-disk log is
//! always one valid prefix.
//!
//! ## Epochs and fencing
//!
//! Every record is stamped with the **primary epoch** its writer opened
//! the log under, and the directory may carry an epoch marker
//! ([`crate::epoch`]).  [`WalWriter::promote_open`] bumps the epoch,
//! fences older writers (their appends and flushes fail with a
//! recognizable [`std::io::ErrorKind::PermissionDenied`] error, see
//! [`crate::is_fence_error`]), heals any bytes a deposed writer slipped
//! in after the promotion scan, and starts a fresh segment lineage.
//! [`scan_log`] honors the fence: old-lineage records at or past the
//! fence LSN with a stale epoch are reported in [`LogScan::fenced`]
//! rather than delivered, so a deposed primary's late flushes can never
//! resurrect into recovered state.

use crate::epoch::{read_epoch_marker, write_epoch_marker, EpochMarker};
use crate::record::{decode_record, encode_record, WalRecord};
use mvcc_analysis::lock_class;
use mvcc_analysis::lockdep::TrackedMutex;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"MVWAL002";

/// Bytes of segment header (magic + sequence number + primary epoch).
pub const SEGMENT_HEADER: usize = 24;

/// How durable the engine's log is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// No write-ahead log at all (the pre-durability engine).
    #[default]
    Off,
    /// Log appends are flushed to the OS at every commit batch but never
    /// fsynced: commits survive a process crash, not a host crash.
    Buffered,
    /// Every commit batch ends in one fsync: commits survive a host crash.
    Fsync,
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityMode::Off => write!(f, "off"),
            DurabilityMode::Buffered => write!(f, "buffered"),
            DurabilityMode::Fsync => write!(f, "fsync"),
        }
    }
}

impl std::str::FromStr for DurabilityMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(DurabilityMode::Off),
            "buffered" => Ok(DurabilityMode::Buffered),
            "fsync" => Ok(DurabilityMode::Fsync),
            other => Err(format!("unknown durability mode {other:?}")),
        }
    }
}

/// Durability configuration carried by the engine's config.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The logging mode ([`DurabilityMode::Off`] disables everything else).
    pub mode: DurabilityMode,
    /// Directory holding WAL segments and checkpoint files.
    pub dir: PathBuf,
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes.
    pub segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig::off()
    }
}

impl DurabilityConfig {
    /// No durability (the default; all pre-durability behavior).
    pub fn off() -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Off,
            dir: PathBuf::new(),
            segment_bytes: 8 << 20,
        }
    }

    /// OS-buffered logging into `dir`.
    pub fn buffered(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Buffered,
            dir: dir.into(),
            segment_bytes: 8 << 20,
        }
    }

    /// Fsync-per-commit-batch logging into `dir`.
    pub fn fsync(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Fsync,
            dir: dir.into(),
            segment_bytes: 8 << 20,
        }
    }

    /// `true` when a write-ahead log is kept at all.
    pub fn is_on(&self) -> bool {
        self.mode != DurabilityMode::Off
    }
}

/// The path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

/// Lists the segment files under `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    if !dir.exists() {
        return Ok(segments);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// One decoded record with its provenance, yielded by [`scan_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The record's LSN.
    pub lsn: u64,
    /// The primary epoch the record was appended under.
    pub epoch: u64,
    /// The record.
    pub record: WalRecord,
}

/// The outcome of scanning a log directory's valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogScan {
    /// Every valid record, in log order.
    pub records: Vec<ScannedRecord>,
    /// The segment holding the end of the valid prefix (`None` when the
    /// log is empty).
    pub last_segment: Option<u64>,
    /// Byte offset of the end of the valid prefix inside `last_segment`.
    pub valid_len: u64,
    /// `true` when the scan stopped at a torn or corrupt record rather
    /// than the physical end of the log.
    pub truncated_tail: bool,
    /// Segments that lie entirely after the first corruption (unreachable
    /// by recovery; a writer reopening the log deletes them).
    pub orphaned_segments: Vec<u64>,
    /// Fenced residue: `(segment, keep_bytes)` pairs naming bytes a
    /// deposed primary landed at or past the promotion fence inside
    /// old-lineage segments.  The records were skipped; a writer
    /// reopening the log truncates each segment back to `keep_bytes`
    /// (deleting it when nothing but the header would remain).
    pub fenced: Vec<(u64, u64)>,
}

impl LogScan {
    /// LSN the next appended record should get.
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map_or(0, |r| r.lsn + 1)
    }
}

/// Reads the valid prefix of the log under `dir`: every whole,
/// CRC-correct record up to the first torn or corrupt one.  Records past
/// that point — including whole segments — are not trusted (the log's
/// guarantees are prefix-shaped), and are reported as truncated/orphaned.
///
/// When the directory carries an epoch marker with a completed fence,
/// the scan additionally refuses a deposed primary's residue: inside
/// segments older than the fenced lineage, any record at or past the
/// fence LSN carrying a stale epoch (and anything after it) is reported
/// in [`LogScan::fenced`] instead of delivered, and the scan resumes in
/// the new lineage.
pub fn scan_log(dir: &Path) -> io::Result<LogScan> {
    let marker = read_epoch_marker(dir)?;
    let fence = marker.filter(|m| m.has_fence());
    let mut scan = LogScan {
        records: Vec::new(),
        last_segment: None,
        valid_len: 0,
        truncated_tail: false,
        orphaned_segments: Vec::new(),
        fenced: Vec::new(),
    };
    let segments = list_segments(dir)?;
    if let Some(f) = fence {
        if !segments.iter().any(|&(seq, _)| seq >= f.start_segment) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "epoch marker fences into segment {} but no such segment exists",
                    f.start_segment
                ),
            ));
        }
    }
    let mut stopped = false;
    let mut entered_new_lineage = false;
    for (seq, path) in segments {
        if stopped {
            scan.orphaned_segments.push(seq);
            continue;
        }
        let old_lineage = fence.is_some_and(|f| seq < f.start_segment);
        if old_lineage && !scan.fenced.is_empty() {
            // Once residue has been cut, every remaining old-lineage
            // segment is entirely the deposed primary's.
            scan.fenced.push((seq, SEGMENT_HEADER as u64));
            continue;
        }
        if let Some(f) = fence {
            if !old_lineage && !entered_new_lineage {
                entered_new_lineage = true;
                if scan.next_lsn() != f.fence_lsn {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "promotion fence cut at lsn {} but the surviving prefix ends at lsn {}",
                            f.fence_lsn,
                            scan.next_lsn()
                        ),
                    ));
                }
            }
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        scan.last_segment = Some(seq);
        if bytes.len() < SEGMENT_HEADER || &bytes[0..8] != SEGMENT_MAGIC {
            // A header torn mid-write: the segment holds nothing usable.
            scan.valid_len = bytes.len().min(SEGMENT_HEADER) as u64;
            scan.truncated_tail = true;
            stopped = true;
            continue;
        }
        let mut offset = SEGMENT_HEADER;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Ok((consumed, lsn, epoch, record)) => {
                    if old_lineage {
                        // lint: allow(unwrap) — fence presence established by the enclosing branch
                        let f = fence.expect("old_lineage implies a fence");
                        if lsn >= f.fence_lsn && epoch < f.epoch {
                            // A deposed primary's late append landed after
                            // the promotion scan: residue, not log.
                            scan.fenced.push((seq, offset as u64));
                            break;
                        }
                    }
                    scan.records.push(ScannedRecord { lsn, epoch, record });
                    offset += consumed;
                }
                Err(_) => {
                    if old_lineage && fence.is_some_and(|f| scan.next_lsn() >= f.fence_lsn) {
                        // The whole prefix up to the fence survived; a torn
                        // frame past it is the deposed primary's residue.
                        scan.fenced.push((seq, offset as u64));
                    } else {
                        // Torn (`DecodeError::Truncated`) or corrupt — either
                        // way the valid prefix ends here.
                        scan.truncated_tail = true;
                        stopped = true;
                    }
                    break;
                }
            }
        }
        scan.valid_len = offset as u64;
    }
    if let Some(f) = fence {
        if stopped && scan.last_segment.is_some_and(|seq| seq < f.start_segment) {
            // Corruption *before* the fence cut: the committed prefix the
            // promotion certified can no longer be reconstructed, and
            // healing here would orphan (and delete) the entire fenced
            // lineage.  Fail loudly instead.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "log corrupt before the promotion fence (lsn {}); \
                     the certified prefix cannot be reconstructed",
                    f.fence_lsn
                ),
            ));
        }
    }
    Ok(scan)
}

struct WalInner {
    writer: BufWriter<File>,
    segment_seq: u64,
    /// Rotation threshold.
    segment_bytes: u64,
    /// Bytes appended to the current segment (header included).
    segment_bytes_written: u64,
    next_lsn: u64,
    scratch: Vec<u8>,
}

/// Statistics of one append or flush, for the engine's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalReceipt {
    /// Records appended.
    pub records: usize,
    /// Encoded bytes appended.
    pub bytes: u64,
    /// `true` when the flush ended in an fsync.
    pub fsynced: bool,
    /// LSN of the last record this append wrote (`None` for an empty
    /// batch).  A commit batch's single commit record gets exactly this
    /// LSN — it is what a replica router's wait-for-LSN compares against.
    pub last_lsn: Option<u64>,
}

/// The group-append writer over a segmented log directory.
///
/// All methods take `&self`; one internal mutex serializes appends, which
/// is what makes the log a single total order (the engine appends step
/// batches under its admission-lane locks, so per-lane ruling order is
/// preserved end to end).
pub struct WalWriter {
    dir: PathBuf,
    mode: DurabilityMode,
    /// The primary epoch this writer opened the log under; stamped into
    /// every record and segment header.  A marker with a higher epoch
    /// fences this writer.
    epoch: u64,
    inner: TrackedMutex<WalInner>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("epoch", &self.epoch)
            .field("segment_seq", &inner.segment_seq)
            .field("next_lsn", &inner.next_lsn)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Opens (or creates) the log under `dir` for appending.
    ///
    /// An existing log is healed first: the tail is physically truncated
    /// back to the last whole record and any segments past a corruption
    /// are deleted, so appends always extend a valid prefix.  Appending
    /// continues in the last surviving segment with the next LSN.
    pub fn open(dir: &Path, mode: DurabilityMode, segment_bytes: u64) -> io::Result<Self> {
        assert!(
            mode != DurabilityMode::Off,
            "a WalWriter is only built when durability is on"
        );
        std::fs::create_dir_all(dir)?;
        let marker = read_epoch_marker(dir)?;
        if let Some(m) = marker {
            if m.provisional {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "epoch {} promotion is in progress or crashed mid-way; \
                         complete it with promote_open",
                        m.epoch
                    ),
                ));
            }
        }
        let epoch = marker.map_or(0, |m| m.epoch);
        let scan = scan_log(dir)?;
        for seq in &scan.orphaned_segments {
            std::fs::remove_file(segment_path(dir, *seq))?;
        }
        heal_fenced_residue(dir, &scan.fenced)?;
        let (segment_seq, file) = match scan.last_segment {
            Some(seq) => {
                let path = segment_path(dir, seq);
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                let keep = scan.valid_len.max(SEGMENT_HEADER as u64);
                if file.metadata()?.len() > keep || scan.valid_len < SEGMENT_HEADER as u64 {
                    file.set_len(keep)?;
                }
                let mut file = file;
                // A segment whose header itself was torn is rewritten.
                if scan.valid_len < SEGMENT_HEADER as u64 {
                    file.seek(SeekFrom::Start(0))?;
                    write_segment_header(&mut file, seq, epoch)?;
                } else {
                    file.seek(SeekFrom::Start(keep))?;
                }
                (seq, file)
            }
            None => {
                let path = segment_path(dir, 0);
                let mut file = OpenOptions::new()
                    .create_new(true)
                    .read(true)
                    .write(true)
                    .open(&path)?;
                write_segment_header(&mut file, 0, epoch)?;
                if mode == DurabilityMode::Fsync {
                    sync_dir(dir)?;
                }
                (0, file)
            }
        };
        let written = file.metadata()?.len();
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            mode,
            epoch,
            inner: TrackedMutex::new(
                lock_class!("wal.writer"),
                WalInner {
                    writer: BufWriter::new(file),
                    segment_seq,
                    segment_bytes: segment_bytes.max(SEGMENT_HEADER as u64 + 1),
                    segment_bytes_written: written,
                    next_lsn: scan.next_lsn(),
                    scratch: Vec::with_capacity(4096),
                },
            ),
        })
    }

    /// Opens the log under `dir` as the **next primary epoch**: the
    /// failover entry point.
    ///
    /// The promotion protocol is two-phase, crash-safe at every step:
    ///
    /// 1. a *provisional* epoch marker claims `epoch + 1` — from this
    ///    instant every older writer's appends and flushes are refused —
    ///    while still carrying the previous completed fence, so scans
    ///    keep refusing any earlier deposed primary's residue;
    /// 2. the log is scanned and healed exactly like [`WalWriter::open`]
    ///    (orphans deleted, fenced residue truncated, a torn tail cut
    ///    back to the last whole record);
    /// 3. the first segment of the new lineage is created, its header
    ///    stamped with the new epoch, and the *final* marker publishes
    ///    the fence: the healed prefix's next LSN and the new segment's
    ///    sequence number.
    ///
    /// A crash before step 3's marker leaves the provisional one: older
    /// writers stay fenced, readers keep honoring the previous fence, and
    /// the next `promote_open` simply claims the epoch after.  LSNs stay
    /// globally monotone — the new lineage's first record gets exactly
    /// the fence LSN, so checkpoints and replica cursors stay valid
    /// across promotions.
    pub fn promote_open(dir: &Path, mode: DurabilityMode, segment_bytes: u64) -> io::Result<Self> {
        assert!(
            mode != DurabilityMode::Off,
            "a WalWriter is only built when durability is on"
        );
        std::fs::create_dir_all(dir)?;
        let prev = read_epoch_marker(dir)?;
        let new_epoch = prev.map_or(1, |m| m.epoch + 1);
        write_epoch_marker(
            dir,
            &EpochMarker {
                epoch: new_epoch,
                fence_lsn: prev.map_or(u64::MAX, |m| m.fence_lsn),
                start_segment: prev.map_or(u64::MAX, |m| m.start_segment),
                provisional: true,
            },
        )?;
        // Every older writer is now fenced; the log can no longer grow
        // under our feet (modulo the in-flight-write window documented in
        // `crate::epoch`).  Scan and heal it.
        let scan = scan_log(dir)?;
        for seq in &scan.orphaned_segments {
            std::fs::remove_file(segment_path(dir, *seq))?;
        }
        heal_fenced_residue(dir, &scan.fenced)?;
        if let Some(seq) = scan.last_segment {
            let path = segment_path(dir, seq);
            if scan.valid_len < SEGMENT_HEADER as u64 {
                // A torn header holds nothing usable, and the new lineage
                // starts in a fresh segment anyway.
                std::fs::remove_file(&path)?;
            } else {
                let file = OpenOptions::new().write(true).open(&path)?;
                if file.metadata()?.len() > scan.valid_len {
                    file.set_len(scan.valid_len)?;
                    file.sync_all()?;
                }
            }
        }
        let fence_lsn = scan.next_lsn();
        let start_segment = list_segments(dir)?.last().map_or(0, |&(seq, _)| seq + 1);
        let path = segment_path(dir, start_segment);
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        write_segment_header(&mut file, start_segment, new_epoch)?;
        file.sync_all()?;
        // Promotion is rare; make the lineage switch durable regardless of
        // mode before publishing the fence.
        sync_dir(dir)?;
        write_epoch_marker(
            dir,
            &EpochMarker {
                epoch: new_epoch,
                fence_lsn,
                start_segment,
                provisional: false,
            },
        )?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            mode,
            epoch: new_epoch,
            inner: TrackedMutex::new(
                lock_class!("wal.writer"),
                WalInner {
                    writer: BufWriter::new(file),
                    segment_seq: start_segment,
                    segment_bytes: segment_bytes.max(SEGMENT_HEADER as u64 + 1),
                    segment_bytes_written: SEGMENT_HEADER as u64,
                    next_lsn: fence_lsn,
                    scratch: Vec::with_capacity(4096),
                },
            ),
        })
    }

    /// The configured durability mode.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// The primary epoch this writer stamps into its records.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-reads the epoch marker and refuses further work when a newer
    /// epoch has claimed the log (a replica promoted over this writer).
    ///
    /// Called internally before every append and flush; the engine also
    /// calls it at the head of each commit batch so a deposed primary
    /// refuses commits *before* applying their storage effects, not
    /// after.  The error is [`std::io::ErrorKind::PermissionDenied`] and
    /// recognizable via [`crate::is_fence_error`].
    pub fn check_fence(&self) -> io::Result<()> {
        if let Some(m) = read_epoch_marker(&self.dir)? {
            if m.epoch > self.epoch {
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    format!(
                        "WAL writer fenced: epoch {} superseded by epoch {}",
                        self.epoch, m.epoch
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN of the most recently appended record (`None` before the first
    /// append of the log's lifetime).
    pub fn last_lsn(&self) -> Option<u64> {
        let inner = self.inner.lock();
        inner.next_lsn.checked_sub(1)
    }

    /// Appends `records` as one group: consecutive LSNs, one buffered
    /// write, no flush.  Returns the receipt (bytes appended).
    pub fn append_batch(&self, records: &[WalRecord]) -> io::Result<WalReceipt> {
        if records.is_empty() {
            return Ok(WalReceipt::default());
        }
        self.check_fence()?;
        let mut inner = self.inner.lock();
        let mut scratch = std::mem::take(&mut inner.scratch);
        scratch.clear();
        for record in records {
            let lsn = inner.next_lsn;
            inner.next_lsn += 1;
            encode_record(lsn, self.epoch, record, &mut scratch);
        }
        let bytes = scratch.len() as u64;
        let result = inner.writer.write_all(&scratch);
        inner.scratch = scratch;
        result?;
        inner.segment_bytes_written += bytes;
        let last_lsn = inner.next_lsn.checked_sub(1);
        self.maybe_rotate(&mut inner)?;
        Ok(WalReceipt {
            records: records.len(),
            bytes,
            fsynced: false,
            last_lsn,
        })
    }

    /// Flushes everything appended so far per the configured mode:
    /// buffered mode pushes the user-space buffer into the OS, fsync mode
    /// additionally syncs the segment to stable storage.  Returns `true`
    /// when an fsync happened.
    pub fn flush(&self) -> io::Result<bool> {
        self.check_fence()?;
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        if self.mode == DurabilityMode::Fsync {
            inner.writer.get_ref().sync_data()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Appends one group and flushes it, in one critical section: the
    /// group-commit form (one batch = one flush = at most one fsync).
    pub fn append_and_flush(&self, records: &[WalRecord]) -> io::Result<WalReceipt> {
        let mut receipt = self.append_batch(records)?;
        receipt.fsynced = self.flush()?;
        Ok(receipt)
    }

    fn maybe_rotate(&self, inner: &mut WalInner) -> io::Result<()> {
        if inner.segment_bytes_written < inner.segment_bytes {
            return Ok(());
        }
        // Finish the old segment: flush (and fsync if configured) so the
        // prefix property survives the file switch.
        inner.writer.flush()?;
        if self.mode == DurabilityMode::Fsync {
            inner.writer.get_ref().sync_data()?;
        }
        inner.segment_seq += 1;
        let path = segment_path(&self.dir, inner.segment_seq);
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        write_segment_header(&mut file, inner.segment_seq, self.epoch)?;
        if self.mode == DurabilityMode::Fsync {
            // The new segment's directory entry must be as durable as the
            // records about to be fsynced into it.
            sync_dir(&self.dir)?;
        }
        inner.writer = BufWriter::new(file);
        inner.segment_bytes_written = SEGMENT_HEADER as u64;
        Ok(())
    }
}

fn write_segment_header(file: &mut File, seq: u64, epoch: u64) -> io::Result<()> {
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&seq.to_le_bytes())?;
    file.write_all(&epoch.to_le_bytes())
}

/// Physically removes a deposed primary's residue reported by
/// [`scan_log`]: each fenced segment is truncated back to its cut, or
/// deleted outright when nothing but the header would remain.
fn heal_fenced_residue(dir: &Path, fenced: &[(u64, u64)]) -> io::Result<()> {
    for &(seq, keep) in fenced {
        let path = segment_path(dir, seq);
        if keep <= SEGMENT_HEADER as u64 {
            std::fs::remove_file(&path)?;
        } else {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(keep)?;
            file.sync_all()?;
        }
    }
    Ok(())
}

/// Fsyncs a directory so freshly created (or renamed) entries survive a
/// host crash — fsyncing a file's *data* does not make its directory
/// entry durable on ext4/xfs, and a vanished segment would silently
/// truncate the log at the previous one.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommitEntry;
    use mvcc_core::{EntityId, TxId};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh directory under the target tmpdir, unique per test call.
    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mvcc-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_rec(tx: u32, entity: u32, value: &[u8]) -> WalRecord {
        WalRecord::Write {
            tx: TxId(tx),
            entity: EntityId(entity),
            value: bytes::Bytes::copy_from_slice(value),
        }
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let dir = temp_dir("round");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        let records = vec![
            WalRecord::Begin { tx: TxId(1) },
            write_rec(1, 0, b"v1"),
            WalRecord::Commit {
                entries: vec![CommitEntry {
                    tx: TxId(1),
                    shards: vec![(0, 1)],
                }],
            },
        ];
        let receipt = wal.append_and_flush(&records).unwrap();
        assert_eq!(receipt.records, 3);
        assert!(!receipt.fsynced, "buffered mode never fsyncs");
        assert_eq!(wal.last_lsn(), Some(2));
        let scan = scan_log(&dir).unwrap();
        assert!(!scan.truncated_tail);
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.record.clone())
                .collect::<Vec<_>>(),
            records
        );
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_mode_reports_the_fsync() {
        let dir = temp_dir("fsync");
        let wal = WalWriter::open(&dir, DurabilityMode::Fsync, 8 << 20).unwrap();
        let receipt = wal
            .append_and_flush(&[WalRecord::Begin { tx: TxId(1) }])
            .unwrap();
        assert!(receipt.fsynced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_scan_in_order() {
        let dir = temp_dir("rotate");
        // Tiny threshold: every appended batch overflows the segment.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
        for i in 0..10u32 {
            wal.append_and_flush(&[write_rec(i, 0, &[0u8; 48])])
                .unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(
            segments.len() > 1,
            "no rotation at {} segments",
            segments.len()
        );
        assert_eq!(
            segments.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            (0..segments.len() as u64).collect::<Vec<_>>()
        );
        let scan = scan_log(&dir).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.next_lsn(), 10);
        // LSNs stay consecutive across segment boundaries.
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_lsn_sequence() {
        let dir = temp_dir("reopen");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_and_flush(&[write_rec(1, 0, b"a")]).unwrap();
        }
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            assert_eq!(wal.last_lsn(), Some(0));
            wal.append_and_flush(&[write_rec(2, 0, b"b")]).unwrap();
        }
        let scan = scan_log(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].lsn, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_scan_and_healed_on_open() {
        let dir = temp_dir("torn");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_and_flush(&[write_rec(1, 0, b"whole"), write_rec(2, 1, b"torn-soon")])
                .unwrap();
        }
        // Tear the last record: chop 3 bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let scan = scan_log(&dir).unwrap();
        assert!(scan.truncated_tail);
        assert_eq!(scan.records.len(), 1, "only the whole record survives");
        // Re-opening heals the file and appends after the valid prefix.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        assert_eq!(wal.last_lsn(), Some(0));
        wal.append_and_flush(&[write_rec(3, 2, b"after-heal")])
            .unwrap();
        let scan = scan_log(&dir).unwrap();
        assert!(!scan.truncated_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].lsn, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_orphans_later_segments_and_open_removes_them() {
        let dir = temp_dir("orphan");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
            for i in 0..6u32 {
                wal.append_and_flush(&[write_rec(i, 0, &[1u8; 48])])
                    .unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "need several segments");
        // Corrupt a record in the middle segment (flip a payload byte).
        let (_, middle) = &segments[1];
        let mut bytes = std::fs::read(middle).unwrap();
        let flip = SEGMENT_HEADER + FRAME_OVERHEAD_PLUS_ONE;
        bytes[flip] ^= 0xff;
        std::fs::write(middle, &bytes).unwrap();
        let scan = scan_log(&dir).unwrap();
        assert!(scan.truncated_tail);
        assert!(!scan.orphaned_segments.is_empty());
        let surviving = scan.records.len();
        assert!((1..6).contains(&surviving));
        // Open heals: orphaned segments deleted, appends continue.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write_rec(9, 0, b"resume")]).unwrap();
        let rescan = scan_log(&dir).unwrap();
        assert!(!rescan.truncated_tail);
        assert_eq!(rescan.records.len(), surviving + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Offset of the first payload byte after a segment header.
    const FRAME_OVERHEAD_PLUS_ONE: usize = crate::record::FRAME_OVERHEAD + 1;

    #[test]
    fn promote_fences_the_old_writer_and_starts_a_new_lineage() {
        let dir = temp_dir("promote");
        let old = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        old.append_and_flush(&[write_rec(1, 0, b"before")]).unwrap();
        assert_eq!(old.epoch(), 0);
        let new = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        assert_eq!(new.epoch(), 1);
        // The deposed writer is refused before any bytes land.
        let err = old
            .append_and_flush(&[write_rec(2, 0, b"late")])
            .unwrap_err();
        assert!(crate::epoch::is_fence_error(&err), "{err}");
        assert!(old.flush().is_err(), "flush must be fenced too");
        // The new lineage continues the LSN sequence from the fence.
        let receipt = new.append_and_flush(&[write_rec(3, 0, b"after")]).unwrap();
        assert_eq!(receipt.last_lsn, Some(1));
        let scan = scan_log(&dir).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(0, 0), (1, 1)]
        );
        assert!(scan.fenced.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn late_residue_is_fenced_out_of_the_scan_and_healed_on_open() {
        let dir = temp_dir("residue");
        let old = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        old.append_and_flush(&[write_rec(1, 0, b"durable")])
            .unwrap();
        let promoted = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        promoted
            .append_and_flush(&[write_rec(2, 0, b"new-lineage")])
            .unwrap();
        drop(promoted);
        // Simulate the in-flight-write window: the deposed primary's
        // encoded bytes (stale epoch, post-fence LSN) land in its old
        // segment after the promotion scan sampled it.
        let mut residue = Vec::new();
        encode_record(1, 0, &write_rec(9, 0, b"resurrect-me"), &mut residue);
        let mut file = OpenOptions::new()
            .append(true)
            .open(segment_path(&dir, 0))
            .unwrap();
        file.write_all(&residue).unwrap();
        drop(file);
        // The scan skips the residue and keeps the fenced lineage.
        let scan = scan_log(&dir).unwrap();
        assert_eq!(scan.fenced.len(), 1);
        assert_eq!(scan.fenced[0].0, 0);
        assert!(scan.fenced[0].1 > SEGMENT_HEADER as u64);
        assert_eq!(
            scan.records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(0, 0), (1, 1)]
        );
        // Reopening heals the residue physically: zero resurrected bytes.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        assert_eq!(wal.epoch(), 1);
        drop(wal);
        let healed = std::fs::read(segment_path(&dir, 0)).unwrap();
        assert_eq!(healed.len() as u64, scan.fenced[0].1);
        let rescan = scan_log(&dir).unwrap();
        assert!(rescan.fenced.is_empty());
        assert_eq!(rescan.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crashed_promotion_leaves_writers_fenced_until_promote_completes() {
        let dir = temp_dir("provisional");
        let old = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        old.append_and_flush(&[write_rec(1, 0, b"x")]).unwrap();
        // A promotion that crashed between its two marker writes leaves
        // the provisional marker behind.
        crate::epoch::write_epoch_marker(
            &dir,
            &EpochMarker {
                epoch: 1,
                fence_lsn: u64::MAX,
                start_segment: u64::MAX,
                provisional: true,
            },
        )
        .unwrap();
        let err = old.append_and_flush(&[write_rec(2, 0, b"y")]).unwrap_err();
        assert!(crate::epoch::is_fence_error(&err), "{err}");
        // A plain open refuses to adopt a half-done promotion...
        assert!(WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).is_err());
        // ...but promote_open completes it under the next epoch.
        let promoted = WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        assert_eq!(promoted.epoch(), 2);
        let receipt = promoted.append_and_flush(&[write_rec(3, 0, b"z")]).unwrap();
        assert_eq!(receipt.last_lsn, Some(1));
        let scan = scan_log(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_after_promotion_adopts_the_marker_epoch() {
        let dir = temp_dir("adopt");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_and_flush(&[write_rec(1, 0, b"a")]).unwrap();
        }
        {
            let promoted =
                WalWriter::promote_open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            promoted.append_and_flush(&[write_rec(2, 0, b"b")]).unwrap();
        }
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        assert_eq!(wal.epoch(), 1);
        let receipt = wal.append_and_flush(&[write_rec(3, 0, b"c")]).unwrap();
        assert_eq!(receipt.last_lsn, Some(2));
        let scan = scan_log(&dir).unwrap();
        assert_eq!(
            scan.records
                .iter()
                .map(|r| (r.lsn, r.epoch))
                .collect::<Vec<_>>(),
            vec![(0, 0), (1, 1), (2, 1)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_config_constructors() {
        assert!(!DurabilityConfig::off().is_on());
        assert!(DurabilityConfig::buffered("/tmp/x").is_on());
        assert_eq!(
            DurabilityConfig::fsync("/tmp/x").mode,
            DurabilityMode::Fsync
        );
        assert_eq!(
            "buffered".parse::<DurabilityMode>(),
            Ok(DurabilityMode::Buffered)
        );
        assert_eq!("fsync".parse::<DurabilityMode>(), Ok(DurabilityMode::Fsync));
        assert_eq!("off".parse::<DurabilityMode>(), Ok(DurabilityMode::Off));
        assert!("nope".parse::<DurabilityMode>().is_err());
        assert_eq!(DurabilityMode::Fsync.to_string(), "fsync");
    }
}
