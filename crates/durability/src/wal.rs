//! The write-ahead log: segmented append-only files and the group-append
//! writer.
//!
//! A log directory holds monotonically numbered segment files
//! (`wal-<seq>.seg`), each starting with a 16-byte header (`MVWAL001` +
//! the segment sequence number) followed by framed records
//! ([`crate::record`]).  The [`WalWriter`] appends batches under one
//! mutex, assigns consecutive LSNs, rotates to a fresh segment when the
//! current one exceeds the configured size, and flushes according to the
//! configured [`DurabilityMode`]:
//!
//! * [`DurabilityMode::Buffered`] — `flush` pushes the user-space buffer
//!   into the OS (survives a process crash, not a host crash);
//! * [`DurabilityMode::Fsync`] — `flush` additionally `fsync`s the
//!   segment (survives a host crash).
//!
//! The engine's group-commit drain leader is the only caller of
//! [`WalWriter::flush`], so one commit batch costs exactly one flush (and
//! in fsync mode exactly one fsync) regardless of batch size — durability
//! rides the same amortization as the storage group commit.
//!
//! Opening a log that ends in a torn record (the normal crash shape)
//! truncates the tail back to the last whole record before appending;
//! segments after a corrupt record are discarded, so the on-disk log is
//! always one valid prefix.

use crate::record::{decode_record, encode_record, WalRecord};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"MVWAL001";

/// Bytes of segment header (magic + sequence number).
pub const SEGMENT_HEADER: usize = 16;

/// How durable the engine's log is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// No write-ahead log at all (the pre-durability engine).
    #[default]
    Off,
    /// Log appends are flushed to the OS at every commit batch but never
    /// fsynced: commits survive a process crash, not a host crash.
    Buffered,
    /// Every commit batch ends in one fsync: commits survive a host crash.
    Fsync,
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityMode::Off => write!(f, "off"),
            DurabilityMode::Buffered => write!(f, "buffered"),
            DurabilityMode::Fsync => write!(f, "fsync"),
        }
    }
}

impl std::str::FromStr for DurabilityMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(DurabilityMode::Off),
            "buffered" => Ok(DurabilityMode::Buffered),
            "fsync" => Ok(DurabilityMode::Fsync),
            other => Err(format!("unknown durability mode {other:?}")),
        }
    }
}

/// Durability configuration carried by the engine's config.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The logging mode ([`DurabilityMode::Off`] disables everything else).
    pub mode: DurabilityMode,
    /// Directory holding WAL segments and checkpoint files.
    pub dir: PathBuf,
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes.
    pub segment_bytes: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig::off()
    }
}

impl DurabilityConfig {
    /// No durability (the default; all pre-durability behavior).
    pub fn off() -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Off,
            dir: PathBuf::new(),
            segment_bytes: 8 << 20,
        }
    }

    /// OS-buffered logging into `dir`.
    pub fn buffered(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Buffered,
            dir: dir.into(),
            segment_bytes: 8 << 20,
        }
    }

    /// Fsync-per-commit-batch logging into `dir`.
    pub fn fsync(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            mode: DurabilityMode::Fsync,
            dir: dir.into(),
            segment_bytes: 8 << 20,
        }
    }

    /// `true` when a write-ahead log is kept at all.
    pub fn is_on(&self) -> bool {
        self.mode != DurabilityMode::Off
    }
}

/// The path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

/// Lists the segment files under `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    if !dir.exists() {
        return Ok(segments);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            segments.push((seq, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// One decoded record with its provenance, yielded by [`scan_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The record's LSN.
    pub lsn: u64,
    /// The record.
    pub record: WalRecord,
}

/// The outcome of scanning a log directory's valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogScan {
    /// Every valid record, in log order.
    pub records: Vec<ScannedRecord>,
    /// The segment holding the end of the valid prefix (`None` when the
    /// log is empty).
    pub last_segment: Option<u64>,
    /// Byte offset of the end of the valid prefix inside `last_segment`.
    pub valid_len: u64,
    /// `true` when the scan stopped at a torn or corrupt record rather
    /// than the physical end of the log.
    pub truncated_tail: bool,
    /// Segments that lie entirely after the first corruption (unreachable
    /// by recovery; a writer reopening the log deletes them).
    pub orphaned_segments: Vec<u64>,
}

impl LogScan {
    /// LSN the next appended record should get.
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map(|r| r.lsn + 1).unwrap_or(0)
    }
}

/// Reads the valid prefix of the log under `dir`: every whole,
/// CRC-correct record up to the first torn or corrupt one.  Records past
/// that point — including whole segments — are not trusted (the log's
/// guarantees are prefix-shaped), and are reported as truncated/orphaned.
pub fn scan_log(dir: &Path) -> io::Result<LogScan> {
    let mut scan = LogScan {
        records: Vec::new(),
        last_segment: None,
        valid_len: 0,
        truncated_tail: false,
        orphaned_segments: Vec::new(),
    };
    let segments = list_segments(dir)?;
    let mut stopped = false;
    for (seq, path) in segments {
        if stopped {
            scan.orphaned_segments.push(seq);
            continue;
        }
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        scan.last_segment = Some(seq);
        if bytes.len() < SEGMENT_HEADER || &bytes[0..8] != SEGMENT_MAGIC {
            // A header torn mid-write: the segment holds nothing usable.
            scan.valid_len = bytes.len().min(SEGMENT_HEADER) as u64;
            scan.truncated_tail = true;
            stopped = true;
            continue;
        }
        let mut offset = SEGMENT_HEADER;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Ok((consumed, lsn, record)) => {
                    scan.records.push(ScannedRecord { lsn, record });
                    offset += consumed;
                }
                Err(_) => {
                    // Torn (`DecodeError::Truncated`) or corrupt — either
                    // way the valid prefix ends here.
                    scan.truncated_tail = true;
                    stopped = true;
                    break;
                }
            }
        }
        scan.valid_len = offset as u64;
    }
    Ok(scan)
}

struct WalInner {
    writer: BufWriter<File>,
    segment_seq: u64,
    /// Rotation threshold.
    segment_bytes: u64,
    /// Bytes appended to the current segment (header included).
    segment_bytes_written: u64,
    next_lsn: u64,
    scratch: Vec<u8>,
}

/// Statistics of one append or flush, for the engine's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalReceipt {
    /// Records appended.
    pub records: usize,
    /// Encoded bytes appended.
    pub bytes: u64,
    /// `true` when the flush ended in an fsync.
    pub fsynced: bool,
    /// LSN of the last record this append wrote (`None` for an empty
    /// batch).  A commit batch's single commit record gets exactly this
    /// LSN — it is what a replica router's wait-for-LSN compares against.
    pub last_lsn: Option<u64>,
}

/// The group-append writer over a segmented log directory.
///
/// All methods take `&self`; one internal mutex serializes appends, which
/// is what makes the log a single total order (the engine appends step
/// batches under its admission-lane locks, so per-lane ruling order is
/// preserved end to end).
pub struct WalWriter {
    dir: PathBuf,
    mode: DurabilityMode,
    inner: Mutex<WalInner>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("WalWriter")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("segment_seq", &inner.segment_seq)
            .field("next_lsn", &inner.next_lsn)
            .finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Opens (or creates) the log under `dir` for appending.
    ///
    /// An existing log is healed first: the tail is physically truncated
    /// back to the last whole record and any segments past a corruption
    /// are deleted, so appends always extend a valid prefix.  Appending
    /// continues in the last surviving segment with the next LSN.
    pub fn open(dir: &Path, mode: DurabilityMode, segment_bytes: u64) -> io::Result<Self> {
        assert!(
            mode != DurabilityMode::Off,
            "a WalWriter is only built when durability is on"
        );
        std::fs::create_dir_all(dir)?;
        let scan = scan_log(dir)?;
        for seq in &scan.orphaned_segments {
            std::fs::remove_file(segment_path(dir, *seq))?;
        }
        let (segment_seq, file) = match scan.last_segment {
            Some(seq) => {
                let path = segment_path(dir, seq);
                let file = OpenOptions::new().read(true).write(true).open(&path)?;
                let keep = scan.valid_len.max(SEGMENT_HEADER as u64);
                if file.metadata()?.len() > keep || scan.valid_len < SEGMENT_HEADER as u64 {
                    file.set_len(keep)?;
                }
                let mut file = file;
                // A segment whose header itself was torn is rewritten.
                if scan.valid_len < SEGMENT_HEADER as u64 {
                    file.seek(SeekFrom::Start(0))?;
                    write_segment_header(&mut file, seq)?;
                } else {
                    file.seek(SeekFrom::Start(keep))?;
                }
                (seq, file)
            }
            None => {
                let path = segment_path(dir, 0);
                let mut file = OpenOptions::new()
                    .create_new(true)
                    .read(true)
                    .write(true)
                    .open(&path)?;
                write_segment_header(&mut file, 0)?;
                if mode == DurabilityMode::Fsync {
                    sync_dir(dir)?;
                }
                (0, file)
            }
        };
        let written = file.metadata()?.len();
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            mode,
            inner: Mutex::new(WalInner {
                writer: BufWriter::new(file),
                segment_seq,
                segment_bytes: segment_bytes.max(SEGMENT_HEADER as u64 + 1),
                segment_bytes_written: written,
                next_lsn: scan.next_lsn(),
                scratch: Vec::with_capacity(4096),
            }),
        })
    }

    /// The configured durability mode.
    pub fn mode(&self) -> DurabilityMode {
        self.mode
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN of the most recently appended record (`None` before the first
    /// append of the log's lifetime).
    pub fn last_lsn(&self) -> Option<u64> {
        let inner = self.inner.lock();
        inner.next_lsn.checked_sub(1)
    }

    /// Appends `records` as one group: consecutive LSNs, one buffered
    /// write, no flush.  Returns the receipt (bytes appended).
    pub fn append_batch(&self, records: &[WalRecord]) -> io::Result<WalReceipt> {
        if records.is_empty() {
            return Ok(WalReceipt::default());
        }
        let mut inner = self.inner.lock();
        let mut scratch = std::mem::take(&mut inner.scratch);
        scratch.clear();
        for record in records {
            let lsn = inner.next_lsn;
            inner.next_lsn += 1;
            encode_record(lsn, record, &mut scratch);
        }
        let bytes = scratch.len() as u64;
        let result = inner.writer.write_all(&scratch);
        inner.scratch = scratch;
        result?;
        inner.segment_bytes_written += bytes;
        let last_lsn = inner.next_lsn.checked_sub(1);
        self.maybe_rotate(&mut inner)?;
        Ok(WalReceipt {
            records: records.len(),
            bytes,
            fsynced: false,
            last_lsn,
        })
    }

    /// Flushes everything appended so far per the configured mode:
    /// buffered mode pushes the user-space buffer into the OS, fsync mode
    /// additionally syncs the segment to stable storage.  Returns `true`
    /// when an fsync happened.
    pub fn flush(&self) -> io::Result<bool> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        if self.mode == DurabilityMode::Fsync {
            inner.writer.get_ref().sync_data()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Appends one group and flushes it, in one critical section: the
    /// group-commit form (one batch = one flush = at most one fsync).
    pub fn append_and_flush(&self, records: &[WalRecord]) -> io::Result<WalReceipt> {
        let mut receipt = self.append_batch(records)?;
        receipt.fsynced = self.flush()?;
        Ok(receipt)
    }

    fn maybe_rotate(&self, inner: &mut WalInner) -> io::Result<()> {
        if inner.segment_bytes_written < inner.segment_bytes {
            return Ok(());
        }
        // Finish the old segment: flush (and fsync if configured) so the
        // prefix property survives the file switch.
        inner.writer.flush()?;
        if self.mode == DurabilityMode::Fsync {
            inner.writer.get_ref().sync_data()?;
        }
        inner.segment_seq += 1;
        let path = segment_path(&self.dir, inner.segment_seq);
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        write_segment_header(&mut file, inner.segment_seq)?;
        if self.mode == DurabilityMode::Fsync {
            // The new segment's directory entry must be as durable as the
            // records about to be fsynced into it.
            sync_dir(&self.dir)?;
        }
        inner.writer = BufWriter::new(file);
        inner.segment_bytes_written = SEGMENT_HEADER as u64;
        Ok(())
    }
}

fn write_segment_header(file: &mut File, seq: u64) -> io::Result<()> {
    file.write_all(SEGMENT_MAGIC)?;
    file.write_all(&seq.to_le_bytes())
}

/// Fsyncs a directory so freshly created (or renamed) entries survive a
/// host crash — fsyncing a file's *data* does not make its directory
/// entry durable on ext4/xfs, and a vanished segment would silently
/// truncate the log at the previous one.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommitEntry;
    use mvcc_core::{EntityId, TxId};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh directory under the target tmpdir, unique per test call.
    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mvcc-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_rec(tx: u32, entity: u32, value: &[u8]) -> WalRecord {
        WalRecord::Write {
            tx: TxId(tx),
            entity: EntityId(entity),
            value: bytes::Bytes::copy_from_slice(value),
        }
    }

    #[test]
    fn append_flush_scan_round_trip() {
        let dir = temp_dir("round");
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        let records = vec![
            WalRecord::Begin { tx: TxId(1) },
            write_rec(1, 0, b"v1"),
            WalRecord::Commit {
                entries: vec![CommitEntry {
                    tx: TxId(1),
                    shards: vec![(0, 1)],
                }],
            },
        ];
        let receipt = wal.append_and_flush(&records).unwrap();
        assert_eq!(receipt.records, 3);
        assert!(!receipt.fsynced, "buffered mode never fsyncs");
        assert_eq!(wal.last_lsn(), Some(2));
        let scan = scan_log(&dir).unwrap();
        assert!(!scan.truncated_tail);
        assert_eq!(
            scan.records
                .iter()
                .map(|r| r.record.clone())
                .collect::<Vec<_>>(),
            records
        );
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_mode_reports_the_fsync() {
        let dir = temp_dir("fsync");
        let wal = WalWriter::open(&dir, DurabilityMode::Fsync, 8 << 20).unwrap();
        let receipt = wal
            .append_and_flush(&[WalRecord::Begin { tx: TxId(1) }])
            .unwrap();
        assert!(receipt.fsynced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_scan_in_order() {
        let dir = temp_dir("rotate");
        // Tiny threshold: every appended batch overflows the segment.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
        for i in 0..10u32 {
            wal.append_and_flush(&[write_rec(i, 0, &[0u8; 48])])
                .unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(
            segments.len() > 1,
            "no rotation at {} segments",
            segments.len()
        );
        assert_eq!(
            segments.iter().map(|(seq, _)| *seq).collect::<Vec<_>>(),
            (0..segments.len() as u64).collect::<Vec<_>>()
        );
        let scan = scan_log(&dir).unwrap();
        assert_eq!(scan.records.len(), 10);
        assert_eq!(scan.next_lsn(), 10);
        // LSNs stay consecutive across segment boundaries.
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_the_lsn_sequence() {
        let dir = temp_dir("reopen");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_and_flush(&[write_rec(1, 0, b"a")]).unwrap();
        }
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            assert_eq!(wal.last_lsn(), Some(0));
            wal.append_and_flush(&[write_rec(2, 0, b"b")]).unwrap();
        }
        let scan = scan_log(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].lsn, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_scan_and_healed_on_open() {
        let dir = temp_dir("torn");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
            wal.append_and_flush(&[write_rec(1, 0, b"whole"), write_rec(2, 1, b"torn-soon")])
                .unwrap();
        }
        // Tear the last record: chop 3 bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 3).unwrap();
        drop(file);
        let scan = scan_log(&dir).unwrap();
        assert!(scan.truncated_tail);
        assert_eq!(scan.records.len(), 1, "only the whole record survives");
        // Re-opening heals the file and appends after the valid prefix.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        assert_eq!(wal.last_lsn(), Some(0));
        wal.append_and_flush(&[write_rec(3, 2, b"after-heal")])
            .unwrap();
        let scan = scan_log(&dir).unwrap();
        assert!(!scan.truncated_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].lsn, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_orphans_later_segments_and_open_removes_them() {
        let dir = temp_dir("orphan");
        {
            let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 64).unwrap();
            for i in 0..6u32 {
                wal.append_and_flush(&[write_rec(i, 0, &[1u8; 48])])
                    .unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "need several segments");
        // Corrupt a record in the middle segment (flip a payload byte).
        let (_, middle) = &segments[1];
        let mut bytes = std::fs::read(middle).unwrap();
        let flip = SEGMENT_HEADER + FRAME_OVERHEAD_PLUS_ONE;
        bytes[flip] ^= 0xff;
        std::fs::write(middle, &bytes).unwrap();
        let scan = scan_log(&dir).unwrap();
        assert!(scan.truncated_tail);
        assert!(!scan.orphaned_segments.is_empty());
        let surviving = scan.records.len();
        assert!((1..6).contains(&surviving));
        // Open heals: orphaned segments deleted, appends continue.
        let wal = WalWriter::open(&dir, DurabilityMode::Buffered, 8 << 20).unwrap();
        wal.append_and_flush(&[write_rec(9, 0, b"resume")]).unwrap();
        let rescan = scan_log(&dir).unwrap();
        assert!(!rescan.truncated_tail);
        assert_eq!(rescan.records.len(), surviving + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Offset of the first payload byte after a segment header.
    const FRAME_OVERHEAD_PLUS_ONE: usize = crate::record::FRAME_OVERHEAD + 1;

    #[test]
    fn durability_config_constructors() {
        assert!(!DurabilityConfig::off().is_on());
        assert!(DurabilityConfig::buffered("/tmp/x").is_on());
        assert_eq!(
            DurabilityConfig::fsync("/tmp/x").mode,
            DurabilityMode::Fsync
        );
        assert_eq!(
            "buffered".parse::<DurabilityMode>(),
            Ok(DurabilityMode::Buffered)
        );
        assert_eq!("fsync".parse::<DurabilityMode>(), Ok(DurabilityMode::Fsync));
        assert_eq!("off".parse::<DurabilityMode>(), Ok(DurabilityMode::Off));
        assert!("nope".parse::<DurabilityMode>().is_err());
        assert_eq!(DurabilityMode::Fsync.to_string(), "fsync");
    }
}
