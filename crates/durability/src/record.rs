//! The WAL record set and its binary codec.
//!
//! Every record is framed as `[len: u32][crc: u32][payload]` (all integers
//! little-endian), where `payload = [kind: u8][lsn: u64][epoch: u64][body]`
//! and `crc` is the CRC-32 (IEEE) of the payload.  The log sequence number
//! (LSN) is carried explicitly in every record so a checkpoint can name the
//! exact prefix of the log it has already absorbed, independent of segment
//! boundaries.  The *primary epoch* is the fencing token
//! ([`crate::epoch`]): every record names the leadership term of the
//! writer that appended it, so a deposed primary's late appends are
//! identifiable — and rejectable — by every reader, byte for byte.
//!
//! The record set mirrors the engine's events:
//!
//! * [`WalRecord::Begin`] / [`WalRecord::Abort`] — session lifecycle
//!   (informational: recovery treats "no commit record" as aborted either
//!   way, which is what preserves ACA across a crash);
//! * [`WalRecord::Read`] / [`WalRecord::Write`] — admitted steps, appended
//!   in admission-lane ruling order, so the log doubles as the durable
//!   form of the engine's append-only admission history (write records
//!   carry the new version's payload; read records are pure history);
//! * [`WalRecord::Commit`] — one record per group-commit batch: every
//!   member transaction with its per-shard commit timestamps.  This is the
//!   only record kind that makes data durable, and the only one followed
//!   by a flush (one batch = one fsync);
//! * [`WalRecord::Checkpoint`] — a marker that checkpoint `seq` was cut;
//!   the checkpoint *file* (see [`crate::checkpoint`]) carries the state.
//!
//! Decoding is defensive: a short buffer reports
//! [`DecodeError::Truncated`] (a torn tail — the normal crash shape), and
//! any CRC mismatch, unknown kind, oversized length or inconsistent body
//! reports a corruption error.  Recovery treats either as the end of the
//! valid log prefix.

use bytes::Bytes;
use mvcc_core::{EntityId, Step, TxId};
use std::fmt;

/// Upper bound on a single record's payload (defends the decoder against
/// interpreting garbage as a multi-gigabyte length).
pub const MAX_PAYLOAD: u32 = 1 << 26; // 64 MiB

/// Bytes of framing per record (length + CRC).
pub const FRAME_OVERHEAD: usize = 8;

const KIND_BEGIN: u8 = 1;
const KIND_READ: u8 = 2;
const KIND_WRITE: u8 = 3;
const KIND_COMMIT: u8 = 4;
const KIND_ABORT: u8 = 5;
const KIND_CHECKPOINT: u8 = 6;

/// One committed transaction inside a [`WalRecord::Commit`] batch: the
/// transaction plus the commit timestamp it was assigned on every shard it
/// touched (shards keep independent commit counters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitEntry {
    /// The committed transaction.
    pub tx: TxId,
    /// `(shard index, commit timestamp)` per touched shard.
    pub shards: Vec<(u32, u64)>,
}

/// One write-ahead log record (see the module docs for the framing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A session began.
    Begin {
        /// The new transaction.
        tx: TxId,
    },
    /// A read step was admitted.
    Read {
        /// The reading transaction.
        tx: TxId,
        /// The entity read.
        entity: EntityId,
    },
    /// A write step was admitted; the record carries the version payload
    /// (a refcounted [`Bytes`], so capturing it on the engine's hot path
    /// is a pointer bump, not a copy).
    Write {
        /// The writing transaction.
        tx: TxId,
        /// The entity written.
        entity: EntityId,
        /// The new version's value.
        value: Bytes,
    },
    /// A group-commit batch was applied: every member with its per-shard
    /// commit timestamps.
    Commit {
        /// The batch members, in batch order.
        entries: Vec<CommitEntry>,
    },
    /// A session aborted.
    Abort {
        /// The aborted transaction.
        tx: TxId,
    },
    /// Checkpoint `seq` was durably written.
    Checkpoint {
        /// The checkpoint sequence number.
        seq: u64,
    },
}

impl WalRecord {
    /// The admitted step this record represents, if it is a step record.
    pub fn as_step(&self) -> Option<Step> {
        match self {
            WalRecord::Read { tx, entity } => Some(Step::read(*tx, *entity)),
            WalRecord::Write { tx, entity, .. } => Some(Step::write(*tx, *entity)),
            _ => None,
        }
    }
}

/// Why a record failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the record does (a torn tail).
    Truncated,
    /// The stored CRC does not match the payload.
    Crc {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// The payload names a record kind the codec does not know.
    UnknownKind(u8),
    /// The frame declares an implausible payload length.
    Oversized(u32),
    /// The payload is internally inconsistent (bad field lengths).
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::Crc { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            DecodeError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            DecodeError::Oversized(len) => write!(f, "implausible payload length {len}"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &byte in data {
        let idx = (crc ^ u32::from(byte)) & 0xff;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends the framed encoding of `record` (stamped with `lsn` and the
/// writer's primary `epoch`) to `out` and returns the number of bytes
/// written.
pub fn encode_record(lsn: u64, epoch: u64, record: &WalRecord, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    // Reserve the frame header; backfill once the payload is known.
    put_u32(out, 0);
    put_u32(out, 0);
    let payload_start = out.len();
    let kind = match record {
        WalRecord::Begin { .. } => KIND_BEGIN,
        WalRecord::Read { .. } => KIND_READ,
        WalRecord::Write { .. } => KIND_WRITE,
        WalRecord::Commit { .. } => KIND_COMMIT,
        WalRecord::Abort { .. } => KIND_ABORT,
        WalRecord::Checkpoint { .. } => KIND_CHECKPOINT,
    };
    out.push(kind);
    put_u64(out, lsn);
    put_u64(out, epoch);
    match record {
        WalRecord::Begin { tx } => {
            put_u32(out, tx.0);
        }
        WalRecord::Read { tx, entity } => {
            put_u32(out, tx.0);
            put_u32(out, entity.0);
        }
        WalRecord::Write { tx, entity, value } => {
            put_u32(out, tx.0);
            put_u32(out, entity.0);
            put_u32(out, value.len() as u32);
            out.extend_from_slice(value);
        }
        WalRecord::Commit { entries } => {
            put_u32(out, entries.len() as u32);
            for entry in entries {
                put_u32(out, entry.tx.0);
                put_u32(out, entry.shards.len() as u32);
                for &(shard, ts) in &entry.shards {
                    put_u32(out, shard);
                    put_u64(out, ts);
                }
            }
        }
        WalRecord::Abort { tx } => {
            put_u32(out, tx.0);
        }
        WalRecord::Checkpoint { seq } => {
            put_u64(out, *seq);
        }
    }
    let payload_len = (out.len() - payload_start) as u32;
    debug_assert!(payload_len <= MAX_PAYLOAD);
    let crc = crc32(&out[payload_start..]);
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// A little-endian cursor over a payload body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(DecodeError::Malformed("payload too short"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError::Malformed("payload too short"))?;
        self.pos = end;
        // lint: allow(unwrap) — slice length fixed by the on-disk format
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError::Malformed("payload too short"))?;
        self.pos = end;
        // lint: allow(unwrap) — slice length fixed by the on-disk format
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or(DecodeError::Malformed("length overflow"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError::Malformed("payload too short"))?;
        self.pos = end;
        Ok(bytes)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed("trailing bytes in payload"))
        }
    }
}

/// Decodes the record at the head of `buf`.  Returns the number of bytes
/// consumed, the record's LSN, the primary epoch it was written under,
/// and the record itself.
pub fn decode_record(buf: &[u8]) -> Result<(usize, u64, u64, WalRecord), DecodeError> {
    if buf.len() < FRAME_OVERHEAD {
        return Err(DecodeError::Truncated);
    }
    // lint: allow(unwrap) — slice length fixed by the on-disk format
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(DecodeError::Oversized(len));
    }
    // lint: allow(unwrap) — slice length fixed by the on-disk format
    let stored = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let total = FRAME_OVERHEAD + len as usize;
    let payload = buf
        .get(FRAME_OVERHEAD..total)
        .ok_or(DecodeError::Truncated)?;
    let computed = crc32(payload);
    if computed != stored {
        return Err(DecodeError::Crc { stored, computed });
    }
    let mut cur = Cursor::new(payload);
    let kind = cur.u8()?;
    let lsn = cur.u64()?;
    let epoch = cur.u64()?;
    let record = match kind {
        KIND_BEGIN => WalRecord::Begin {
            tx: TxId(cur.u32()?),
        },
        KIND_READ => WalRecord::Read {
            tx: TxId(cur.u32()?),
            entity: EntityId(cur.u32()?),
        },
        KIND_WRITE => {
            let tx = TxId(cur.u32()?);
            let entity = EntityId(cur.u32()?);
            let len = cur.u32()? as usize;
            let value = Bytes::copy_from_slice(cur.bytes(len)?);
            WalRecord::Write { tx, entity, value }
        }
        KIND_COMMIT => {
            let n = cur.u32()? as usize;
            if n > len as usize {
                return Err(DecodeError::Malformed("commit entry count"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let tx = TxId(cur.u32()?);
                let m = cur.u32()? as usize;
                if m > len as usize {
                    return Err(DecodeError::Malformed("commit shard count"));
                }
                let mut shards = Vec::with_capacity(m);
                for _ in 0..m {
                    let shard = cur.u32()?;
                    let ts = cur.u64()?;
                    shards.push((shard, ts));
                }
                entries.push(CommitEntry { tx, shards });
            }
            WalRecord::Commit { entries }
        }
        KIND_ABORT => WalRecord::Abort {
            tx: TxId(cur.u32()?),
        },
        KIND_CHECKPOINT => WalRecord::Checkpoint { seq: cur.u64()? },
        other => return Err(DecodeError::UnknownKind(other)),
    };
    cur.finish()?;
    Ok((total, lsn, epoch, record))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { tx: TxId(1) },
            WalRecord::Read {
                tx: TxId(2),
                entity: EntityId(7),
            },
            WalRecord::Write {
                tx: TxId(3),
                entity: EntityId(0),
                value: Bytes::from_static(b"hello"),
            },
            WalRecord::Write {
                tx: TxId(4),
                entity: EntityId(9),
                value: Bytes::new(),
            },
            WalRecord::Commit {
                entries: vec![
                    CommitEntry {
                        tx: TxId(3),
                        shards: vec![(0, 1), (1, 4)],
                    },
                    CommitEntry {
                        tx: TxId(4),
                        shards: vec![(1, 5)],
                    },
                ],
            },
            WalRecord::Abort { tx: TxId(5) },
            WalRecord::Checkpoint { seq: 12 },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value of "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips() {
        for (i, record) in samples().into_iter().enumerate() {
            let lsn = 100 + i as u64;
            let epoch = i as u64 % 3;
            let mut buf = Vec::new();
            let written = encode_record(lsn, epoch, &record, &mut buf);
            assert_eq!(written, buf.len());
            let (consumed, got_lsn, got_epoch, got) = decode_record(&buf).expect("decodes");
            assert_eq!(consumed, buf.len());
            assert_eq!(got_lsn, lsn);
            assert_eq!(got_epoch, epoch);
            assert_eq!(got, record);
        }
    }

    #[test]
    fn records_concatenate_into_a_stream() {
        let mut buf = Vec::new();
        for (i, record) in samples().iter().enumerate() {
            encode_record(i as u64, 1, record, &mut buf);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < buf.len() {
            let (consumed, lsn, epoch, record) =
                decode_record(&buf[offset..]).expect("stream decodes");
            assert_eq!(lsn, decoded.len() as u64);
            assert_eq!(epoch, 1);
            decoded.push(record);
            offset += consumed;
        }
        assert_eq!(decoded, samples());
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut buf = Vec::new();
        encode_record(
            9,
            0,
            &WalRecord::Write {
                tx: TxId(1),
                entity: EntityId(2),
                value: Bytes::from_static(b"payload"),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let err = decode_record(&buf[..cut]).expect_err("short buffer must not decode");
            assert_eq!(err, DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_bits_fail_the_crc() {
        let mut buf = Vec::new();
        encode_record(3, 0, &WalRecord::Begin { tx: TxId(8) }, &mut buf);
        // Flip one bit in the payload: the CRC catches it.
        for byte in FRAME_OVERHEAD..buf.len() {
            let mut copy = buf.clone();
            copy[byte] ^= 0x10;
            assert!(
                matches!(decode_record(&copy), Err(DecodeError::Crc { .. })),
                "payload byte {byte}"
            );
        }
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        let mut buf = vec![0xffu8; 16];
        buf[0..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_record(&buf),
            Err(DecodeError::Oversized(_))
        ));
    }

    #[test]
    fn unknown_kinds_are_rejected_not_misread() {
        // A record whose payload says kind 99, with a valid CRC.
        let mut payload = vec![99u8];
        payload.extend_from_slice(&7u64.to_le_bytes()); // lsn
        payload.extend_from_slice(&0u64.to_le_bytes()); // epoch
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(decode_record(&buf), Err(DecodeError::UnknownKind(99)));
    }

    #[test]
    fn step_records_expose_their_steps() {
        assert_eq!(
            WalRecord::Read {
                tx: TxId(1),
                entity: EntityId(2)
            }
            .as_step(),
            Some(Step::read(TxId(1), EntityId(2)))
        );
        assert_eq!(
            WalRecord::Write {
                tx: TxId(1),
                entity: EntityId(2),
                value: Bytes::new()
            }
            .as_step(),
            Some(Step::write(TxId(1), EntityId(2)))
        );
        assert_eq!(WalRecord::Begin { tx: TxId(1) }.as_step(), None);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_record(kind: u8, a: u32, b: u32, bytes: Vec<u8>, pairs: Vec<(u32, u64)>) -> WalRecord {
        match kind % 6 {
            0 => WalRecord::Begin { tx: TxId(a) },
            1 => WalRecord::Read {
                tx: TxId(a),
                entity: EntityId(b),
            },
            2 => WalRecord::Write {
                tx: TxId(a),
                entity: EntityId(b),
                value: Bytes::from(bytes),
            },
            3 => {
                // Reinterpret the raw material as a commit batch.
                let entries = pairs
                    .chunks(2)
                    .map(|chunk| CommitEntry {
                        tx: TxId(chunk[0].0),
                        shards: chunk.iter().map(|&(s, ts)| (s % 8, ts)).collect(),
                    })
                    .collect();
                WalRecord::Commit { entries }
            }
            4 => WalRecord::Abort { tx: TxId(a) },
            _ => WalRecord::Checkpoint {
                seq: u64::from(a) << 16 | u64::from(b & 0xffff),
            },
        }
    }

    proptest! {
        /// Codec identity: every record round-trips through the frame,
        /// whatever the payload contents.
        #[test]
        fn encode_decode_identity(
            kind in 0u8..6,
            a in 0u32..u32::MAX,
            b in 0u32..u32::MAX,
            bytes in proptest::collection::vec(0u8..=255, 0..64),
            pairs in proptest::collection::vec((0u32..64, 0u64..1_000_000), 0..8),
            lsn in 0u64..u64::MAX,
            epoch in 0u64..u64::MAX,
        ) {
            let record = arb_record(kind, a, b, bytes, pairs);
            let mut buf = Vec::new();
            encode_record(lsn, epoch, &record, &mut buf);
            let (consumed, got_lsn, got_epoch, got) = decode_record(&buf).expect("round trip");
            prop_assert_eq!(consumed, buf.len());
            prop_assert_eq!(got_lsn, lsn);
            prop_assert_eq!(got_epoch, epoch);
            prop_assert_eq!(got, record);
        }

        /// Corruption rejection: flipping any single bit anywhere in the
        /// frame makes the record undecodable (CRC or frame check) or — if
        /// the flip hits the length field — decodes strictly fewer bytes
        /// than were written.  It never silently yields a *different*
        /// record of the same length.
        #[test]
        fn single_bit_corruption_never_passes_silently(
            kind in 0u8..6,
            a in 0u32..u32::MAX,
            b in 0u32..u32::MAX,
            bytes in proptest::collection::vec(0u8..=255, 0..32),
            pairs in proptest::collection::vec((0u32..64, 0u64..1_000_000), 0..6),
            lsn in 0u64..1_000_000,
            epoch in 0u64..8,
            byte_choice in 0usize..4096,
            bit in 0u8..8,
        ) {
            let record = arb_record(kind, a, b, bytes, pairs);
            let mut buf = Vec::new();
            encode_record(lsn, epoch, &record, &mut buf);
            let byte = byte_choice % buf.len();
            buf[byte] ^= 1 << bit;
            match decode_record(&buf) {
                Err(_) => {}
                Ok((consumed, got_lsn, got_epoch, got)) => {
                    // Only a length-field flip that *shrinks* the frame can
                    // decode, and then the CRC of the shorter payload would
                    // have to collide — accept only the provably-harmless
                    // outcome of consuming a different frame size.
                    prop_assert!(byte < 4, "non-length corruption decoded at byte {byte}");
                    prop_assert!(
                        consumed != buf.len()
                            || (got_lsn, got_epoch, got) != (lsn, epoch, record),
                        "corrupted frame decoded as the original"
                    );
                }
            }
        }
    }
}
