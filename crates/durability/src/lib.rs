//! # mvcc-durability
//!
//! The durability subsystem of the MVCC engine: a write-ahead log,
//! periodic checkpoints, and class-preserving crash recovery.
//!
//! The paper's question is which multiversion histories are admissible
//! (CSR / MVCSR / MVSR); an engine that forgets its history on crash
//! cannot claim any of those guarantees for a real deployment.  This
//! crate makes the engine's admission history and committed state
//! *durable*, and — the part the theory crates get to verify — makes
//! recovery provably stay inside the certified class:
//!
//! * [`record`] — the compact binary WAL record set
//!   (begin / read / write / commit / abort / checkpoint) with per-record
//!   CRC-32 framing and explicit LSNs;
//! * [`wal`] — [`WalWriter`]: monotonically numbered segments with
//!   rotation, group appends, and one flush (at most one fsync) per
//!   group-commit batch ([`DurabilityMode::Buffered`] vs
//!   [`DurabilityMode::Fsync`]);
//! * [`checkpoint`] — snapshot files of the committed store state (with
//!   the GC watermark each was cut at) bounding data replay;
//! * [`recovery`] — [`recover`]: newest checkpoint + log tail → committed
//!   chains, commit counters, and the durable admission history whose
//!   committed projection the offline `mvcc-classify` checkers certify;
//! * [`tail`] — [`read_tail`] over a resumable [`WalCursor`]: the
//!   log-shipping read path (`mvcc-replica`) — whole CRC-valid records
//!   only, parking on cold tails, LSN-continuity checked;
//! * [`epoch`] — primary epochs and the fencing marker: promotion
//!   ([`WalWriter::promote_open`]) bumps the epoch and cuts a fence so a
//!   deposed primary's late appends are refused by the log and skipped by
//!   scans and tailers — the failover half of the recovery story.
//!
//! ## Why recovery preserves the certified class
//!
//! The engine's certifier guarantees that the committed projection of
//! *every prefix* of its admission history lies in its class.  A crash
//! realizes a prefix (the valid log prefix, CRC-truncated at the first
//! torn record), and recovery takes that prefix's committed projection:
//! transactions without a durable commit record are discarded wholesale.
//! Because the engine enforces ACA — no committed transaction ever read
//! an uncommitted version — discarding the losers never invalidates a
//! survivor's reads.  Committed-prefix closure plus ACA is the whole
//! argument, and the end-to-end tests re-check it with the classifiers
//! after every simulated crash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod epoch;
pub mod record;
pub mod recovery;
pub mod tail;
pub mod wal;

pub use checkpoint::{
    latest_checkpoint, read_checkpoint, write_checkpoint, CheckpointData, CommittedVersion,
    ShardCheckpoint,
};
pub use epoch::{is_fence_error, read_epoch_marker, write_epoch_marker, EpochMarker};
pub use record::{crc32, decode_record, encode_record, CommitEntry, DecodeError, WalRecord};
pub use recovery::{recover, RecoveredShard, RecoveredState, RecoveryOptions, RecoveryReport};
pub use tail::{read_tail, TailBatch, WalCursor};
pub use wal::{
    list_segments, scan_log, DurabilityConfig, DurabilityMode, LogScan, ScannedRecord, WalReceipt,
    WalWriter,
};
