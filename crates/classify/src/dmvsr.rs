//! DMVSR: the restricted-model relative of MVSR from \[PK84\], discussed in
//! Section 3 of the paper.
//!
//! \[PK84\] shows that MVSR is polynomial in the *restricted model* in which no
//! transaction writes an entity it has not read.  A schedule in the general
//! model is **DMVSR** if it is MVSR once an appropriate read step is inserted
//! immediately before each "readless write" (a write of an entity the
//! transaction has not read earlier).  The paper notes that MVCSR corresponds
//! to \[PK84\]'s `MRW` class, a superset of DMVSR (`MWW` in their notation);
//! the containment `DMVSR ⊆ MVCSR ⊆ MVSR` is exercised by the tests below
//! and by the Figure 1 census.

use mvcc_core::{Schedule, Step};

/// The "patched" schedule used by the DMVSR definition: a read step
/// `R_i(x)` is inserted immediately before every write `W_i(x)` whose
/// transaction has not read `x` earlier in program order.
pub fn patch_readless_writes(schedule: &Schedule) -> Schedule {
    let mut out: Vec<Step> = Vec::with_capacity(schedule.len());
    // Track, per transaction, the set of entities it has read so far.
    use std::collections::{BTreeSet, HashMap};
    let mut read_so_far: HashMap<mvcc_core::TxId, BTreeSet<mvcc_core::EntityId>> = HashMap::new();
    for &step in schedule.steps() {
        if step.is_write() {
            let seen = read_so_far.entry(step.tx).or_default();
            if !seen.contains(&step.entity) {
                out.push(Step::read(step.tx, step.entity));
                seen.insert(step.entity);
            }
        } else {
            read_so_far.entry(step.tx).or_default().insert(step.entity);
        }
        out.push(step);
    }
    Schedule::from_steps(out)
}

/// `true` iff `schedule` is DMVSR: its readless-write patching is MVSR.
pub fn is_dmvsr(schedule: &Schedule) -> bool {
    crate::mvsr::is_mvsr(&patch_readless_writes(schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::TxId;

    #[test]
    fn patching_inserts_reads_before_blind_writes_only() {
        let s = Schedule::parse("Wa(x) Rb(y) Wb(y) Wb(z)").unwrap();
        let patched = patch_readless_writes(&s);
        // W_a(x) gets a read, W_b(y) does not (B read y already), W_b(z) does.
        assert_eq!(patched.to_string(), "R1(x) W1(x) R2(y) W2(y) R2(z) W2(z)");
    }

    #[test]
    fn patching_is_idempotent_on_restricted_schedules() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(s.tx_system().is_restricted_model());
        assert_eq!(patch_readless_writes(&s).steps(), s.steps());
    }

    #[test]
    fn patched_schedule_is_in_the_restricted_model() {
        let s = Schedule::parse("Wa(x) Wb(x) Wc(y) Rc(x) Wc(x)").unwrap();
        let patched = patch_readless_writes(&s);
        assert!(patched.tx_system().is_restricted_model());
    }

    #[test]
    fn dmvsr_implies_mvcsr_exhaustively() {
        // The paper: DMVSR (= MWW of [PK84]) is contained in MVCSR (= MRW).
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            if is_dmvsr(&s) {
                assert!(crate::mvcsr::is_mvcsr(&s), "DMVSR but not MVCSR: {s}");
            }
        }
    }

    #[test]
    fn dmvsr_is_strictly_weaker_than_mvsr_somewhere() {
        // There exist MVSR schedules that are not DMVSR (patching a blind
        // write can destroy serializability); Figure 1's example (2) is one.
        let s2 = &mvcc_core::examples::figure1()[1].schedule;
        assert!(crate::mvsr::is_mvsr(s2));
        assert!(!is_dmvsr(s2));
    }

    #[test]
    fn serial_restricted_schedules_are_dmvsr() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(is_dmvsr(&s));
    }

    #[test]
    fn section4_pair_members_are_dmvsr() {
        // [PK84] prove DMVSR is not OLS using a pair of (restricted-model)
        // schedules; both members are individually DMVSR.
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        assert!(is_dmvsr(&s));
        assert!(is_dmvsr(&s_prime));
        let _ = TxId(1);
    }
}
