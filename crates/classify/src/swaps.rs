//! The swap characterisation of MVCSR (Theorem 2).
//!
//! Write `s ~ s'` when `s'` is obtained from `s` by switching two *adjacent*
//! steps that do **not** multiversion-conflict (and that belong to different
//! transactions, so the result is still a schedule of the same system), and
//! let `≈` be the transitive closure of `~`.  **Theorem 2**: a schedule is
//! MVCSR iff `s ≈ r` for some serial schedule `r`.
//!
//! [`reachable_by_swaps`] performs the (exponential-state) BFS over `≈` used
//! to validate Theorem 2 on small schedules, and [`swap_distance_to_serial`]
//! reports the length of the shortest swap sequence — the "how far from
//! serial" metric printed by the Theorem 2 table of the experiment harness.

use mvcc_core::conflict::mv_conflicts;
use mvcc_core::{Schedule, Step};
use std::collections::{HashMap, VecDeque};

/// The schedules obtainable from `s` by a single legal switch of adjacent,
/// non-multiversion-conflicting steps of different transactions.
pub fn swap_neighbours(s: &Schedule) -> Vec<Schedule> {
    let mut out = Vec::new();
    for i in 0..s.len().saturating_sub(1) {
        let a = s.steps()[i];
        let b = s.steps()[i + 1];
        if a.tx == b.tx {
            continue;
        }
        if mv_conflicts(&a, &b) {
            // Switching would reverse a multiversion conflict.
            continue;
        }
        if let Some(next) = s.swap_adjacent(i) {
            out.push(next);
        }
    }
    out
}

/// Breadth-first search over `≈` starting from `s`.  Returns, for every
/// reachable schedule, the minimal number of switches needed to reach it.
/// The state space is bounded by the number of interleavings of the
/// transaction system, so this is only for small schedules.
pub fn reachable_by_swaps(s: &Schedule) -> HashMap<Vec<Step>, usize> {
    let mut dist: HashMap<Vec<Step>, usize> = HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(s.steps().to_vec(), 0);
    queue.push_back(s.clone());
    while let Some(current) = queue.pop_front() {
        let d = dist[current.steps()];
        for next in swap_neighbours(&current) {
            if !dist.contains_key(next.steps()) {
                dist.insert(next.steps().to_vec(), d + 1);
                queue.push_back(next);
            }
        }
    }
    dist
}

/// The minimal number of legal switches needed to transform `s` into *some*
/// serial schedule, or `None` if no serial schedule is reachable (by
/// Theorem 2, exactly when `s` is not MVCSR).
pub fn swap_distance_to_serial(s: &Schedule) -> Option<usize> {
    reachable_by_swaps(s)
        .into_iter()
        .filter(|(steps, _)| Schedule::from_steps(steps.clone()).is_serial())
        .map(|(_, d)| d)
        .min()
}

/// Theorem 2 as a predicate: `true` iff some serial schedule is reachable
/// from `s` by legal switches.
pub fn serial_reachable_by_swaps(s: &Schedule) -> bool {
    swap_distance_to_serial(s).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvcsr::is_mvcsr;

    #[test]
    fn serial_schedule_has_distance_zero() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert_eq!(swap_distance_to_serial(&s), Some(0));
    }

    #[test]
    fn one_swap_away_from_serial() {
        // R1(x) R2(y) W1(x): swapping the middle two steps (which do not
        // multiversion-conflict) yields the serial schedule.
        let s = Schedule::parse("Ra(x) Rb(y) Wa(x)").unwrap();
        assert_eq!(swap_distance_to_serial(&s), Some(1));
    }

    #[test]
    fn swap_neighbours_respect_mv_conflicts() {
        // Rb(x) Wa(x) is an MV-conflicting adjacent pair: it may NOT be
        // switched; Wa(x) Rb(x) is not an MV conflict and may be switched.
        let s = Schedule::parse("Rb(x) Wa(x)").unwrap();
        assert!(swap_neighbours(&s).is_empty());
        let t = Schedule::parse("Wa(x) Rb(x)").unwrap();
        assert_eq!(swap_neighbours(&t).len(), 1);
    }

    #[test]
    fn theorem2_agrees_with_theorem1_exhaustively() {
        // For every interleaving of a small system, "a serial schedule is
        // reachable by legal switches" iff "MVCG is acyclic".
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(
                serial_reachable_by_swaps(&s),
                is_mvcsr(&s),
                "Theorem 2 violated on {s}"
            );
        }
    }

    #[test]
    fn non_mvcsr_schedule_reaches_no_serial_schedule() {
        let s1 = &mvcc_core::examples::figure1()[0].schedule;
        assert!(!serial_reachable_by_swaps(s1));
        assert_eq!(swap_distance_to_serial(s1), None);
    }

    #[test]
    fn reachability_distances_are_monotone_under_one_step() {
        let s = Schedule::parse("Ra(x) Rb(y) Wa(y) Wb(x)").unwrap();
        let dist = reachable_by_swaps(&s);
        for next in swap_neighbours(&s) {
            let d = dist[next.steps()];
            assert!(d <= 1, "direct neighbour at distance {d}");
        }
    }
}
