//! The common currency of the NP-complete classifiers: serializing
//! READ-FROM maps.
//!
//! For a schedule `s` of a transaction system `τ` and a *serial order* `r`
//! (a permutation of the transactions of `τ`), the standard version function
//! of the serial schedule induced by `r` determines, for every read step of
//! `τ`, the transaction it reads from.  A serial order is a **serialization**
//! of `s` (in the multiversion sense) iff that induced read-from assignment
//! is *realizable* in `s`: every read can be served the required version,
//! i.e. the required writer's write precedes the read in `s` (the initial
//! version and a transaction's own earlier writes are always available).
//!
//! * `s` is **MVSR** iff it has at least one serialization
//!   (see [`crate::mvsr`]).
//! * `s` is **VSR** iff some serialization's read-from assignment coincides
//!   with the *standard* read-froms of `s` and the final writers also match
//!   (see [`crate::vsr`]).
//! * A set of schedules is **OLS** iff, for every common prefix, the
//!   restrictions of the serializing assignments intersect
//!   (see `mvcc-reductions::ols`).

use mvcc_core::{Schedule, TransactionSystem, TxId, VersionFunction, VersionSource};
use std::collections::HashMap;

/// The read-from assignment induced by running the transaction system
/// serially in order `order`, expressed per read step *position of `s`*.
///
/// Also records, per entity, the final writer under `order` (used by the VSR
/// check, where the final state must match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialReadFroms {
    /// The serial order of transactions.
    pub order: Vec<TxId>,
    /// For each read position of `s`: the version source the serial order
    /// makes that read observe.
    pub read_sources: HashMap<usize, VersionSource>,
    /// For each entity (by id): the last writer under the serial order, or
    /// `None` when nobody writes it.
    pub final_writers: HashMap<mvcc_core::EntityId, Option<TxId>>,
}

impl SerialReadFroms {
    /// Converts this assignment into a full [`VersionFunction`] for `s`
    /// (final reads assigned to the serial order's final writers).
    pub fn to_version_function(&self, s: &Schedule) -> VersionFunction {
        let mut vf = VersionFunction::new();
        for (&pos, &src) in &self.read_sources {
            vf.assign(pos, src);
        }
        for entity in s.entities_accessed() {
            let src = match self.final_writers.get(&entity) {
                Some(Some(tx)) => VersionSource::Tx(*tx),
                _ => VersionSource::Initial,
            };
            vf.assign_final(entity, src);
        }
        vf
    }
}

/// Computes the read-from assignment that the serial order `order` induces
/// on the reads of `s`, without checking realizability.
pub fn serial_read_froms(s: &Schedule, order: &[TxId]) -> SerialReadFroms {
    let sys = s.tx_system();
    serial_read_froms_of_system(s, &sys, order)
}

/// As [`serial_read_froms`], with the transaction system passed explicitly
/// (avoids recomputing it in hot loops).
pub fn serial_read_froms_of_system(
    s: &Schedule,
    sys: &TransactionSystem,
    order: &[TxId],
) -> SerialReadFroms {
    let pos_in_order: HashMap<TxId, usize> =
        order.iter().enumerate().map(|(i, &t)| (t, i)).collect();

    // For every entity, the writers in serial-order position order.
    let mut writers_by_entity: HashMap<mvcc_core::EntityId, Vec<(usize, TxId)>> = HashMap::new();
    for tx in sys.transactions() {
        if let Some(&p) = pos_in_order.get(&tx.id) {
            for e in tx.write_set() {
                writers_by_entity.entry(e).or_default().push((p, tx.id));
            }
        }
    }
    for v in writers_by_entity.values_mut() {
        v.sort();
    }

    // Per-transaction program-order index of each step of `s`.
    let mut step_index_within_tx: HashMap<TxId, usize> = HashMap::new();
    let mut read_sources = HashMap::new();

    for (pos, step) in s.steps().iter().enumerate() {
        let idx = step_index_within_tx.entry(step.tx).or_insert(0);
        let my_index = *idx;
        *idx += 1;
        if !step.is_read() {
            continue;
        }
        // Does the reading transaction itself write the entity earlier in
        // program order?  Then, serially, it reads its own latest version.
        let own_earlier_write = sys
            .get(step.tx)
            .map(|t| {
                t.accesses[..my_index]
                    .iter()
                    .any(|&(a, e)| a.is_write() && e == step.entity)
            })
            .unwrap_or(false);
        let source = if own_earlier_write {
            VersionSource::Tx(step.tx)
        } else {
            // The last transaction strictly before `step.tx` in the serial
            // order that writes the entity.
            let my_order_pos = pos_in_order.get(&step.tx).copied();
            match my_order_pos {
                None => VersionSource::Initial,
                Some(my_pos) => writers_by_entity
                    .get(&step.entity)
                    .and_then(|ws| {
                        ws.iter()
                            .rev()
                            .find(|&&(p, w)| p < my_pos && w != step.tx)
                            .map(|&(_, w)| VersionSource::Tx(w))
                    })
                    .unwrap_or(VersionSource::Initial),
            }
        };
        read_sources.insert(pos, source);
    }

    let mut final_writers = HashMap::new();
    for entity in s.entities_accessed() {
        let w = writers_by_entity
            .get(&entity)
            .and_then(|ws| ws.last().map(|&(_, t)| t));
        final_writers.insert(entity, w);
    }

    SerialReadFroms {
        order: order.to_vec(),
        read_sources,
        final_writers,
    }
}

/// `true` if the read-from assignment `rf` is *realizable* in `s`: every
/// read can actually be served the required version, i.e. the required
/// writer has a write of that entity earlier in `s` (initial versions and a
/// transaction's own earlier writes are always available).
pub fn is_realizable(s: &Schedule, rf: &SerialReadFroms) -> bool {
    for (&pos, &src) in &rf.read_sources {
        let step = s.steps()[pos];
        match src {
            VersionSource::Initial => {}
            VersionSource::Tx(writer) if writer == step.tx => {
                // Own earlier write: guaranteed by program order.
            }
            VersionSource::Tx(writer) => {
                let available = s.steps()[..pos]
                    .iter()
                    .any(|w| w.is_write() && w.entity == step.entity && w.tx == writer);
                if !available {
                    return false;
                }
            }
        }
    }
    true
}

/// Enumerates every serialization of `s`: every permutation of its
/// transactions whose induced read-from assignment is realizable in `s`.
///
/// The search places transactions one at a time and prunes as soon as a
/// placed transaction's reads become unrealizable, which keeps the search
/// far below `n!` on most inputs (but necessarily exponential in the worst
/// case).  Set `limit` to stop early after that many serializations have
/// been found (`None` enumerates all).
pub fn serializations(s: &Schedule, limit: Option<usize>) -> Vec<SerialReadFroms> {
    let sys = s.tx_system();
    let tx_ids = sys.tx_ids();
    let mut out = Vec::new();
    let mut order: Vec<TxId> = Vec::with_capacity(tx_ids.len());
    let mut used = vec![false; tx_ids.len()];
    search(
        s,
        &sys,
        &tx_ids,
        &mut order,
        &mut used,
        &mut out,
        limit,
    );
    out
}

/// Enumerates serializations of `s` whose induced read-from assignment agrees
/// with `required` on every read position `required` mentions.  This is the
/// work-horse of the greedy "maximal" scheduler and of Lemma 1/2 style
/// completability checks: with `limit = Some(1)` it decides, with pruning,
/// whether a prefix with committed read-froms still has a serializable
/// completion.
pub fn serializations_extending(
    s: &Schedule,
    required: &HashMap<usize, VersionSource>,
    limit: Option<usize>,
) -> Vec<SerialReadFroms> {
    serializations_filtered(s, limit, &|pos, src| {
        required.get(&pos).map(|&r| r == src).unwrap_or(true)
    })
}

/// `true` iff `s` has at least one serialization agreeing with `required`.
pub fn has_serialization_extending(
    s: &Schedule,
    required: &HashMap<usize, VersionSource>,
) -> bool {
    !serializations_extending(s, required, Some(1)).is_empty()
}

/// Shared implementation: enumerate serializations whose induced source for
/// every read position satisfies `accept(pos, source)`.
fn serializations_filtered(
    s: &Schedule,
    limit: Option<usize>,
    accept: &dyn Fn(usize, VersionSource) -> bool,
) -> Vec<SerialReadFroms> {
    let sys = s.tx_system();
    let tx_ids = sys.tx_ids();
    let mut out = Vec::new();
    let mut order: Vec<TxId> = Vec::with_capacity(tx_ids.len());
    let mut used = vec![false; tx_ids.len()];
    search_filtered(s, &sys, &tx_ids, &mut order, &mut used, &mut out, limit, accept);
    out
}

#[allow(clippy::too_many_arguments)]
fn search_filtered(
    s: &Schedule,
    sys: &TransactionSystem,
    tx_ids: &[TxId],
    order: &mut Vec<TxId>,
    used: &mut Vec<bool>,
    out: &mut Vec<SerialReadFroms>,
    limit: Option<usize>,
    accept: &dyn Fn(usize, VersionSource) -> bool,
) -> bool {
    if let Some(l) = limit {
        if out.len() >= l {
            return true;
        }
    }
    if order.len() == tx_ids.len() {
        let rf = serial_read_froms_of_system(s, sys, order);
        if is_realizable(s, &rf) && rf.read_sources.iter().all(|(&p, &src)| accept(p, src)) {
            out.push(rf);
        }
        return limit.map(|l| out.len() >= l).unwrap_or(false);
    }
    for (i, &tx) in tx_ids.iter().enumerate() {
        if used[i] {
            continue;
        }
        order.push(tx);
        used[i] = true;
        if partial_realizable(s, sys, order) && partial_accepts(s, sys, order, accept) {
            let done = search_filtered(s, sys, tx_ids, order, used, out, limit, accept);
            if done {
                used[i] = false;
                order.pop();
                return true;
            }
        }
        used[i] = false;
        order.pop();
    }
    false
}

/// Checks that the determined reads (those of already-placed transactions)
/// satisfy the acceptance predicate.
fn partial_accepts(
    s: &Schedule,
    sys: &TransactionSystem,
    partial: &[TxId],
    accept: &dyn Fn(usize, VersionSource) -> bool,
) -> bool {
    let rf = serial_read_froms_of_system(s, sys, partial);
    let placed: std::collections::BTreeSet<TxId> = partial.iter().copied().collect();
    rf.read_sources.iter().all(|(&pos, &src)| {
        let tx = s.steps()[pos].tx;
        !placed.contains(&tx) || accept(pos, src)
    })
}

fn search(
    s: &Schedule,
    sys: &TransactionSystem,
    tx_ids: &[TxId],
    order: &mut Vec<TxId>,
    used: &mut Vec<bool>,
    out: &mut Vec<SerialReadFroms>,
    limit: Option<usize>,
) -> bool {
    if let Some(l) = limit {
        if out.len() >= l {
            return true;
        }
    }
    if order.len() == tx_ids.len() {
        let rf = serial_read_froms_of_system(s, sys, order);
        if is_realizable(s, &rf) {
            out.push(rf);
        }
        return limit.map(|l| out.len() >= l).unwrap_or(false);
    }
    for (i, &tx) in tx_ids.iter().enumerate() {
        if used[i] {
            continue;
        }
        order.push(tx);
        used[i] = true;
        // Prune: the reads of the transaction just placed are now fully
        // determined (only earlier transactions can serve them); check
        // realizability of those reads.
        if partial_realizable(s, sys, order) {
            let done = search(s, sys, tx_ids, order, used, out, limit);
            if done {
                used[i] = false;
                order.pop();
                return true;
            }
        }
        used[i] = false;
        order.pop();
    }
    false
}

/// Checks realizability of the reads of transactions already placed in the
/// partial order (their sources cannot change as more transactions are
/// appended).
fn partial_realizable(s: &Schedule, sys: &TransactionSystem, partial: &[TxId]) -> bool {
    let rf = serial_read_froms_of_system(s, sys, partial);
    let placed: std::collections::BTreeSet<TxId> = partial.iter().copied().collect();
    for (&pos, &src) in &rf.read_sources {
        let step = s.steps()[pos];
        if !placed.contains(&step.tx) {
            continue;
        }
        match src {
            VersionSource::Initial => {}
            VersionSource::Tx(writer) if writer == step.tx => {}
            VersionSource::Tx(writer) => {
                let available = s.steps()[..pos]
                    .iter()
                    .any(|w| w.is_write() && w.entity == step.entity && w.tx == writer);
                if !available {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::{EntityId, Schedule};

    #[test]
    fn serial_read_froms_of_a_simple_chain() {
        // A writes x, B reads it. Order AB: B <- A; order BA: B <- initial.
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        let ab = serial_read_froms(&s, &[TxId(1), TxId(2)]);
        assert_eq!(ab.read_sources[&1], VersionSource::Tx(TxId(1)));
        assert_eq!(ab.final_writers[&EntityId(0)], Some(TxId(1)));
        let ba = serial_read_froms(&s, &[TxId(2), TxId(1)]);
        assert_eq!(ba.read_sources[&1], VersionSource::Initial);
    }

    #[test]
    fn own_write_takes_priority_in_serial_order() {
        // A: R(x) W(x) R(x): the second read observes A's own write no
        // matter where other writers sit in the serial order.
        let s = Schedule::parse("Ra(x) Wa(x) Wb(x) Ra(x)").unwrap();
        let rf = serial_read_froms(&s, &[TxId(2), TxId(1)]);
        assert_eq!(rf.read_sources[&0], VersionSource::Tx(TxId(2)), "first read sees B");
        assert_eq!(rf.read_sources[&3], VersionSource::Tx(TxId(1)), "second read sees own write");
    }

    #[test]
    fn realizability_requires_the_writer_to_have_written_already() {
        let s = Schedule::parse("Rb(x) Wa(x)").unwrap();
        // Serial order AB would make B read from A, but A's write comes after
        // the read in s: not realizable ("a read that arrived too early").
        let ab = serial_read_froms(&s, &[TxId(1), TxId(2)]);
        assert!(!is_realizable(&s, &ab));
        // Serial order BA has B read the initial version: realizable.
        let ba = serial_read_froms(&s, &[TxId(2), TxId(1)]);
        assert!(is_realizable(&s, &ba));
    }

    #[test]
    fn serializations_of_the_non_mvsr_example_are_empty() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(serializations(&s, None).is_empty());
    }

    #[test]
    fn serializations_of_a_serial_schedule_include_its_own_order() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(y)").unwrap();
        let all = serializations(&s, None);
        assert!(all.iter().any(|rf| rf.order == vec![TxId(1), TxId(2)]));
    }

    #[test]
    fn limit_stops_early() {
        let s = Schedule::parse("Ra(x) Wb(y) Rc(z)").unwrap();
        // No conflicts at all: all 6 permutations serialize.
        assert_eq!(serializations(&s, None).len(), 6);
        assert_eq!(serializations(&s, Some(2)).len(), 2);
    }

    #[test]
    fn version_function_conversion_is_valid() {
        let s = Schedule::parse("Wa(x) Rb(x) Wb(y)").unwrap();
        let all = serializations(&s, None);
        for rf in &all {
            let vf = rf.to_version_function(&s);
            assert!(vf.validate(&s).is_ok(), "order {:?}", rf.order);
        }
    }

    #[test]
    fn extending_search_respects_required_assignments() {
        use std::collections::HashMap;
        let s = Schedule::parse("Wa(x) Rb(x) Wb(y) Ra(y)").unwrap();
        // Require R_b(x) (position 1) to read the initial version: only the
        // B-before-A serialization remains, and it also fixes R_a(y).
        let mut req = HashMap::new();
        req.insert(1usize, VersionSource::Initial);
        let found = serializations_extending(&s, &req, None);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].order, vec![TxId(2), TxId(1)]);
        assert!(has_serialization_extending(&s, &req));

        // Requiring an impossible assignment yields nothing.
        let mut impossible = HashMap::new();
        impossible.insert(1usize, VersionSource::Tx(TxId(2)));
        assert!(!has_serialization_extending(&s, &impossible));
    }

    #[test]
    fn extending_search_with_empty_requirements_matches_plain_enumeration() {
        use std::collections::HashMap;
        let s = Schedule::parse("Wa(x) Rb(x) Rc(y) Wb(y) Wc(x)").unwrap();
        let plain = serializations(&s, None).len();
        let filtered = serializations_extending(&s, &HashMap::new(), None).len();
        assert_eq!(plain, filtered);
    }

    #[test]
    fn section4_schedules_have_unique_serializations() {
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let ser_s = serializations(&s, None);
        let ser_sp = serializations(&s_prime, None);
        assert_eq!(ser_s.len(), 1, "s serializes only as A B");
        assert_eq!(ser_s[0].order, vec![TxId(1), TxId(2)]);
        assert_eq!(ser_sp.len(), 1, "s' serializes only as B A");
        assert_eq!(ser_sp[0].order, vec![TxId(2), TxId(1)]);
        // And they disagree on what R_B(x) (position 2 in both) must read.
        assert_ne!(ser_s[0].read_sources[&2], ser_sp[0].read_sources[&2]);
    }
}
