//! The common currency of the NP-complete classifiers: serializing
//! READ-FROM maps.
//!
//! For a schedule `s` of a transaction system `τ` and a *serial order* `r`
//! (a permutation of the transactions of `τ`), the standard version function
//! of the serial schedule induced by `r` determines, for every read step of
//! `τ`, the transaction it reads from.  A serial order is a **serialization**
//! of `s` (in the multiversion sense) iff that induced read-from assignment
//! is *realizable* in `s`: every read can be served the required version,
//! i.e. the required writer's write precedes the read in `s` (the initial
//! version and a transaction's own earlier writes are always available).
//!
//! * `s` is **MVSR** iff it has at least one serialization
//!   (see [`crate::mvsr`]).
//! * `s` is **VSR** iff some serialization's read-from assignment coincides
//!   with the *standard* read-froms of `s` and the final writers also match
//!   (see [`crate::vsr`]).
//! * A set of schedules is **OLS** iff, for every common prefix, the
//!   restrictions of the serializing assignments intersect
//!   (see `mvcc-reductions::ols`).

use mvcc_core::{Schedule, TransactionSystem, TxId, VersionFunction, VersionSource};
use std::collections::{BTreeMap, HashMap};

/// The read-from assignment induced by running the transaction system
/// serially in order `order`, expressed per read step *position of `s`*.
///
/// Also records, per entity, the final writer under `order` (used by the VSR
/// check, where the final state must match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialReadFroms {
    /// The serial order of transactions.
    pub order: Vec<TxId>,
    /// For each read position of `s`: the version source the serial order
    /// makes that read observe.
    pub read_sources: HashMap<usize, VersionSource>,
    /// For each entity (by id): the last writer under the serial order, or
    /// `None` when nobody writes it.
    pub final_writers: HashMap<mvcc_core::EntityId, Option<TxId>>,
}

impl SerialReadFroms {
    /// Converts this assignment into a full [`VersionFunction`] for `s`
    /// (final reads assigned to the serial order's final writers).
    pub fn to_version_function(&self, s: &Schedule) -> VersionFunction {
        let mut vf = VersionFunction::new();
        for (&pos, &src) in &self.read_sources {
            vf.assign(pos, src);
        }
        for entity in s.entities_accessed() {
            let src = match self.final_writers.get(&entity) {
                Some(Some(tx)) => VersionSource::Tx(*tx),
                _ => VersionSource::Initial,
            };
            vf.assign_final(entity, src);
        }
        vf
    }
}

/// Computes the read-from assignment that the serial order `order` induces
/// on the reads of `s`, without checking realizability.
pub fn serial_read_froms(s: &Schedule, order: &[TxId]) -> SerialReadFroms {
    let sys = s.tx_system();
    serial_read_froms_of_system(s, &sys, order)
}

/// As [`serial_read_froms`], with the transaction system passed explicitly
/// (avoids recomputing it in hot loops).
pub fn serial_read_froms_of_system(
    s: &Schedule,
    sys: &TransactionSystem,
    order: &[TxId],
) -> SerialReadFroms {
    let pos_in_order: HashMap<TxId, usize> =
        order.iter().enumerate().map(|(i, &t)| (t, i)).collect();

    // For every entity, the writers in serial-order position order.
    let mut writers_by_entity: HashMap<mvcc_core::EntityId, Vec<(usize, TxId)>> = HashMap::new();
    for tx in sys.transactions() {
        if let Some(&p) = pos_in_order.get(&tx.id) {
            for e in tx.write_set() {
                writers_by_entity.entry(e).or_default().push((p, tx.id));
            }
        }
    }
    for v in writers_by_entity.values_mut() {
        v.sort();
    }

    // Per-transaction program-order index of each step of `s`.
    let mut step_index_within_tx: HashMap<TxId, usize> = HashMap::new();
    let mut read_sources = HashMap::new();

    for (pos, step) in s.steps().iter().enumerate() {
        let idx = step_index_within_tx.entry(step.tx).or_insert(0);
        let my_index = *idx;
        *idx += 1;
        if !step.is_read() {
            continue;
        }
        // Does the reading transaction itself write the entity earlier in
        // program order?  Then, serially, it reads its own latest version.
        let own_earlier_write = sys.get(step.tx).is_some_and(|t| {
            t.accesses[..my_index]
                .iter()
                .any(|&(a, e)| a.is_write() && e == step.entity)
        });
        let source = if own_earlier_write {
            VersionSource::Tx(step.tx)
        } else {
            // The last transaction strictly before `step.tx` in the serial
            // order that writes the entity.
            let my_order_pos = pos_in_order.get(&step.tx).copied();
            match my_order_pos {
                None => VersionSource::Initial,
                Some(my_pos) => writers_by_entity
                    .get(&step.entity)
                    .and_then(|ws| {
                        ws.iter()
                            .rev()
                            .find(|&&(p, w)| p < my_pos && w != step.tx)
                            .map(|&(_, w)| VersionSource::Tx(w))
                    })
                    .unwrap_or(VersionSource::Initial),
            }
        };
        read_sources.insert(pos, source);
    }

    let mut final_writers = HashMap::new();
    for entity in s.entities_accessed() {
        let w = writers_by_entity
            .get(&entity)
            .and_then(|ws| ws.last().map(|&(_, t)| t));
        final_writers.insert(entity, w);
    }

    SerialReadFroms {
        order: order.to_vec(),
        read_sources,
        final_writers,
    }
}

/// `true` if the read-from assignment `rf` is *realizable* in `s`: every
/// read can actually be served the required version, i.e. the required
/// writer has a write of that entity earlier in `s` (initial versions and a
/// transaction's own earlier writes are always available).
pub fn is_realizable(s: &Schedule, rf: &SerialReadFroms) -> bool {
    for (&pos, &src) in &rf.read_sources {
        let step = s.steps()[pos];
        match src {
            VersionSource::Initial => {}
            VersionSource::Tx(writer) if writer == step.tx => {
                // Own earlier write: guaranteed by program order.
            }
            VersionSource::Tx(writer) => {
                let available = s.steps()[..pos]
                    .iter()
                    .any(|w| w.is_write() && w.entity == step.entity && w.tx == writer);
                if !available {
                    return false;
                }
            }
        }
    }
    true
}

/// Enumerates every serialization of `s`: every permutation of its
/// transactions whose induced read-from assignment is realizable in `s`.
///
/// The search places transactions one at a time and prunes as soon as a
/// placed transaction's reads become unrealizable, which keeps the search
/// far below `n!` on most inputs (but necessarily exponential in the worst
/// case).  Set `limit` to stop early after that many serializations have
/// been found (`None` enumerates all).
pub fn serializations(s: &Schedule, limit: Option<usize>) -> Vec<SerialReadFroms> {
    serializations_filtered(s, limit, &|_, _| true)
}

/// Enumerates serializations of `s` whose induced read-from assignment agrees
/// with `required` on every read position `required` mentions.  This is the
/// work-horse of the greedy "maximal" scheduler and of Lemma 1/2 style
/// completability checks: with `limit = Some(1)` it decides, with pruning,
/// whether a prefix with committed read-froms still has a serializable
/// completion.
pub fn serializations_extending(
    s: &Schedule,
    required: &HashMap<usize, VersionSource>,
    limit: Option<usize>,
) -> Vec<SerialReadFroms> {
    let sys = s.tx_system();
    let accept = |pos: usize, src: VersionSource| required.get(&pos).map_or(true, |&r| r == src);
    let mut engine = SearchEngine::build(s, &sys, limit, &accept);
    engine.apply_required(required);
    if engine.infeasible {
        return Vec::new();
    }
    let mut order = Vec::with_capacity(engine.txs.len());
    let mut last_writer = BTreeMap::new();
    engine.dfs(&mut order, 0, &mut last_writer);
    engine.out
}

/// `true` iff `s` has at least one serialization agreeing with `required`.
pub fn has_serialization_extending(s: &Schedule, required: &HashMap<usize, VersionSource>) -> bool {
    !serializations_extending(s, required, Some(1)).is_empty()
}

/// As [`has_serialization_extending`], but giving up after `node_budget`
/// search nodes: `Some(answer)` when the search settled the question in
/// budget, `None` when it ran out.  Lets callers with many candidate maps
/// probe them all cheaply first (a feasible map is usually found in a
/// handful of nodes, while a refutation may need exhaustive search) and fall
/// back to full searches only when every probe was inconclusive.
pub fn has_serialization_extending_budgeted(
    s: &Schedule,
    required: &HashMap<usize, VersionSource>,
    node_budget: u64,
) -> Option<bool> {
    let sys = s.tx_system();
    let accept = |pos: usize, src: VersionSource| required.get(&pos).map_or(true, |&r| r == src);
    let mut engine = SearchEngine::build(s, &sys, Some(1), &accept);
    engine.apply_required(required);
    if engine.infeasible {
        return Some(false);
    }
    engine.budget = node_budget;
    let mut order = Vec::with_capacity(engine.txs.len());
    let mut last_writer = BTreeMap::new();
    engine.dfs(&mut order, 0, &mut last_writer);
    if !engine.out.is_empty() {
        Some(true)
    } else if engine.budget_exhausted {
        None
    } else {
        Some(false)
    }
}

/// Enumerates the distinct restrictions to the first `prefix_len` steps of
/// the read-from assignments induced by the serializations of `s` — without
/// enumerating the serializations themselves.
///
/// The serializations of a schedule can be factorially many (any group of
/// commuting transactions permutes freely), but their *restrictions* to a
/// prefix are few: one per achievable assignment of sources to the prefix's
/// reads.  The search explores serial orders only until every transaction
/// reading inside the prefix has been placed (at which point the restriction
/// is fully determined), validates each *new* restriction with a single
/// memoized completability check, and dedups revisited search states.  This
/// is what makes the OLS checker of `mvcc-reductions` feasible on
/// Theorem 4/5 instances whose transaction count rules out enumeration.
///
/// The result is empty iff `s` has no serialization at all (i.e. `s` is not
/// MVSR); a schedule with no reads in the prefix yields the singleton set
/// containing the empty restriction.
pub fn achievable_prefix_restrictions(
    s: &Schedule,
    prefix_len: usize,
) -> std::collections::BTreeSet<std::collections::BTreeMap<usize, VersionSource>> {
    achievable_prefix_restrictions_bounded(s, prefix_len, None)
}

/// As [`achievable_prefix_restrictions`], stopping after `max` distinct
/// restrictions have been found (useful when the caller only needs to know
/// whether there are zero, one, or several).
pub fn achievable_prefix_restrictions_bounded(
    s: &Schedule,
    prefix_len: usize,
    max: Option<usize>,
) -> std::collections::BTreeSet<std::collections::BTreeMap<usize, VersionSource>> {
    let sys = s.tx_system();
    let accept = |_: usize, _: VersionSource| true;
    let mut engine = SearchEngine::build(s, &sys, None, &accept);
    let prefix_len = prefix_len.min(s.len());

    if engine.txs.len() > 128 {
        // Beyond the bitmask the dedup machinery does not apply; fall back
        // to projecting plain enumeration (instances this big are out of
        // reach for every exact NP checker in this crate anyway).  `max` is
        // honored with a growing enumeration limit, so a small bound stops
        // long before the (potentially factorial) full enumeration.
        let mut limit = max.unwrap_or(usize::MAX).max(1);
        loop {
            let sers = serializations(
                s,
                if limit == usize::MAX {
                    None
                } else {
                    Some(limit)
                },
            );
            let exhausted = sers.len() < limit;
            let out: std::collections::BTreeSet<_> = sers
                .into_iter()
                .map(|rf| {
                    rf.read_sources
                        .iter()
                        .filter(|(&pos, _)| pos < prefix_len)
                        .map(|(&pos, &src)| (pos, src))
                        .collect()
                })
                .collect();
            let satisfied = max.is_some_and(|m| out.len() >= m);
            if exhausted || satisfied {
                return out;
            }
            limit = limit.saturating_mul(2);
        }
    }

    // Transactions that read inside the prefix: the restriction is fully
    // determined exactly when all of them have been placed.
    let readers_remaining = engine
        .txs
        .iter()
        .filter(|t| t.reads.iter().any(|&(pos, _, _)| pos < prefix_len))
        .count();

    let mut out = std::collections::BTreeSet::new();
    let mut visited = std::collections::HashSet::new();
    let mut last_writer = BTreeMap::new();
    let mut restriction = BTreeMap::new();
    engine.restriction_dfs(
        prefix_len,
        readers_remaining,
        &mut visited,
        0,
        0,
        &mut last_writer,
        &mut restriction,
        &mut out,
        max,
    );
    out
}

/// Shared implementation: enumerate serializations whose induced source for
/// every read position satisfies `accept(pos, source)`.
///
/// The search places transactions one at a time.  Placing a transaction
/// fully determines the sources of *its* reads (only the already-placed
/// transactions can serve them), so each placement is checked incrementally
/// in time proportional to that transaction's reads.  Whether a partial
/// order can still be completed depends only on (a) the *set* of placed
/// transactions and (b) the last placed writer of each entity — so search
/// states that failed are memoized on exactly that signature, which prunes
/// the factorial thrash on reduction-scale instances (Theorems 4–6 emit one
/// transaction per polygraph node).
fn serializations_filtered(
    s: &Schedule,
    limit: Option<usize>,
    accept: &dyn Fn(usize, VersionSource) -> bool,
) -> Vec<SerialReadFroms> {
    let sys = s.tx_system();
    let mut engine = SearchEngine::build(s, &sys, limit, accept);
    let mut order = Vec::with_capacity(engine.txs.len());
    let mut last_writer = BTreeMap::new();
    engine.dfs(&mut order, 0, &mut last_writer);
    engine.out
}

struct TxPlacement {
    id: TxId,
    /// Reads in program order: (schedule position, entity, reads own
    /// earlier write).
    reads: Vec<(usize, mvcc_core::EntityId, bool)>,
    writes: Vec<mvcc_core::EntityId>,
    /// For each read without an own earlier write: (schedule position,
    /// entity, bitmask of transactions whose write of the entity precedes
    /// the read in `s`).  Used by the forward check.
    open_reads: Vec<(usize, mvcc_core::EntityId, u128)>,
    /// Reads of this transaction pinned by a `required` map (see
    /// [`SearchEngine::apply_required`]): (entity, required source).
    required_reads: Vec<(mvcc_core::EntityId, VersionSource)>,
}

struct SearchEngine<'a> {
    s: &'a Schedule,
    sys: &'a TransactionSystem,
    txs: Vec<TxPlacement>,
    first_write: HashMap<(mvcc_core::EntityId, TxId), usize>,
    accept: &'a dyn Fn(usize, VersionSource) -> bool,
    limit: Option<usize>,
    out: Vec<SerialReadFroms>,
    /// States (placed set, last writer per entity) with no acceptable
    /// completion.  Only populated while the transaction count fits the
    /// bitmask; beyond that the search still runs, just without memoization.
    dead: std::collections::HashSet<(u128, Vec<(mvcc_core::EntityId, TxId)>)>,
    /// Index of each transaction in `txs` (for the required-read check).
    tx_index: HashMap<TxId, usize>,
    /// Hard precedence constraints derived from a `required` map:
    /// `pred[i]` is the set of transactions that must precede `txs[i]` in
    /// every acceptable serial order.  Empty unless `apply_required` ran.
    pred: Vec<u128>,
    /// Set when the precedence constraints are cyclic: no serial order can
    /// satisfy the `required` map at all.
    infeasible: bool,
    /// Remaining search-node budget (`u64::MAX` = unbounded).  When it runs
    /// out the search unwinds without an answer and sets
    /// `budget_exhausted`; dead-state memos recorded so far stay valid.
    budget: u64,
    /// Whether the last run was cut short by the node budget.
    budget_exhausted: bool,
}

/// Outcome of a search subtree.
enum Dfs {
    /// The limit was reached; unwind immediately.
    Stop,
    /// At least one serialization was emitted below this node.
    FoundSome,
    /// The subtree was exhausted without emitting anything.
    Nothing,
}

impl<'a> SearchEngine<'a> {
    /// Prepares the placement tables for `s`: per-transaction reads aligned
    /// with schedule positions, write sets, earliest-write positions and the
    /// forward-check availability masks.
    fn build(
        s: &'a Schedule,
        sys: &'a TransactionSystem,
        limit: Option<usize>,
        accept: &'a dyn Fn(usize, VersionSource) -> bool,
    ) -> Self {
        let tx_ids = sys.tx_ids();

        // Per-transaction placement info, aligning program order with
        // schedule positions.
        let mut positions_of_tx: HashMap<TxId, Vec<usize>> = HashMap::new();
        for (pos, step) in s.steps().iter().enumerate() {
            positions_of_tx.entry(step.tx).or_default().push(pos);
        }

        // Candidate order heuristic: try transactions by first appearance in
        // the schedule.  Serial witnesses of near-serial and
        // reduction-generated schedules correlate strongly with schedule
        // order, so the search finds them with little backtracking
        // (enumeration semantics are unaffected).
        let mut tx_ids_by_first_step = tx_ids.clone();
        tx_ids_by_first_step.sort_by_key(|id| {
            positions_of_tx
                .get(id)
                .and_then(|ps| ps.first().copied())
                .unwrap_or(usize::MAX)
        });

        // Earliest write position of each (entity, writer): a read at
        // position `pos` can be served by `writer` iff that write exists
        // before `pos`.
        let mut first_write: HashMap<(mvcc_core::EntityId, TxId), usize> = HashMap::new();
        for (pos, step) in s.steps().iter().enumerate() {
            if step.is_write() {
                first_write.entry((step.entity, step.tx)).or_insert(pos);
            }
        }

        let mut txs: Vec<TxPlacement> = Vec::with_capacity(tx_ids.len());
        for &id in &tx_ids_by_first_step {
            // lint: allow(unwrap) — every tx id in a schedule is in its system by construction
            let tx = sys.get(id).expect("tx of the system");
            let positions = &positions_of_tx[&id];
            let mut reads = Vec::new();
            for (k, &(action, entity)) in tx.accesses.iter().enumerate() {
                if action.is_read() {
                    let own_earlier_write = tx.accesses[..k]
                        .iter()
                        .any(|&(a, e)| a.is_write() && e == entity);
                    reads.push((positions[k], entity, own_earlier_write));
                }
            }
            txs.push(TxPlacement {
                id,
                reads,
                writes: tx.write_set().into_iter().collect(),
                open_reads: Vec::new(),
                required_reads: Vec::new(),
            });
        }

        // Availability masks for the forward check (only meaningful while
        // the transaction count fits the bitmask; the check is skipped
        // otherwise).
        if txs.len() <= 128 {
            for i in 0..txs.len() {
                let mut open = Vec::new();
                for &(pos, entity, own) in &txs[i].reads {
                    if own {
                        continue;
                    }
                    let mut mask = 0u128;
                    for (j, other) in txs.iter().enumerate() {
                        if j != i
                            && first_write
                                .get(&(entity, other.id))
                                .is_some_and(|&fp| fp < pos)
                        {
                            mask |= 1 << j;
                        }
                    }
                    open.push((pos, entity, mask));
                }
                txs[i].open_reads = open;
            }
        }

        let tx_index = txs.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
        let pred = vec![0u128; txs.len()];
        SearchEngine {
            s,
            sys,
            txs,
            first_write,
            accept,
            limit,
            out: Vec::new(),
            dead: std::collections::HashSet::new(),
            tx_index,
            pred,
            infeasible: false,
            budget: u64::MAX,
            budget_exhausted: false,
        }
    }

    /// Registers a `required` read-from map so the forward check can
    /// propagate it: a read pinned to `Initial` dies as soon as any writer
    /// of its entity is placed before its reader, and a read pinned to
    /// `Tx(w)` dies as soon as `w` stops being the entity's last writer
    /// while the reader is still unplaced.  The `accept` predicate passed to
    /// [`SearchEngine::build`] must enforce the same map at placement time.
    fn apply_required(&mut self, required: &HashMap<usize, VersionSource>) {
        for i in 0..self.txs.len() {
            let mut pinned = Vec::new();
            for &(pos, entity, own) in &self.txs[i].reads {
                if own {
                    continue;
                }
                if let Some(&src) = required.get(&pos) {
                    pinned.push((entity, src));
                }
            }
            self.txs[i].required_reads = pinned;
        }
        if self.txs.len() > 128 {
            return;
        }

        // Hard precedence edges: a read pinned to `Tx(w)` puts `w` before
        // its reader; a read pinned to `Initial` puts its reader before
        // every writer of the entity.  A cycle among these proves the map
        // unsatisfiable outright — this is exactly how the Theorem 4/5
        // constructions encode polygraph arcs, so refutations that would
        // otherwise need exhaustive search fall out of a linear check.
        let writers_of: HashMap<mvcc_core::EntityId, Vec<usize>> = {
            let mut m: HashMap<mvcc_core::EntityId, Vec<usize>> = HashMap::new();
            for (j, t) in self.txs.iter().enumerate() {
                for &e in &t.writes {
                    m.entry(e).or_default().push(j);
                }
            }
            m
        };
        for i in 0..self.txs.len() {
            for k in 0..self.txs[i].required_reads.len() {
                let (entity, src) = self.txs[i].required_reads[k];
                match src {
                    VersionSource::Tx(w) => {
                        if let Some(&wi) = self.tx_index.get(&w) {
                            if wi != i {
                                self.pred[i] |= 1 << wi;
                            }
                        }
                    }
                    VersionSource::Initial => {
                        if let Some(ws) = writers_of.get(&entity) {
                            for &j in ws {
                                if j != i {
                                    self.pred[j] |= 1 << i;
                                }
                            }
                        }
                    }
                }
            }
        }

        // Kahn's algorithm: if the precedence graph has a cycle, no serial
        // order satisfies `required`.
        let n = self.txs.len();
        let mut placed = 0u128;
        let mut progressed = true;
        let mut count = 0;
        while progressed {
            progressed = false;
            for i in 0..n {
                if placed & (1 << i) == 0 && self.pred[i] & !placed == 0 {
                    placed |= 1 << i;
                    count += 1;
                    progressed = true;
                }
            }
        }
        if count < n {
            self.infeasible = true;
        }
    }

    fn dfs(
        &mut self,
        order: &mut Vec<TxId>,
        used: u128,
        last_writer: &mut BTreeMap<mvcc_core::EntityId, TxId>,
    ) -> Dfs {
        if self.budget == 0 {
            self.budget_exhausted = true;
            return Dfs::Stop;
        }
        self.budget -= 1;
        if order.len() == self.txs.len() {
            // Every placement was checked incrementally, so the induced
            // assignment is realizable and accepted by construction.
            self.out
                .push(serial_read_froms_of_system(self.s, self.sys, order));
            return match self.limit {
                Some(l) if self.out.len() >= l => Dfs::Stop,
                _ => Dfs::FoundSome,
            };
        }

        let memoize = self.txs.len() <= 128;
        let key = if memoize {
            let sig: Vec<_> = last_writer.iter().map(|(&e, &t)| (e, t)).collect();
            if self.dead.contains(&(used, sig.clone())) {
                return Dfs::Nothing;
            }
            Some((used, sig))
        } else {
            None
        };

        // Forward check: every read of every unplaced transaction must still
        // be servable by SOME completion (see `forward_check`); a failed
        // check proves the whole subtree dead.
        if memoize && !self.forward_check(used, last_writer) {
            if let Some(key) = key {
                self.dead.insert(key);
            }
            return Dfs::Nothing;
        }

        let mut found = false;
        for i in 0..self.txs.len() {
            if memoize && used & (1 << i) != 0 {
                continue;
            }
            if !memoize && order.contains(&self.txs[i].id) {
                continue;
            }
            if memoize && self.pred[i] & !used != 0 {
                // A hard predecessor is still unplaced.
                continue;
            }
            if !self.can_place(i, last_writer) {
                continue;
            }
            let tx_id = self.txs[i].id;
            order.push(tx_id);
            let saved: Vec<_> = self.txs[i]
                .writes
                .iter()
                .map(|&e| (e, last_writer.insert(e, tx_id)))
                .collect();
            let next_used = if memoize { used | (1 << i) } else { used };
            let result = self.dfs(order, next_used, last_writer);
            for (e, old) in saved {
                match old {
                    Some(w) => last_writer.insert(e, w),
                    None => last_writer.remove(&e),
                };
            }
            order.pop();
            match result {
                Dfs::Stop => return Dfs::Stop,
                Dfs::FoundSome => found = true,
                Dfs::Nothing => {}
            }
        }

        if found {
            Dfs::FoundSome
        } else {
            if let Some(key) = key {
                self.dead.insert(key);
            }
            Dfs::Nothing
        }
    }

    /// Whether transaction `i` can be placed next: each of its reads must be
    /// servable (the serially-determined source exists before the read in
    /// `s`) and pass the acceptance predicate.
    fn can_place(&self, i: usize, last_writer: &BTreeMap<mvcc_core::EntityId, TxId>) -> bool {
        let tx = &self.txs[i];
        tx.reads.iter().all(|&(pos, entity, own_earlier_write)| {
            let source = if own_earlier_write {
                VersionSource::Tx(tx.id)
            } else {
                match last_writer.get(&entity) {
                    Some(&w) => VersionSource::Tx(w),
                    None => VersionSource::Initial,
                }
            };
            let realizable = match source {
                VersionSource::Initial => true,
                VersionSource::Tx(w) if w == tx.id => true,
                VersionSource::Tx(w) => self
                    .first_write
                    .get(&(entity, w))
                    .is_some_and(|&fp| fp < pos),
            };
            realizable && (self.accept)(pos, source)
        })
    }
}

/// Search-state key of [`SearchEngine::restriction_dfs`]: placed set, last
/// writers, restriction so far.
type RestrictionState = (
    u128,
    Vec<(mvcc_core::EntityId, TxId)>,
    Vec<(usize, VersionSource)>,
);

impl SearchEngine<'_> {
    /// Whether the partial state can be completed to a full realizable
    /// serialization (existence only, nothing emitted).  Shares the dead
    /// memo with the other search modes; must only be called with the
    /// accept-everything predicate, so "dead" keeps one meaning throughout.
    fn completes(
        &mut self,
        placed: usize,
        used: u128,
        last_writer: &mut BTreeMap<mvcc_core::EntityId, TxId>,
    ) -> bool {
        if placed == self.txs.len() {
            return true;
        }
        let sig: Vec<_> = last_writer.iter().map(|(&e, &t)| (e, t)).collect();
        if self.dead.contains(&(used, sig.clone())) {
            return false;
        }
        if !self.forward_check(used, last_writer) {
            self.dead.insert((used, sig));
            return false;
        }
        for i in 0..self.txs.len() {
            if used & (1 << i) != 0 || !self.can_place(i, last_writer) {
                continue;
            }
            let tx_id = self.txs[i].id;
            let saved: Vec<_> = self.txs[i]
                .writes
                .iter()
                .map(|&e| (e, last_writer.insert(e, tx_id)))
                .collect();
            let done = self.completes(placed + 1, used | (1 << i), last_writer);
            for (e, old) in saved {
                match old {
                    Some(w) => last_writer.insert(e, w),
                    None => last_writer.remove(&e),
                };
            }
            if done {
                return true;
            }
        }
        self.dead.insert((used, sig));
        false
    }

    /// Necessary condition for any completion: each unplaced read without an
    /// own earlier write must still be servable — by the current last writer
    /// (if its write is early enough), by `Initial` (if no writer of the
    /// entity was placed yet), or by an available unplaced writer placed in
    /// between.
    fn forward_check(&self, used: u128, last_writer: &BTreeMap<mvcc_core::EntityId, TxId>) -> bool {
        for (i, tx) in self.txs.iter().enumerate() {
            if used & (1 << i) != 0 {
                continue;
            }
            for &(pos, entity, avail_mask) in &tx.open_reads {
                let lw_ok = match last_writer.get(&entity) {
                    None => true, // Initial is still reachable
                    Some(&w) => self
                        .first_write
                        .get(&(entity, w))
                        .is_some_and(|&fp| fp < pos),
                };
                if !lw_ok && avail_mask & !used == 0 {
                    return false;
                }
            }
            // Required-read propagation (empty unless `apply_required` ran):
            // `Initial` is unreachable once any writer was placed, and
            // `Tx(w)` is unreachable once `w` is placed but no longer the
            // last writer.
            for &(entity, src) in &tx.required_reads {
                match src {
                    VersionSource::Initial => {
                        if last_writer.contains_key(&entity) {
                            return false;
                        }
                    }
                    VersionSource::Tx(w) => {
                        if w == tx.id {
                            // Pinned to a version the reader itself writes
                            // only later in program order: never servable.
                            return false;
                        }
                        if let Some(&wi) = self.tx_index.get(&w) {
                            let placed = used & (1 << wi) != 0;
                            if placed && last_writer.get(&entity) != Some(&w) {
                                return false;
                            }
                        } else {
                            // Unknown writer: no serialization can realize it.
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Enumerates the achievable restrictions of the serializing read-from
    /// assignments to the first `prefix_len` schedule positions — see
    /// [`achievable_prefix_restrictions`].  Returns `true` when the search
    /// stopped early because `max` restrictions were found.
    ///
    /// Explores serial orders only until every prefix reader is placed
    /// (which pins the restriction), then validates new restrictions with
    /// one memoized [`SearchEngine::completes`] call.  Distinct search
    /// states are deduped on (placed set, last writers, restriction so far):
    /// revisiting one cannot contribute restrictions the first visit did
    /// not.  Only correct with the accept-everything predicate.
    #[allow(clippy::too_many_arguments)]
    fn restriction_dfs(
        &mut self,
        prefix_len: usize,
        readers_remaining: usize,
        visited: &mut std::collections::HashSet<RestrictionState>,
        placed: usize,
        used: u128,
        last_writer: &mut BTreeMap<mvcc_core::EntityId, TxId>,
        restriction: &mut BTreeMap<usize, VersionSource>,
        out: &mut std::collections::BTreeSet<BTreeMap<usize, VersionSource>>,
        max: Option<usize>,
    ) -> bool {
        if readers_remaining == 0 {
            if !out.contains(restriction) && self.completes(placed, used, last_writer) {
                out.insert(restriction.clone());
                if let Some(m) = max {
                    if out.len() >= m {
                        return true;
                    }
                }
            }
            return false;
        }
        let sig: Vec<_> = last_writer.iter().map(|(&e, &t)| (e, t)).collect();
        if self.dead.contains(&(used, sig.clone())) {
            return false;
        }
        if !self.forward_check(used, last_writer) {
            self.dead.insert((used, sig));
            return false;
        }
        let state: RestrictionState = (
            used,
            sig,
            restriction.iter().map(|(&p, &v)| (p, v)).collect(),
        );
        if !visited.insert(state) {
            return false;
        }

        for i in 0..self.txs.len() {
            if used & (1 << i) != 0 || !self.can_place(i, last_writer) {
                continue;
            }
            let tx_id = self.txs[i].id;
            // Record the sources of this transaction's prefix reads; they
            // are pinned at placement time (only earlier transactions can
            // serve them).
            let mut recorded = Vec::new();
            let mut reads_in_prefix = false;
            for &(pos, entity, own) in &self.txs[i].reads {
                if pos >= prefix_len {
                    continue;
                }
                reads_in_prefix = true;
                let source = if own {
                    VersionSource::Tx(tx_id)
                } else {
                    match last_writer.get(&entity) {
                        Some(&w) => VersionSource::Tx(w),
                        None => VersionSource::Initial,
                    }
                };
                restriction.insert(pos, source);
                recorded.push(pos);
            }
            let saved: Vec<_> = self.txs[i]
                .writes
                .iter()
                .map(|&e| (e, last_writer.insert(e, tx_id)))
                .collect();
            let stop = self.restriction_dfs(
                prefix_len,
                readers_remaining - usize::from(reads_in_prefix),
                visited,
                placed + 1,
                used | (1 << i),
                last_writer,
                restriction,
                out,
                max,
            );
            for (e, old) in saved {
                match old {
                    Some(w) => last_writer.insert(e, w),
                    None => last_writer.remove(&e),
                };
            }
            for pos in recorded {
                restriction.remove(&pos);
            }
            if stop {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::{EntityId, Schedule};

    #[test]
    fn serial_read_froms_of_a_simple_chain() {
        // A writes x, B reads it. Order AB: B <- A; order BA: B <- initial.
        let s = Schedule::parse("Wa(x) Rb(x)").unwrap();
        let ab = serial_read_froms(&s, &[TxId(1), TxId(2)]);
        assert_eq!(ab.read_sources[&1], VersionSource::Tx(TxId(1)));
        assert_eq!(ab.final_writers[&EntityId(0)], Some(TxId(1)));
        let ba = serial_read_froms(&s, &[TxId(2), TxId(1)]);
        assert_eq!(ba.read_sources[&1], VersionSource::Initial);
    }

    #[test]
    fn own_write_takes_priority_in_serial_order() {
        // A: R(x) W(x) R(x): the second read observes A's own write no
        // matter where other writers sit in the serial order.
        let s = Schedule::parse("Ra(x) Wa(x) Wb(x) Ra(x)").unwrap();
        let rf = serial_read_froms(&s, &[TxId(2), TxId(1)]);
        assert_eq!(
            rf.read_sources[&0],
            VersionSource::Tx(TxId(2)),
            "first read sees B"
        );
        assert_eq!(
            rf.read_sources[&3],
            VersionSource::Tx(TxId(1)),
            "second read sees own write"
        );
    }

    #[test]
    fn realizability_requires_the_writer_to_have_written_already() {
        let s = Schedule::parse("Rb(x) Wa(x)").unwrap();
        // Serial order AB would make B read from A, but A's write comes after
        // the read in s: not realizable ("a read that arrived too early").
        let ab = serial_read_froms(&s, &[TxId(1), TxId(2)]);
        assert!(!is_realizable(&s, &ab));
        // Serial order BA has B read the initial version: realizable.
        let ba = serial_read_froms(&s, &[TxId(2), TxId(1)]);
        assert!(is_realizable(&s, &ba));
    }

    #[test]
    fn serializations_of_the_non_mvsr_example_are_empty() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(serializations(&s, None).is_empty());
    }

    #[test]
    fn serializations_of_a_serial_schedule_include_its_own_order() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(y)").unwrap();
        let all = serializations(&s, None);
        assert!(all.iter().any(|rf| rf.order == vec![TxId(1), TxId(2)]));
    }

    #[test]
    fn limit_stops_early() {
        let s = Schedule::parse("Ra(x) Wb(y) Rc(z)").unwrap();
        // No conflicts at all: all 6 permutations serialize.
        assert_eq!(serializations(&s, None).len(), 6);
        assert_eq!(serializations(&s, Some(2)).len(), 2);
    }

    #[test]
    fn version_function_conversion_is_valid() {
        let s = Schedule::parse("Wa(x) Rb(x) Wb(y)").unwrap();
        let all = serializations(&s, None);
        for rf in &all {
            let vf = rf.to_version_function(&s);
            assert!(vf.validate(&s).is_ok(), "order {:?}", rf.order);
        }
    }

    #[test]
    fn extending_search_respects_required_assignments() {
        use std::collections::HashMap;
        let s = Schedule::parse("Wa(x) Rb(x) Wb(y) Ra(y)").unwrap();
        // Require R_b(x) (position 1) to read the initial version: only the
        // B-before-A serialization remains, and it also fixes R_a(y).
        let mut req = HashMap::new();
        req.insert(1usize, VersionSource::Initial);
        let found = serializations_extending(&s, &req, None);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].order, vec![TxId(2), TxId(1)]);
        assert!(has_serialization_extending(&s, &req));

        // Requiring an impossible assignment yields nothing.
        let mut impossible = HashMap::new();
        impossible.insert(1usize, VersionSource::Tx(TxId(2)));
        assert!(!has_serialization_extending(&s, &impossible));
    }

    #[test]
    fn extending_search_with_empty_requirements_matches_plain_enumeration() {
        use std::collections::HashMap;
        let s = Schedule::parse("Wa(x) Rb(x) Rc(y) Wb(y) Wc(x)").unwrap();
        let plain = serializations(&s, None).len();
        let filtered = serializations_extending(&s, &HashMap::new(), None).len();
        assert_eq!(plain, filtered);
    }

    #[test]
    fn section4_schedules_have_unique_serializations() {
        let (s, s_prime) = mvcc_core::examples::section4_pair();
        let ser_s = serializations(&s, None);
        let ser_sp = serializations(&s_prime, None);
        assert_eq!(ser_s.len(), 1, "s serializes only as A B");
        assert_eq!(ser_s[0].order, vec![TxId(1), TxId(2)]);
        assert_eq!(ser_sp.len(), 1, "s' serializes only as B A");
        assert_eq!(ser_sp[0].order, vec![TxId(2), TxId(1)]);
        // And they disagree on what R_B(x) (position 2 in both) must read.
        assert_ne!(ser_s[0].read_sources[&2], ser_sp[0].read_sources[&2]);
    }
}
