//! View serializability (VSR) — the class the paper calls "SR".
//!
//! A schedule is VSR iff it is view-equivalent (identical READ-FROM relation
//! of the padded schedule, under the standard version function) to some
//! serial schedule of the same transaction system.  Testing VSR is
//! NP-complete [Papadimitriou 1979]; two exact implementations are provided:
//!
//! * [`is_vsr`] / [`vsr_witness`]: a branch-and-bound search over serial
//!   orders that prunes as soon as a placed transaction's reads disagree
//!   with the schedule's standard read-froms;
//! * [`vsr_polygraph`] / [`is_vsr_polygraph`]: the polygraph formulation of
//!   \[P79\] (one choice per read-from/interfering-writer pair), solved with
//!   the exact polygraph solver of `mvcc-graph`.  The two agree on every
//!   input; the test-suite cross-checks them exhaustively on small systems.

use crate::serialization::{serial_read_froms_of_system, SerialReadFroms};
use mvcc_core::{EntityId, ReadFromRelation, Schedule, TransactionSystem, TxId, VersionSource};
use mvcc_graph::poly_acyclic::solve_polygraph;
use mvcc_graph::{NodeId, Polygraph};
use std::collections::{BTreeSet, HashMap};

/// The standard (single-version) read-from source of every read position of
/// `s`, plus the final writer of every entity.
fn standard_targets(
    s: &Schedule,
) -> (
    HashMap<usize, VersionSource>,
    HashMap<EntityId, Option<TxId>>,
) {
    let mut reads = HashMap::new();
    for pos in s.all_read_positions() {
        let e = s.steps()[pos].entity;
        let src = s
            .last_writer_before(pos, e)
            .map_or(VersionSource::Initial, VersionSource::Tx);
        reads.insert(pos, src);
    }
    let mut finals = HashMap::new();
    for e in s.entities_accessed() {
        finals.insert(e, s.final_writer(e));
    }
    (reads, finals)
}

/// `true` iff `schedule` is view-serializable.
pub fn is_vsr(schedule: &Schedule) -> bool {
    vsr_witness(schedule).is_some()
}

/// Returns a serial order to which `schedule` is view-equivalent, or `None`.
pub fn vsr_witness(schedule: &Schedule) -> Option<Vec<TxId>> {
    let sys = schedule.tx_system();
    let ids = sys.tx_ids();
    let (target_reads, target_finals) = standard_targets(schedule);
    let mut order = Vec::with_capacity(ids.len());
    let mut used = vec![false; ids.len()];
    search(
        schedule,
        &sys,
        &ids,
        &target_reads,
        &target_finals,
        &mut order,
        &mut used,
    )
}

#[allow(clippy::too_many_arguments)]
fn search(
    s: &Schedule,
    sys: &TransactionSystem,
    ids: &[TxId],
    target_reads: &HashMap<usize, VersionSource>,
    target_finals: &HashMap<EntityId, Option<TxId>>,
    order: &mut Vec<TxId>,
    used: &mut Vec<bool>,
) -> Option<Vec<TxId>> {
    if order.len() == ids.len() {
        let rf = serial_read_froms_of_system(s, sys, order);
        if reads_match(&rf, target_reads, s, order, true) && finals_match(&rf, target_finals) {
            return Some(order.clone());
        }
        return None;
    }
    for i in 0..ids.len() {
        if used[i] {
            continue;
        }
        order.push(ids[i]);
        used[i] = true;
        let rf = serial_read_froms_of_system(s, sys, order);
        if reads_match(&rf, target_reads, s, order, false) {
            if let Some(found) = search(s, sys, ids, target_reads, target_finals, order, used) {
                used[i] = false;
                order.pop();
                return Some(found);
            }
        }
        used[i] = false;
        order.pop();
    }
    None
}

/// Checks that the reads of the transactions already placed agree with the
/// schedule's standard read-froms.  When `complete` is true all reads are
/// checked.
fn reads_match(
    rf: &SerialReadFroms,
    target: &HashMap<usize, VersionSource>,
    s: &Schedule,
    placed: &[TxId],
    complete: bool,
) -> bool {
    let placed_set: BTreeSet<TxId> = placed.iter().copied().collect();
    for (&pos, &src) in &rf.read_sources {
        let tx = s.steps()[pos].tx;
        if !complete && !placed_set.contains(&tx) {
            continue;
        }
        if target.get(&pos) != Some(&src) {
            return false;
        }
    }
    true
}

fn finals_match(rf: &SerialReadFroms, target: &HashMap<EntityId, Option<TxId>>) -> bool {
    target
        .iter()
        .all(|(e, w)| rf.final_writers.get(e).unwrap_or(&None) == w)
}

/// The VSR polygraph of `schedule` (\[P79\]): nodes are the transactions plus
/// `T0` and `Tf`; there is an arc from every writer to every transaction
/// that reads from it (under the standard version function of the padded
/// schedule), plus `T0 → t → Tf` ordering arcs; and for every read-from
/// `(reader ← writer)` on entity `x` and every *other* transaction `k` that
/// writes `x`, a choice "either `k` before `writer` or `reader` before `k`".
///
/// Two refinements handle transactions that write an entity they also read:
/// a read served by the reader's *own* earlier write imposes no constraint,
/// and a read served by another transaction even though the reader wrote the
/// entity earlier in program order can never be reproduced by a serial
/// schedule — the polygraph is then made deliberately cyclic (arc `Tf → T0`)
/// so that the acyclicity verdict stays equivalent to view-serializability.
///
/// The schedule is view-serializable iff this polygraph is acyclic.
pub fn vsr_polygraph(schedule: &Schedule) -> (Polygraph, HashMap<TxId, NodeId>) {
    let txs = schedule.tx_ids();
    let mut p = Polygraph::with_nodes(0);
    let mut node_of: HashMap<TxId, NodeId> = HashMap::new();
    let t0 = p.add_node("T0");
    let tf = p.add_node("Tf");
    node_of.insert(TxId::INITIAL, t0);
    node_of.insert(TxId::FINAL, tf);
    for &tx in &txs {
        let n = p.add_node(format!("{tx}"));
        node_of.insert(tx, n);
        p.add_arc(t0, n);
        p.add_arc(n, tf);
    }
    p.add_arc(t0, tf);

    // Writers of every entity (ordinary transactions only).
    let mut writers: HashMap<EntityId, BTreeSet<TxId>> = HashMap::new();
    for step in schedule.steps() {
        if step.is_write() {
            writers.entry(step.entity).or_default().insert(step.tx);
        }
    }

    let add_read_constraint = |p: &mut Polygraph,
                               reader_tx: TxId,
                               writer_tx: TxId,
                               entity: EntityId,
                               impossible: bool| {
        if impossible {
            // No serial schedule can realise this read-from: poison the
            // polygraph with a guaranteed cycle.
            p.add_arc(node_of[&TxId::FINAL], node_of[&TxId::INITIAL]);
            return;
        }
        if reader_tx == writer_tx {
            // Reading one's own earlier write constrains nothing.
            return;
        }
        let reader = node_of[&reader_tx];
        let writer = node_of[&writer_tx];
        p.add_arc(writer, reader);
        if let Some(ws) = writers.get(&entity) {
            for &k in ws {
                if k == reader_tx || k == writer_tx {
                    continue;
                }
                let kn = node_of[&k];
                // Choice (j = reader, k, i = writer): branches
                // (reader, k) or (k, writer); mandatory arc (writer, reader).
                p.add_choice(reader, kn, writer);
            }
        }
    };

    // Ordinary reads, handled positionally so that the reader's own earlier
    // writes (program order) are taken into account.
    for pos in schedule.all_read_positions() {
        let step = schedule.steps()[pos];
        let source = schedule
            .last_writer_before(pos, step.entity)
            .map_or(VersionSource::Initial, VersionSource::Tx);
        let writer_tx = source.as_tx();
        let own_earlier_write = schedule.steps()[..pos]
            .iter()
            .any(|w| w.is_write() && w.tx == step.tx && w.entity == step.entity);
        let impossible = own_earlier_write && writer_tx != step.tx;
        add_read_constraint(&mut p, step.tx, writer_tx, step.entity, impossible);
    }

    // The padded final reads (one per entity), taken from the READ-FROM
    // relation; `Tf` never writes, so they are never "impossible".
    let rel = ReadFromRelation::of_schedule(schedule);
    for entry in rel.entries() {
        if entry.reader == TxId::FINAL {
            add_read_constraint(&mut p, entry.reader, entry.writer, entry.entity, false);
        }
    }
    (p, node_of)
}

/// `true` iff `schedule` is view-serializable, decided through the polygraph
/// formulation.
pub fn is_vsr_polygraph(schedule: &Schedule) -> bool {
    let (p, _) = vsr_polygraph(schedule);
    solve_polygraph(&p).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_schedules_are_vsr() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(is_vsr(&s));
        assert_eq!(vsr_witness(&s), Some(vec![TxId(1), TxId(2)]));
        assert!(is_vsr_polygraph(&s));
    }

    #[test]
    fn lost_update_is_not_vsr() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(!is_vsr(&s));
        assert!(!is_vsr_polygraph(&s));
    }

    #[test]
    fn vsr_but_not_csr_blind_write_example() {
        // The classic blind-write example: view-equivalent to A B C although
        // the conflict graph has a cycle between A and B.
        let s5 = &mvcc_core::examples::figure1()[4].schedule;
        assert!(is_vsr(s5));
        assert!(!crate::csr::is_csr(s5));
        assert!(is_vsr_polygraph(s5));
    }

    #[test]
    fn figure1_vsr_claims() {
        let examples = mvcc_core::examples::figure1();
        let expected = [false, false, true, false, true, true];
        for (ex, want) in examples.iter().zip(expected) {
            assert_eq!(
                is_vsr(&ex.schedule),
                want,
                "Figure 1 example ({}) SR claim",
                ex.number
            );
        }
    }

    #[test]
    fn witness_is_view_equivalent() {
        let s = Schedule::parse("Wa(x) Rb(x) Rc(y) Wc(x) Wb(y) Wd(x)").unwrap();
        let order = vsr_witness(&s).unwrap();
        let serial = Schedule::serial(&s.tx_system(), &order);
        assert!(mvcc_core::equivalence::view_equivalent(&s, &serial));
    }

    #[test]
    fn csr_implies_vsr_exhaustively() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            if crate::csr::is_csr(&s) {
                assert!(is_vsr(&s), "CSR but not VSR: {s}");
            }
        }
    }

    #[test]
    fn polygraph_formulation_agrees_with_search_exhaustively() {
        // Includes a blind writer so that VSR and CSR genuinely differ.
        let sys = Schedule::parse("Ra(x) Wa(x) Wa(y) Rb(x) Wb(y) Wc(y)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(is_vsr(&s), is_vsr_polygraph(&s), "schedule {s}");
        }
    }

    #[test]
    fn polygraph_formulation_agrees_on_own_write_readers() {
        let sys = Schedule::parse("Ra(x) Wa(x) Ra(x) Rb(x) Wb(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(is_vsr(&s), is_vsr_polygraph(&s), "schedule {s}");
        }
    }
}
