//! Multiversion conflict serializability (MVCSR) — Section 3 of the paper.
//!
//! The *multiversion conflict graph* `MVCG(s)` has the transactions of `s`
//! as nodes and an arc from `Ti` to `Tj` labelled `x` whenever `Wj(x)`
//! follows `Ri(x)` in `s` (the relaxed, asymmetric conflict notion of the
//! paper: only read-before-write pairs matter).
//!
//! **Theorem 1**: a schedule is MVCSR iff its MVCG is acyclic.  The
//! polynomial-time test below is exactly that; [`mvcsr_witness`] additionally
//! returns the serial order given by a topological sort of the MVCG, and
//! Theorem 3's constructive content ("if a schedule is MVCSR then it is
//! MVSR") is realised by [`mvcsr_version_function`], which builds a version
//! function serializing the schedule in that order.

use mvcc_core::conflict::mv_conflict_pairs;
use mvcc_core::{Schedule, TxId, VersionFunction};
use mvcc_graph::topo::topological_sort;
use mvcc_graph::{DiGraph, NodeId};
use std::collections::HashMap;

/// The multiversion conflict graph of a schedule, with the node/transaction
/// mapping and the entity labels of the arcs.
#[derive(Debug, Clone)]
pub struct MvConflictGraph {
    /// The graph: one node per transaction.
    pub graph: DiGraph,
    /// Node of each transaction.
    pub node_of_tx: HashMap<TxId, NodeId>,
    /// Transaction of each node.
    pub tx_of_node: Vec<TxId>,
    /// Entity labels per arc `(from, to)`.
    pub labels: HashMap<(NodeId, NodeId), Vec<mvcc_core::EntityId>>,
}

impl MvConflictGraph {
    /// Converts a topological order of the graph into a transaction order.
    pub fn order_to_txs(&self, order: &[NodeId]) -> Vec<TxId> {
        order.iter().map(|n| self.tx_of_node[n.index()]).collect()
    }
}

/// Builds `MVCG(schedule)`.
pub fn mv_conflict_graph(schedule: &Schedule) -> MvConflictGraph {
    let txs = schedule.tx_ids();
    let mut graph = DiGraph::new();
    let mut node_of_tx = HashMap::new();
    let mut tx_of_node = Vec::new();
    for &tx in &txs {
        let n = graph.add_node(format!("{tx}"));
        node_of_tx.insert(tx, n);
        tx_of_node.push(tx);
    }
    let mut labels: HashMap<(NodeId, NodeId), Vec<mvcc_core::EntityId>> = HashMap::new();
    for pair in mv_conflict_pairs(schedule) {
        let from = node_of_tx[&pair.first_tx];
        let to = node_of_tx[&pair.second_tx];
        if from != to {
            graph.add_arc(from, to);
            labels
                .entry((from, to))
                .or_default()
                .push(schedule.steps()[pair.first].entity);
        }
    }
    MvConflictGraph {
        graph,
        node_of_tx,
        tx_of_node,
        labels,
    }
}

/// **Theorem 1** test: `true` iff `schedule` is MVCSR (its MVCG is acyclic).
pub fn is_mvcsr(schedule: &Schedule) -> bool {
    topological_sort(&mv_conflict_graph(schedule).graph).is_some()
}

/// Returns the serial order witnessing MVCSR membership (a topological sort
/// of the MVCG), or `None` if the schedule is not MVCSR.
pub fn mvcsr_witness(schedule: &Schedule) -> Option<Vec<TxId>> {
    let g = mv_conflict_graph(schedule);
    topological_sort(&g.graph).map(|order| g.order_to_txs(&order))
}

/// Theorem 3, constructively: for an MVCSR schedule, a version function `V`
/// such that `(s, V)` is view-equivalent to the serial schedule given by
/// [`mvcsr_witness`] run under the standard version function.  Returns
/// `None` when the schedule is not MVCSR.
pub fn mvcsr_version_function(schedule: &Schedule) -> Option<(Vec<TxId>, VersionFunction)> {
    let order = mvcsr_witness(schedule)?;
    let rf = crate::serialization::serial_read_froms(schedule, &order);
    debug_assert!(
        crate::serialization::is_realizable(schedule, &rf),
        "Theorem 3: the MVCG order must always be realizable"
    );
    Some((order, rf.to_version_function(schedule)))
}

/// Reference implementation used by tests: MVCSR via the definition —
/// multiversion-conflict-equivalent to *some* serial schedule, by
/// enumerating serial orders.
pub fn is_mvcsr_by_definition(schedule: &Schedule) -> bool {
    let sys = schedule.tx_system();
    let ids = sys.tx_ids();
    crate::csr::permutations(&ids).into_iter().any(|order| {
        let serial = Schedule::serial(&sys, &order);
        mvcc_core::equivalence::mv_conflict_equivalent(schedule, &serial)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::equivalence::full_view_equivalent;
    use mvcc_core::VersionFunction as VF;

    #[test]
    fn serial_schedules_are_mvcsr() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(is_mvcsr(&s));
    }

    #[test]
    fn csr_implies_mvcsr_on_small_systems() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            if crate::csr::is_csr(&s) {
                assert!(is_mvcsr(&s), "CSR schedule not MVCSR: {s}");
            }
        }
    }

    #[test]
    fn theorem1_graph_test_matches_definition() {
        // Exhaustive: every interleaving of two 2-step transactions plus a
        // blind writer.
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(is_mvcsr(&s), is_mvcsr_by_definition(&s), "schedule {s}");
        }
    }

    #[test]
    fn figure1_mvcsr_claims() {
        let examples = mvcc_core::examples::figure1();
        let expected = [false, false, false, true, true, true];
        for (ex, want) in examples.iter().zip(expected) {
            assert_eq!(
                is_mvcsr(&ex.schedule),
                want,
                "Figure 1 example ({}) MVCSR claim",
                ex.number
            );
        }
    }

    #[test]
    fn arcs_are_labelled_with_entities() {
        let s = Schedule::parse("Ra(x) Wb(x) Ra(y) Wb(y)").unwrap();
        let g = mv_conflict_graph(&s);
        let a = g.node_of_tx[&TxId(1)];
        let b = g.node_of_tx[&TxId(2)];
        let labels = &g.labels[&(a, b)];
        assert_eq!(labels.len(), 2, "arcs for x and for y");
    }

    #[test]
    fn witness_order_serializes_the_schedule_theorem3() {
        // For a batch of MVCSR schedules, the version function produced from
        // the MVCG topological order makes the schedule view-equivalent to
        // that serial order: Theorem 3 in executable form.
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Rc(x) Wc(y)")
            .unwrap()
            .tx_system();
        let mut verified = 0;
        for s in Schedule::all_interleavings(&sys).into_iter().take(200) {
            if let Some((order, vf)) = mvcsr_version_function(&s) {
                let serial = Schedule::serial(&sys, &order);
                let v_serial = VF::standard(&serial);
                assert!(
                    full_view_equivalent(&s, &vf, &serial, &v_serial),
                    "schedule {s} order {order:?}"
                );
                verified += 1;
            }
        }
        assert!(verified > 0);
    }

    #[test]
    fn read_only_schedules_are_always_mvcsr() {
        let s = Schedule::parse("Ra(x) Rb(x) Ra(y) Rb(y)").unwrap();
        assert!(is_mvcsr(&s));
        assert!(mv_conflict_graph(&s).graph.arc_count() == 0);
    }
}
