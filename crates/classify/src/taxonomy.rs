//! The combined classification and the region map of the paper's Figure 1.

use crate::{csr, dmvsr, mvcsr, mvsr, vsr};
use mvcc_core::examples::Figure1Region;
use mvcc_core::Schedule;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Membership of one schedule in every class the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Classification {
    /// Transactions run back-to-back.
    pub serial: bool,
    /// Conflict-serializable.
    pub csr: bool,
    /// View-serializable (the paper's "SR").
    pub vsr: bool,
    /// Multiversion conflict-serializable (Theorem 1 test).
    pub mvcsr: bool,
    /// Multiversion serializable.
    pub mvsr: bool,
    /// DMVSR (\[PK84\], via readless-write patching).
    pub dmvsr: bool,
}

impl Classification {
    /// The Figure 1 region this classification falls into.
    pub fn region(&self) -> Figure1Region {
        if self.serial {
            Figure1Region::Serial
        } else if !self.mvsr {
            Figure1Region::NotMvsr
        } else if self.mvcsr && self.vsr {
            Figure1Region::MvcsrAndSrNotCsr
        } else if self.mvcsr {
            Figure1Region::MvcsrNotSr
        } else if self.vsr {
            Figure1Region::SrNotMvcsr
        } else {
            Figure1Region::MvsrOnly
        }
    }

    /// The containments the paper establishes (Figure 1 / Theorem 3); used
    /// as a sanity predicate in tests and in the census harness.
    pub fn respects_containments(&self) -> bool {
        // serial ⊆ CSR ⊆ VSR ⊆ MVSR, CSR ⊆ MVCSR ⊆ MVSR, DMVSR ⊆ MVSR.
        (!self.serial || self.csr)
            && (!self.csr || self.vsr)
            && (!self.vsr || self.mvsr)
            && (!self.csr || self.mvcsr)
            && (!self.mvcsr || self.mvsr)
            && (!self.dmvsr || self.mvsr)
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let flag = |b: bool| if b { "yes" } else { "no " };
        write!(
            f,
            "serial={} csr={} vsr={} mvcsr={} mvsr={} dmvsr={}",
            flag(self.serial),
            flag(self.csr),
            flag(self.vsr),
            flag(self.mvcsr),
            flag(self.mvsr),
            flag(self.dmvsr)
        )
    }
}

/// Classifies `schedule` with respect to every class of the paper.
///
/// CSR and MVCSR use the polynomial graph tests; VSR, MVSR and DMVSR use the
/// exact (exponential worst-case) searches — keep schedules small, exactly as
/// in the paper's examples and reductions.
pub fn classify(schedule: &Schedule) -> Classification {
    Classification {
        serial: schedule.is_serial(),
        csr: csr::is_csr(schedule),
        vsr: vsr::is_vsr(schedule),
        mvcsr: mvcsr::is_mvcsr(schedule),
        mvsr: mvsr::is_mvsr(schedule),
        dmvsr: dmvsr::is_dmvsr(schedule),
    }
}

/// A census: how many schedules of a collection fall into each Figure 1
/// region (the harness prints this as the reproduction of Figure 1's
/// topography over exhaustive/random schedule populations).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Census {
    counts: BTreeMap<String, usize>,
    total: usize,
    /// Number of schedules violating the containments of Figure 1 (must be
    /// zero; recorded so the harness can prove it looked).
    pub containment_violations: usize,
}

impl Census {
    /// Classifies every schedule of the iterator and tallies the regions.
    pub fn build<'a>(schedules: impl IntoIterator<Item = &'a Schedule>) -> Self {
        let mut census = Census::default();
        for s in schedules {
            let c = classify(s);
            if !c.respects_containments() {
                census.containment_violations += 1;
            }
            *census
                .counts
                .entry(format!("{:?}", c.region()))
                .or_insert(0) += 1;
            census.total += 1;
        }
        census
    }

    /// Total number of schedules classified.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count for a region (0 when the region was never seen).
    pub fn count(&self, region: Figure1Region) -> usize {
        self.counts
            .get(&format!("{region:?}"))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates `(region name, count)` in alphabetical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.counts.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "census over {} schedules:", self.total)?;
        for (region, count) in self.iter() {
            writeln!(f, "  {region:<22} {count}")?;
        }
        write!(
            f,
            "  containment violations: {}",
            self.containment_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::examples::{figure1, Figure1Region};

    #[test]
    fn figure1_examples_land_in_their_regions() {
        for ex in figure1() {
            let c = classify(&ex.schedule);
            assert_eq!(
                c.region(),
                ex.region,
                "example ({}) {} classified as {c}",
                ex.number,
                ex.schedule
            );
            assert!(c.respects_containments());
        }
    }

    #[test]
    fn census_of_all_interleavings_respects_containments() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(y)")
            .unwrap()
            .tx_system();
        let all = Schedule::all_interleavings(&sys);
        let census = Census::build(all.iter());
        assert_eq!(census.total(), all.len());
        assert_eq!(census.containment_violations, 0);
        // Serial schedules of 3 transactions: 3! = 6.
        assert_eq!(census.count(Figure1Region::Serial), 6);
    }

    #[test]
    fn every_region_of_figure1_is_non_empty_in_a_combined_census() {
        let schedules: Vec<Schedule> = figure1().into_iter().map(|ex| ex.schedule).collect();
        let census = Census::build(schedules.iter());
        for region in Figure1Region::all() {
            assert!(census.count(region) >= 1, "region {region:?} not witnessed");
        }
    }

    #[test]
    fn display_formats() {
        let c = classify(&Schedule::parse("Ra(x) Wa(x)").unwrap());
        assert!(c.serial && c.csr && c.vsr && c.mvsr && c.mvcsr && c.dmvsr);
        let text = c.to_string();
        assert!(text.contains("serial=yes"));
        let census = Census::build(std::iter::empty());
        assert_eq!(census.total(), 0);
        assert!(census.to_string().contains("0 schedules"));
    }

    #[test]
    fn region_assignment_priorities() {
        // Non-MVSR dominates everything except serial.
        let c = Classification {
            serial: false,
            csr: false,
            vsr: false,
            mvcsr: false,
            mvsr: false,
            dmvsr: false,
        };
        assert_eq!(c.region(), Figure1Region::NotMvsr);
        let c2 = Classification {
            serial: false,
            csr: false,
            vsr: true,
            mvcsr: false,
            mvsr: true,
            dmvsr: false,
        };
        assert_eq!(c2.region(), Figure1Region::SrNotMvcsr);
    }
}
