//! Multiversion serializability (MVSR) — the outer limit of the multiversion
//! approach.
//!
//! A schedule `s` is MVSR iff there is a version function `V` such that
//! `(s, V)` is view-equivalent to `(r, V_r)` for some serial schedule `r`.
//! Testing MVSR is NP-complete \[PK84\]; the exact test below searches over
//! serial orders with pruning (see [`crate::serialization`]), and returns a
//! complete witness — the serial order *and* the version function — when one
//! exists.

use crate::serialization::{serializations, SerialReadFroms};
use mvcc_core::{Schedule, TxId, VersionFunction};

/// `true` iff `schedule` is multiversion serializable.
pub fn is_mvsr(schedule: &Schedule) -> bool {
    !serializations(schedule, Some(1)).is_empty()
}

/// Returns a witness of MVSR membership: a serial order and a version
/// function making the schedule view-equivalent to that serial order.
pub fn mvsr_witness(schedule: &Schedule) -> Option<(Vec<TxId>, VersionFunction)> {
    serializations(schedule, Some(1))
        .into_iter()
        .next()
        .map(|rf| {
            let vf = rf.to_version_function(schedule);
            (rf.order, vf)
        })
}

/// All serializations of the schedule (every serial order whose induced
/// read-from assignment is realizable), useful for the OLS machinery.
pub fn all_serializations(schedule: &Schedule) -> Vec<SerialReadFroms> {
    serializations(schedule, None)
}

/// Reference implementation used by tests: MVSR by brute force over *all*
/// version functions and *all* serial orders, straight from the definition.
/// Double-exponential-ish; tiny inputs only.
pub fn is_mvsr_by_definition(schedule: &Schedule) -> bool {
    let sys = schedule.tx_system();
    let orders = crate::csr::permutations(&sys.tx_ids());
    let vfs = VersionFunction::enumerate_all(schedule);
    for order in &orders {
        let serial = Schedule::serial(&sys, order);
        let v_serial = VersionFunction::standard(&serial);
        for vf in &vfs {
            if mvcc_core::equivalence::full_view_equivalent(schedule, vf, &serial, &v_serial) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvcc_core::equivalence::full_view_equivalent;

    #[test]
    fn figure1_mvsr_claims() {
        let examples = mvcc_core::examples::figure1();
        let expected = [false, true, true, true, true, true];
        for (ex, want) in examples.iter().zip(expected) {
            assert_eq!(
                is_mvsr(&ex.schedule),
                want,
                "Figure 1 example ({}) MVSR claim",
                ex.number
            );
        }
    }

    #[test]
    fn witness_serializes_the_schedule() {
        let s2 = &mvcc_core::examples::figure1()[1].schedule;
        let (order, vf) = mvsr_witness(s2).unwrap();
        let serial = Schedule::serial(&s2.tx_system(), &order);
        let v_serial = VersionFunction::standard(&serial);
        assert!(full_view_equivalent(s2, &vf, &serial, &v_serial));
        assert!(vf.validate(s2).is_ok());
    }

    #[test]
    fn search_agrees_with_definition_exhaustively() {
        // Small two-transaction system where MVSR and VSR differ on some
        // interleavings.
        let sys = Schedule::parse("Ra(x) Wa(x) Ra(y) Wa(y) Rb(x) Rb(y) Wb(y)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(is_mvsr(&s), is_mvsr_by_definition(&s), "schedule {s}");
        }
    }

    #[test]
    fn vsr_implies_mvsr_exhaustively() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(y)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            if crate::vsr::is_vsr(&s) {
                assert!(is_mvsr(&s), "VSR but not MVSR: {s}");
            }
        }
    }

    #[test]
    fn mvcsr_implies_mvsr_exhaustively_theorem3() {
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            if crate::mvcsr::is_mvcsr(&s) {
                assert!(is_mvsr(&s), "MVCSR but not MVSR: {s}");
            }
        }
    }

    #[test]
    fn non_mvsr_schedule_has_no_witness() {
        let s1 = &mvcc_core::examples::figure1()[0].schedule;
        assert!(mvsr_witness(s1).is_none());
        assert!(!is_mvsr_by_definition(s1));
    }

    #[test]
    fn all_serializations_of_independent_transactions() {
        let s = Schedule::parse("Ra(x) Wb(y)").unwrap();
        assert_eq!(all_serializations(&s).len(), 2);
    }
}
