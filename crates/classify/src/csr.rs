//! Conflict-serializability (CSR): the classical polynomial-time class.
//!
//! The *conflict graph* of a schedule has the transactions as nodes and an
//! arc from `A` to `B` if a step of `A` is followed in the schedule by a
//! conflicting step of `B` (same entity, at least one write).  A schedule is
//! CSR iff its conflict graph is acyclic, iff it is conflict-equivalent to a
//! serial schedule; CSR schedules are exactly the schedules obtainable by
//! locking schedulers [Yannakakis 1981], which is why the paper treats CSR as
//! the single-version yardstick that MVCSR generalises.

use mvcc_core::conflict::sv_conflict_pairs;
use mvcc_core::{Schedule, TxId};
use mvcc_graph::topo::topological_sort;
use mvcc_graph::{DiGraph, NodeId};
use std::collections::HashMap;

/// The conflict graph of a schedule, together with the mapping between graph
/// nodes and transaction ids.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// The graph: one node per transaction.
    pub graph: DiGraph,
    /// Node id of each transaction.
    pub node_of_tx: HashMap<TxId, NodeId>,
    /// Transaction of each node, indexed by node id.
    pub tx_of_node: Vec<TxId>,
}

impl ConflictGraph {
    fn new(txs: &[TxId]) -> Self {
        let mut graph = DiGraph::new();
        let mut node_of_tx = HashMap::new();
        let mut tx_of_node = Vec::new();
        for &tx in txs {
            let n = graph.add_node(format!("{tx}"));
            node_of_tx.insert(tx, n);
            tx_of_node.push(tx);
        }
        ConflictGraph {
            graph,
            node_of_tx,
            tx_of_node,
        }
    }

    /// Converts a topological order of the graph into a transaction order.
    pub fn order_to_txs(&self, order: &[NodeId]) -> Vec<TxId> {
        order.iter().map(|n| self.tx_of_node[n.index()]).collect()
    }
}

/// Builds the (single-version) conflict graph of `schedule`.
pub fn conflict_graph(schedule: &Schedule) -> ConflictGraph {
    let txs = schedule.tx_ids();
    let mut cg = ConflictGraph::new(&txs);
    for pair in sv_conflict_pairs(schedule) {
        let from = cg.node_of_tx[&pair.first_tx];
        let to = cg.node_of_tx[&pair.second_tx];
        if from != to {
            cg.graph.add_arc(from, to);
        }
    }
    cg
}

/// `true` iff `schedule` is conflict-serializable.
pub fn is_csr(schedule: &Schedule) -> bool {
    topological_sort(&conflict_graph(schedule).graph).is_some()
}

/// Returns a serial order witnessing conflict-serializability (a topological
/// order of the conflict graph), or `None` if the schedule is not CSR.
pub fn csr_witness(schedule: &Schedule) -> Option<Vec<TxId>> {
    let cg = conflict_graph(schedule);
    topological_sort(&cg.graph).map(|order| cg.order_to_txs(&order))
}

/// Reference implementation used by tests: CSR via the definition, i.e.
/// "conflict-equivalent to some serial schedule" by enumerating all serial
/// orders.  Exponential; small inputs only.
pub fn is_csr_by_definition(schedule: &Schedule) -> bool {
    let sys = schedule.tx_system();
    let ids = sys.tx_ids();
    permutations(&ids).into_iter().any(|order| {
        let serial = Schedule::serial(&sys, &order);
        mvcc_core::equivalence::conflict_equivalent(schedule, &serial)
    })
}

pub(crate) fn permutations(items: &[TxId]) -> Vec<Vec<TxId>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_schedules_are_csr() {
        let s = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(x)").unwrap();
        assert!(is_csr(&s));
        assert_eq!(csr_witness(&s), Some(vec![TxId(1), TxId(2)]));
    }

    #[test]
    fn lost_update_anomaly_is_not_csr() {
        let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
        assert!(!is_csr(&s));
        assert!(csr_witness(&s).is_none());
    }

    #[test]
    fn conflict_graph_arcs_follow_schedule_order() {
        let s = Schedule::parse("Ra(x) Wb(x) Wa(y) Rb(y)").unwrap();
        let cg = conflict_graph(&s);
        let a = cg.node_of_tx[&TxId(1)];
        let b = cg.node_of_tx[&TxId(2)];
        assert!(cg.graph.has_arc(a, b), "R1(x) before W2(x)");
        assert!(cg.graph.has_arc(a, b), "W1(y) before R2(y)");
        assert!(!cg.graph.has_arc(b, a));
        assert!(is_csr(&s));
    }

    #[test]
    fn witness_is_conflict_equivalent() {
        let s = Schedule::parse("Ra(x) Wb(y) Wa(x) Rc(y) Wc(z)").unwrap();
        let order = csr_witness(&s).unwrap();
        let serial = Schedule::serial(&s.tx_system(), &order);
        assert!(mvcc_core::equivalence::conflict_equivalent(&s, &serial));
    }

    #[test]
    fn graph_test_agrees_with_definition_on_all_interleavings() {
        // Exhaustive check over every interleaving of a small system.
        let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x)")
            .unwrap()
            .tx_system();
        for s in Schedule::all_interleavings(&sys) {
            assert_eq!(is_csr(&s), is_csr_by_definition(&s), "schedule {s}");
        }
    }

    #[test]
    fn csr_example_5_of_figure_1_is_not_csr() {
        let s5 = &mvcc_core::examples::figure1()[4];
        assert!(!is_csr(&s5.schedule));
    }

    #[test]
    fn single_transaction_is_always_csr() {
        let s = Schedule::parse("Ra(x) Wa(x) Ra(y) Wa(y)").unwrap();
        assert!(is_csr(&s));
        assert_eq!(csr_witness(&s), Some(vec![TxId(1)]));
    }
}
