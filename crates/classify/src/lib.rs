//! # mvcc-classify
//!
//! Schedule classifiers for every correctness class that appears in
//! Hadzilacos & Papadimitriou's *Algorithmic Aspects of Multiversion
//! Concurrency Control*:
//!
//! | class | definition | complexity | module |
//! |-------|------------|------------|--------|
//! | serial | transactions run back-to-back | linear | [`taxonomy`] |
//! | CSR | conflict-equivalent to a serial schedule (conflict graph acyclic) | polynomial | [`csr`] |
//! | VSR ("SR") | view-equivalent to a serial schedule | NP-complete | [`vsr`] |
//! | MVCSR | multiversion-conflict-equivalent to a serial schedule (MVCG acyclic, Theorem 1) | polynomial | [`mvcsr`] |
//! | MVSR | some version function makes it view-equivalent to a serial schedule | NP-complete | [`mvsr`] |
//! | DMVSR | MVSR after patching readless writes (\[PK84\]) | NP-complete | [`dmvsr`] |
//!
//! Each NP-complete classifier is an exact search with pruning plus, where
//! available, an independent formulation (the VSR polygraph) used for
//! cross-validation.  [`taxonomy`] combines the classifiers into the region
//! map of the paper's Figure 1, and [`swaps`] provides the
//! swap-characterisation of MVCSR (Theorem 2).
//!
//! ```
//! use mvcc_core::Schedule;
//! use mvcc_classify::taxonomy::classify;
//!
//! let s = Schedule::parse("Ra(x) Rb(x) Wa(x) Wb(x)").unwrap();
//! let c = classify(&s);
//! assert!(!c.mvsr, "Figure 1, example (1) is not even MVSR");
//! assert!(!c.csr && !c.vsr && !c.mvcsr);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod dmvsr;
pub mod mvcsr;
pub mod mvsr;
pub mod serialization;
pub mod swaps;
pub mod taxonomy;
pub mod vsr;

pub use csr::{conflict_graph, csr_witness, is_csr};
pub use mvcsr::{is_mvcsr, mv_conflict_graph, mvcsr_witness};
pub use mvsr::{is_mvsr, mvsr_witness};
pub use taxonomy::{classify, Classification};
pub use vsr::is_vsr;
