//! Random polygraphs and random restricted CNF formulas for the reduction
//! benchmarks (experiments E5, E7, E10).

use mvcc_graph::{NodeId, Polygraph};
use mvcc_reductions::sat::{CnfFormula, Literal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a random polygraph with `nodes` nodes, roughly `arc_density`
/// mandatory arcs per node pair "downhill" (so assumption (c) holds) and
/// `choices` choices whose first branches also point downhill (so assumption
/// (b) holds).  The polygraphs are exactly the shape the Theorem 4/5
/// constructions expect.
pub fn random_polygraph(nodes: usize, arc_density: f64, choices: usize, seed: u64) -> Polygraph {
    assert!(nodes >= 3, "need at least three nodes for a choice");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Polygraph::with_nodes(nodes);
    // Mandatory arcs: from a higher-numbered node to a lower-numbered one,
    // which keeps the base graph acyclic.
    for a in 0..nodes {
        for b in (a + 1)..nodes {
            if rng.gen_bool(arc_density.clamp(0.0, 1.0)) {
                p.add_arc(NodeId(b as u32), NodeId(a as u32));
            }
        }
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < choices && attempts < choices * 20 {
        attempts += 1;
        let mut picks: Vec<u32> = (0..3).map(|_| rng.gen_range(0..nodes as u32)).collect();
        picks.sort_unstable();
        picks.dedup();
        if picks.len() < 3 {
            continue;
        }
        // First branch (j, k) points downhill: j > k.
        let (k, i, j) = (picks[0], picks[1], picks[2]);
        p.add_choice(NodeId(j), NodeId(k), NodeId(i));
        if !p.base_acyclic() || !p.first_branches_acyclic() {
            // Adding the mandatory arc (i, j) may have broken assumption (c)
            // (it points uphill); back out by rebuilding without it.
            let mut q = Polygraph::with_nodes(nodes);
            for (a, b) in p.arcs() {
                if (a, b) != (NodeId(i), NodeId(j)) {
                    q.add_arc(a, b);
                }
            }
            for c in p.choices().iter().take(p.choice_count() - 1) {
                q.add_choice(c.j, c.k, c.i);
            }
            p = q;
            continue;
        }
        added += 1;
    }
    p
}

/// Generates a random formula in the paper's restricted fragment: `clauses`
/// clauses of two or three literals, each clause all-positive or
/// all-negative.
pub fn random_restricted_formula(variables: usize, clauses: usize, seed: u64) -> CnfFormula {
    assert!(variables >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut f = CnfFormula::new(variables);
    for _ in 0..clauses {
        let len = if rng.gen_bool(0.5) {
            2
        } else {
            3.min(variables)
        };
        let positive = rng.gen_bool(0.5);
        let mut vars: Vec<usize> = Vec::new();
        while vars.len() < len {
            let v = rng.gen_range(0..variables);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        f.add_clause(
            vars.into_iter()
                .map(|v| {
                    if positive {
                        Literal::pos(v)
                    } else {
                        Literal::neg(v)
                    }
                })
                .collect(),
        );
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_polygraph_satisfies_the_assumptions() {
        for seed in 0..10 {
            let p = random_polygraph(6, 0.3, 3, seed);
            assert!(p.base_acyclic(), "assumption (c)");
            assert!(p.first_branches_acyclic(), "assumption (b)");
            assert!(p.choice_count() <= 3);
        }
    }

    #[test]
    fn random_polygraph_is_deterministic_per_seed() {
        let a = random_polygraph(6, 0.4, 4, 7);
        let b = random_polygraph(6, 0.4, 4, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn restricted_formula_shape() {
        let f = random_restricted_formula(5, 8, 3);
        assert_eq!(f.num_vars, 5);
        assert_eq!(f.clauses.len(), 8);
        assert!(f.is_restricted());
        for c in &f.clauses {
            let vars: std::collections::BTreeSet<_> = c.iter().map(|l| l.var).collect();
            assert_eq!(vars.len(), c.len(), "duplicate variable in clause");
        }
    }

    #[test]
    fn restricted_formulas_use_both_polarities_and_are_solvable() {
        // Sparse monotone formulas are almost always satisfiable (that is
        // fine: the reduction benchmarks care about instance *size*, not the
        // SAT/UNSAT split); check that both clause polarities occur and that
        // the DPLL solver handles every generated instance.
        let mut pos_clauses = 0;
        let mut neg_clauses = 0;
        for seed in 0..20 {
            let f = random_restricted_formula(3, 6, seed);
            for c in &f.clauses {
                if c[0].positive {
                    pos_clauses += 1;
                } else {
                    neg_clauses += 1;
                }
            }
            let _ = f.satisfiable_dpll();
        }
        assert!(pos_clauses > 0 && neg_clauses > 0);
    }

    #[test]
    #[should_panic(expected = "at least three nodes")]
    fn tiny_polygraph_request_panics() {
        let _ = random_polygraph(2, 0.5, 1, 0);
    }
}
