//! Near-serial schedules: serial schedules perturbed by random adjacent
//! swaps.
//!
//! Theorem 2 characterises MVCSR as the schedules from which a serial
//! schedule can be reached by switching adjacent non-(multiversion-)
//! conflicting steps.  The switch relation is *asymmetric* — walking it
//! forward from a serial schedule may create new read-before-write pairs
//! and leave MVCSR — so the generator is deliberately conservative: it only
//! switches adjacent steps that do not multiversion-conflict **in either
//! order** (different transactions, and not a read/write pair on the same
//! entity).  Such switches leave the multiversion conflict graph untouched,
//! so every generated schedule is MVCSR and can be switched back, giving the
//! "distance from serial" axis of the Theorem 2 table a sound population.

use mvcc_core::conflict::mv_conflicts;
use mvcc_core::{Schedule, TransactionSystem, TxId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A serial schedule of `system` (in ascending `TxId` order) perturbed by
/// `swaps` random switches of adjacent steps of different transactions that
/// do not multiversion-conflict in either order.
///
/// Returns the schedule and the number of switches actually applied (a swap
/// attempt is skipped when the sampled position is not switchable).
pub fn perturbed_serial(system: &TransactionSystem, swaps: usize, seed: u64) -> (Schedule, usize) {
    let order: Vec<TxId> = system.tx_ids();
    let mut schedule = Schedule::serial(system, &order);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut applied = 0;
    if schedule.len() < 2 {
        return (schedule, 0);
    }
    for _ in 0..swaps {
        let i = rng.gen_range(0..schedule.len() - 1);
        let a = schedule.steps()[i];
        let b = schedule.steps()[i + 1];
        if a.tx == b.tx || mv_conflicts(&a, &b) || mv_conflicts(&b, &a) {
            continue;
        }
        if let Some(next) = schedule.swap_adjacent(i) {
            schedule = next;
            applied += 1;
        }
    }
    (schedule, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_transaction_system, WorkloadConfig};

    #[test]
    fn zero_swaps_returns_the_serial_schedule() {
        let sys = random_transaction_system(&WorkloadConfig::default());
        let (s, applied) = perturbed_serial(&sys, 0, 1);
        assert!(s.is_serial());
        assert_eq!(applied, 0);
    }

    #[test]
    fn perturbed_schedules_stay_mvcsr() {
        // Theorem 2 forward direction, empirically: legal switches preserve
        // MVCSR membership.
        let cfg = WorkloadConfig {
            transactions: 4,
            steps_per_transaction: 3,
            entities: 4,
            read_ratio: 0.6,
            ..WorkloadConfig::default()
        };
        let sys = random_transaction_system(&cfg);
        for swaps in [1, 5, 20, 100] {
            let (s, _) = perturbed_serial(&sys, swaps, swaps as u64);
            assert!(
                mvcc_classify::is_mvcsr(&s),
                "{swaps} swaps broke MVCSR: {s}"
            );
            assert!(s.is_shuffle_of(&sys));
        }
    }

    #[test]
    fn more_swaps_generally_move_further_from_serial() {
        let cfg = WorkloadConfig {
            transactions: 4,
            steps_per_transaction: 4,
            entities: 8,
            ..WorkloadConfig::default()
        };
        let sys = random_transaction_system(&cfg);
        let (few, applied_few) = perturbed_serial(&sys, 2, 3);
        let (many, applied_many) = perturbed_serial(&sys, 200, 3);
        assert!(applied_many >= applied_few);
        // The heavily perturbed schedule should no longer be serial.
        assert!(!many.is_serial() || few.is_serial());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let sys = random_transaction_system(&WorkloadConfig::default());
        let (a, _) = perturbed_serial(&sys, 50, 9);
        let (b, _) = perturbed_serial(&sys, 50, 9);
        assert_eq!(a.steps(), b.steps());
    }

    #[test]
    fn empty_system_is_handled() {
        let sys = TransactionSystem::default();
        let (s, applied) = perturbed_serial(&sys, 10, 0);
        assert!(s.is_empty());
        assert_eq!(applied, 0);
    }
}
