//! # mvcc-workload
//!
//! Workload generation for the experiment harness: random transaction
//! systems, random interleavings, near-serial perturbations (the Theorem 2
//! metric), Zipfian hot-spot access patterns, and random polygraphs / CNF
//! formulas feeding the reduction benchmarks.
//!
//! Everything is seeded and deterministic (xoshiro-style generators from the
//! `rand` crate with explicit seeds), so every table printed by `mvcc-bench`
//! can be regenerated exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod perturb;
pub mod poly_gen;
pub mod schedule_gen;
pub mod suites;
pub mod txn_gen;
pub mod zipf;

pub use config::{LoadProfile, WorkloadConfig};
pub use perturb::perturbed_serial;
pub use poly_gen::{random_polygraph, random_restricted_formula};
pub use schedule_gen::{random_interleaving, random_interleavings};
pub use txn_gen::{random_accesses, random_transaction_system};
pub use zipf::Zipfian;
