//! Zipfian entity selection (hot-spot access patterns).
//!
//! The acceptance-rate experiments sweep the skew parameter θ to show how
//! contention magnifies the gap between single-version and multiversion
//! schedulers: the hotter the hot spot, the more read-write conflicts, the
//! more a multiversion scheduler gains by serving old versions.

use rand::Rng;

/// A Zipfian distribution over `0..n` with skew parameter `theta`.
///
/// `theta = 0` is the uniform distribution; larger values concentrate mass
/// on the smallest indices.  Setup precomputes the normalised cumulative
/// weights in O(n); sampling inverts the CDF with a `partition_point`
/// binary search, so each draw is O(log n) — the engine load harness draws
/// one entity per step, millions of times per run, so this is a hot path.
#[derive(Debug, Clone)]
pub struct Zipfian {
    cumulative: Vec<f64>,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `0..n` with skew `theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!(theta >= 0.0, "negative skew");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipfian { cumulative }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` if the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples an index in `0..n`: the first index whose cumulative weight
    /// exceeds a uniform draw (inverse CDF by binary search).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cumulative
            .partition_point(|&c| c <= u)
            .min(self.cumulative.len() - 1)
    }

    /// The probability of index `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[i] - self.cumulative[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_is_zero() {
        let z = Zipfian::new(4, 0.0);
        for i in 0..4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn skew_concentrates_on_small_indices() {
        let z = Zipfian::new(10, 1.2);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(9));
        let total: f64 = (0..10).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_are_in_range_and_biased() {
        let z = Zipfian::new(8, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().sum::<usize>() == 4000);
        assert!(counts[0] > counts[7], "hot key sampled more often");
    }

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let z = Zipfian::new(32, 0.9);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..256).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same stream");
        assert_ne!(draw(42), draw(43), "different seed, different stream");
    }

    #[test]
    fn empirical_frequencies_match_probabilities() {
        // Distribution sanity: with many draws, the empirical frequency of
        // every index stays within a loose absolute tolerance of its exact
        // probability (≫ 5σ for n = 20 000 draws, so deterministic given
        // the seeded stream).
        for &theta in &[0.0, 0.9, 1.4] {
            let n = 6;
            let z = Zipfian::new(n, theta);
            let mut rng = SmallRng::seed_from_u64(0xfeed);
            let draws = 20_000usize;
            let mut counts = vec![0usize; n];
            for _ in 0..draws {
                counts[z.sample(&mut rng)] += 1;
            }
            for (i, &count) in counts.iter().enumerate() {
                let empirical = count as f64 / draws as f64;
                let exact = z.probability(i);
                assert!(
                    (empirical - exact).abs() < 0.02,
                    "theta={theta} index={i}: empirical {empirical:.4} vs exact {exact:.4}"
                );
            }
        }
    }

    #[test]
    fn extreme_draws_hit_the_boundary_indices() {
        // partition_point must map u ≈ 0 to index 0 and u ≈ 1 to the last
        // index (the final cumulative weight is 1.0 up to rounding, so a
        // draw just below 1.0 must not fall off the end).
        let z = Zipfian::new(3, 1.0);
        assert_eq!(z.cumulative.partition_point(|&c| c <= 0.0).min(2), 0);
        assert_eq!(
            z.cumulative
                .partition_point(|&c| c <= 1.0 - 1e-12)
                .min(z.len() - 1),
            2
        );
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn empty_support_panics() {
        let _ = Zipfian::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "negative skew")]
    fn negative_skew_panics() {
        let _ = Zipfian::new(4, -0.5);
    }

    #[test]
    fn harmonic_boundary_theta_one_is_exact() {
        // θ = 1.0 is the harmonic series (weights 1/k): construction must
        // neither panic nor loop, the distribution must normalize, and the
        // weight ratios must be exactly harmonic: p(k-1)/p(k) = (k+1)/k.
        let n = 64;
        let z = Zipfian::new(n, 1.0);
        let total: f64 = (0..n).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "normalized, got {total}");
        for k in 1..8usize {
            let ratio = z.probability(k - 1) / z.probability(k);
            let exact = (k + 1) as f64 / k as f64;
            assert!(
                (ratio - exact).abs() < 1e-9,
                "p({})/p({k}) = {ratio}, want {exact}",
                k - 1
            );
        }
        // Sampling stays in range at the boundary.
        let mut rng = SmallRng::seed_from_u64(0x21f);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn len_reports_support_size() {
        let z = Zipfian::new(5, 0.5);
        assert_eq!(z.len(), 5);
        assert!(!z.is_empty());
    }
}
