//! Random transaction systems.

use crate::{WorkloadConfig, Zipfian};
use mvcc_core::{Action, EntityId, Transaction, TransactionSystem, TxId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates one transaction's access list: `steps` accesses whose
/// entities are drawn from `zipf` and whose action is a read with
/// probability `read_ratio`.  A transaction never writes the same entity
/// twice (re-drawn up to 8 times, then demoted to a read), mirroring the
/// paper's model where a transaction's second write of an entity would
/// simply supersede the first.
///
/// This is the single source of the access-generation policy: both the
/// schedule-level [`random_transaction_system`] and `mvcc-engine`'s
/// closed-loop load harness call it, so engine load and offline workloads
/// cannot silently diverge.
pub fn random_accesses<R: Rng + ?Sized>(
    rng: &mut R,
    zipf: &Zipfian,
    steps: usize,
    read_ratio: f64,
) -> Vec<(Action, EntityId)> {
    let mut accesses: Vec<(Action, EntityId)> = Vec::with_capacity(steps);
    let mut written: Vec<EntityId> = Vec::new();
    for _ in 0..steps {
        let action = if rng.gen_bool(read_ratio) {
            Action::Read
        } else {
            Action::Write
        };
        let mut entity = EntityId(zipf.sample(rng) as u32);
        if action == Action::Write {
            let mut attempts = 0;
            while written.contains(&entity) && attempts < 8 {
                entity = EntityId(zipf.sample(rng) as u32);
                attempts += 1;
            }
            if written.contains(&entity) {
                // Fall back to a read when the hot set is exhausted.
                accesses.push((Action::Read, entity));
                continue;
            }
            written.push(entity);
        }
        accesses.push((action, entity));
    }
    accesses
}

/// Generates a random transaction system according to `config`.
///
/// Each transaction's accesses come from [`random_accesses`] (Zipfian
/// entities with skew `config.zipf_theta`, reads with probability
/// `config.read_ratio`, no duplicate writes).
pub fn random_transaction_system(config: &WorkloadConfig) -> TransactionSystem {
    // lint: allow(unwrap) — generator config is validated at construction, fail fast
    config.validate().expect("invalid workload configuration");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = Zipfian::new(config.entities, config.zipf_theta);
    let mut transactions = Vec::with_capacity(config.transactions);
    for t in 0..config.transactions {
        let accesses = random_accesses(
            &mut rng,
            &zipf,
            config.steps_per_transaction,
            config.read_ratio,
        );
        transactions.push(Transaction::new(TxId(t as u32 + 1), accesses));
    }
    TransactionSystem::new(transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_shape() {
        let config = WorkloadConfig {
            transactions: 5,
            steps_per_transaction: 3,
            entities: 4,
            ..WorkloadConfig::default()
        };
        let sys = random_transaction_system(&config);
        assert_eq!(sys.len(), 5);
        assert!(sys.transactions().iter().all(|t| t.len() == 3));
        assert!(sys.entities().iter().all(|e| e.index() < config.entities));
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let config = WorkloadConfig::default();
        let a = random_transaction_system(&config);
        let b = random_transaction_system(&config);
        assert_eq!(a, b);
        let c = random_transaction_system(&config.with_seed(999));
        assert_ne!(a, c);
    }

    #[test]
    fn read_ratio_extremes() {
        let all_reads = random_transaction_system(&WorkloadConfig {
            read_ratio: 1.0,
            ..WorkloadConfig::default()
        });
        assert!(all_reads
            .transactions()
            .iter()
            .all(|t| t.write_set().is_empty()));

        let all_writes = random_transaction_system(&WorkloadConfig {
            read_ratio: 0.0,
            entities: 64,
            ..WorkloadConfig::default()
        });
        assert!(all_writes
            .transactions()
            .iter()
            .all(|t| t.read_set().is_empty()));
    }

    #[test]
    fn no_transaction_writes_an_entity_twice() {
        let config = WorkloadConfig {
            transactions: 10,
            steps_per_transaction: 6,
            entities: 3,
            read_ratio: 0.2,
            zipf_theta: 1.0,
            seed: 17,
        };
        let sys = random_transaction_system(&config);
        for t in sys.transactions() {
            let writes: Vec<_> = t
                .accesses
                .iter()
                .filter(|(a, _)| a.is_write())
                .map(|&(_, e)| e)
                .collect();
            let distinct: std::collections::BTreeSet<_> = writes.iter().collect();
            assert_eq!(writes.len(), distinct.len(), "duplicate write in {t}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload configuration")]
    fn invalid_config_panics() {
        let config = WorkloadConfig {
            entities: 0,
            ..Default::default()
        };
        let _ = random_transaction_system(&config);
    }
}
