//! Random interleavings of a transaction system.

use crate::WorkloadConfig;
use mvcc_core::{Schedule, Step, TransactionSystem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Produces one uniformly random interleaving of `system` (uniform over all
/// shuffles: at each position, a transaction is chosen with probability
/// proportional to its number of remaining steps).
pub fn random_interleaving(system: &TransactionSystem, seed: u64) -> Schedule {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cursors: Vec<usize> = vec![0; system.len()];
    let mut remaining: Vec<usize> = system.transactions().iter().map(|t| t.len()).collect();
    let mut total: usize = remaining.iter().sum();
    let mut steps: Vec<Step> = Vec::with_capacity(total);
    while total > 0 {
        let mut pick = rng.gen_range(0..total);
        let mut chosen = 0;
        for (idx, &rem) in remaining.iter().enumerate() {
            if pick < rem {
                chosen = idx;
                break;
            }
            pick -= rem;
        }
        let tx = &system.transactions()[chosen];
        let (action, entity) = tx.accesses[cursors[chosen]];
        steps.push(Step {
            tx: tx.id,
            action,
            entity,
        });
        cursors[chosen] += 1;
        remaining[chosen] -= 1;
        total -= 1;
    }
    Schedule::from_steps(steps)
}

/// Produces `count` random interleavings of the workload described by
/// `config` (a fresh transaction system per repetition, derived seeds).
pub fn random_interleavings(config: &WorkloadConfig, count: usize) -> Vec<Schedule> {
    (0..count)
        .map(|i| {
            let cfg = config.with_seed(config.seed.wrapping_add(i as u64).wrapping_mul(0x9e37));
            let sys = crate::random_transaction_system(&cfg);
            random_interleaving(&sys, cfg.seed ^ 0xabcdef)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_transaction_system;

    #[test]
    fn interleaving_is_a_shuffle_of_the_system() {
        let sys = random_transaction_system(&WorkloadConfig::default());
        let s = random_interleaving(&sys, 1);
        assert!(s.is_shuffle_of(&sys));
        assert_eq!(s.len(), sys.total_steps());
    }

    #[test]
    fn different_seeds_give_different_interleavings() {
        let sys = random_transaction_system(&WorkloadConfig::default());
        let a = random_interleaving(&sys, 1);
        let b = random_interleaving(&sys, 2);
        let c = random_interleaving(&sys, 1);
        assert_eq!(a.steps(), c.steps(), "same seed, same interleaving");
        assert_ne!(
            a.steps(),
            b.steps(),
            "different seed, different interleaving"
        );
    }

    #[test]
    fn batch_generation_yields_the_requested_count() {
        let batch = random_interleavings(&WorkloadConfig::default(), 7);
        assert_eq!(batch.len(), 7);
        for s in &batch {
            assert_eq!(s.len(), WorkloadConfig::default().total_steps());
        }
    }

    #[test]
    fn single_transaction_interleaving_is_serial() {
        let cfg = WorkloadConfig {
            transactions: 1,
            ..WorkloadConfig::default()
        };
        let sys = random_transaction_system(&cfg);
        let s = random_interleaving(&sys, 3);
        assert!(s.is_serial());
    }
}
