//! Named workload suites used by the experiment harness.
//!
//! Each suite is the parameter sweep behind one experiment table of
//! `EXPERIMENTS.md`; keeping them here (rather than inline in the bench
//! binaries) makes the tables reproducible from library code and testable.

use crate::WorkloadConfig;

/// The base configuration of experiment E9.
pub fn e9_base() -> WorkloadConfig {
    WorkloadConfig::default()
}

/// E9 contention sweep: the number of entities shrinks (and the hot-spot
/// skew grows) so that read-write conflicts become more frequent.
pub fn e9_contention_sweep() -> Vec<WorkloadConfig> {
    let base = e9_base();
    vec![
        WorkloadConfig {
            entities: 64,
            zipf_theta: 0.0,
            ..base
        },
        WorkloadConfig {
            entities: 16,
            zipf_theta: 0.0,
            ..base
        },
        WorkloadConfig {
            entities: 16,
            zipf_theta: 0.9,
            ..base
        },
        WorkloadConfig {
            entities: 4,
            zipf_theta: 0.0,
            ..base
        },
        WorkloadConfig {
            entities: 4,
            zipf_theta: 0.9,
            ..base
        },
    ]
}

/// E9 read-ratio sweep.
pub fn e9_read_ratio_sweep() -> Vec<WorkloadConfig> {
    [0.5, 0.8, 0.95]
        .into_iter()
        .map(|read_ratio| WorkloadConfig {
            read_ratio,
            ..e9_base()
        })
        .collect()
}

/// E9 scale sweep: more and longer transactions.
pub fn e9_scale_sweep() -> Vec<WorkloadConfig> {
    vec![
        WorkloadConfig {
            transactions: 4,
            steps_per_transaction: 4,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 8,
            steps_per_transaction: 4,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 16,
            steps_per_transaction: 4,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 8,
            steps_per_transaction: 8,
            ..e9_base()
        },
    ]
}

/// E10 classifier scaling sweep: schedule sizes for the polynomial/NP
/// separation table (the NP classifiers are only run on the small end).
pub fn e10_sizes() -> Vec<WorkloadConfig> {
    vec![
        WorkloadConfig {
            transactions: 2,
            steps_per_transaction: 4,
            entities: 4,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 4,
            steps_per_transaction: 4,
            entities: 8,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 8,
            steps_per_transaction: 4,
            entities: 8,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 16,
            steps_per_transaction: 8,
            entities: 16,
            ..e9_base()
        },
        WorkloadConfig {
            transactions: 32,
            steps_per_transaction: 8,
            entities: 32,
            ..e9_base()
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suite_configurations_are_valid() {
        for cfg in e9_contention_sweep()
            .into_iter()
            .chain(e9_read_ratio_sweep())
            .chain(e9_scale_sweep())
            .chain(e10_sizes())
            .chain(std::iter::once(e9_base()))
        {
            assert!(cfg.validate().is_ok(), "invalid config {cfg:?}");
        }
    }

    #[test]
    fn sweeps_have_multiple_points() {
        assert!(e9_contention_sweep().len() >= 4);
        assert_eq!(e9_read_ratio_sweep().len(), 3);
        assert!(e9_scale_sweep().len() >= 3);
        assert!(e10_sizes().len() >= 4);
    }

    #[test]
    fn contention_sweep_varies_entities_or_skew() {
        let sweep = e9_contention_sweep();
        let distinct: std::collections::BTreeSet<String> =
            sweep.iter().map(|c| c.label()).collect();
        assert_eq!(distinct.len(), sweep.len());
    }
}
