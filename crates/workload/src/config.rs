//! Workload configuration.
//!
//! Two configuration surfaces live here:
//!
//! * [`WorkloadConfig`] — the schedule-level experiment workloads (E9 and
//!   friends): a fixed transaction system, replayed offline;
//! * [`LoadProfile`] — the engine load harness (experiment E12): an open
//!   system of worker threads issuing transactions against `mvcc-engine`
//!   until an operation budget is exhausted.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Parameters of a randomly generated transaction workload.
///
/// The defaults correspond to the "base" workload of experiment E9 (see
/// `EXPERIMENTS.md`); the sweep tables vary one field at a time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of transactions.
    pub transactions: usize,
    /// Steps per transaction.
    pub steps_per_transaction: usize,
    /// Number of distinct entities.
    pub entities: usize,
    /// Probability that a step is a read (as opposed to a write).
    pub read_ratio: f64,
    /// Zipfian skew of entity selection (`0.0` = uniform).
    pub zipf_theta: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            transactions: 8,
            steps_per_transaction: 4,
            entities: 16,
            read_ratio: 0.8,
            zipf_theta: 0.0,
            seed: 0x5eed,
        }
    }
}

impl WorkloadConfig {
    /// Total number of steps the workload will contain.
    pub fn total_steps(&self) -> usize {
        self.transactions * self.steps_per_transaction
    }

    /// Returns a copy with a different seed (used to generate repetitions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A human-readable one-line description used as a table row label.
    pub fn label(&self) -> String {
        format!(
            "txns={} steps={} entities={} reads={:.0}% zipf={:.1}",
            self.transactions,
            self.steps_per_transaction,
            self.entities,
            self.read_ratio * 100.0,
            self.zipf_theta
        )
    }

    /// Basic sanity checks (non-zero sizes, ratios within range).
    pub fn validate(&self) -> Result<(), String> {
        if self.transactions == 0 || self.steps_per_transaction == 0 || self.entities == 0 {
            return Err("transactions, steps and entities must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.read_ratio) {
            return Err("read_ratio must lie in [0, 1]".into());
        }
        if self.zipf_theta < 0.0 {
            return Err("zipf_theta must be non-negative".into());
        }
        Ok(())
    }
}

/// Parameters of a closed-loop engine load run (`mvcc-engine`).
///
/// The profile round-trips through its `Display` form — a space-separated
/// `key=value` line such as
/// `threads=4 shards=2 ops=1000 entities=16 steps=4 reads=0.80 theta=0.90 seed=24269`
/// — so sweep scripts and bench tables can log and replay profiles
/// verbatim ([`LoadProfile::from_str`] parses exactly that form).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Number of worker threads driving sessions concurrently.
    pub threads: usize,
    /// Number of store shards (entities are hashed over them).
    pub shards: usize,
    /// Total operation budget: the run stops once this many read/write
    /// steps have been claimed by workers ("duration in ops").
    pub ops: usize,
    /// Number of distinct entities.
    pub entities: usize,
    /// Steps per transaction.
    pub steps_per_transaction: usize,
    /// Probability that a step is a read (the read/write mix).
    pub read_ratio: f64,
    /// Zipfian skew of entity selection (`0.0` = uniform).
    pub zipf_theta: f64,
    /// Random seed; each worker derives its own stream from it.
    pub seed: u64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            threads: 4,
            shards: 2,
            ops: 1_000,
            entities: 16,
            steps_per_transaction: 4,
            read_ratio: 0.8,
            zipf_theta: 0.0,
            seed: 0x5eed,
        }
    }
}

impl LoadProfile {
    /// Returns a copy with a different seed (used to generate repetitions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Basic sanity checks (non-zero sizes, ratios within range).
    pub fn validate(&self) -> Result<(), String> {
        if self.threads == 0 || self.shards == 0 {
            return Err("threads and shards must be positive".into());
        }
        if self.ops == 0 || self.entities == 0 || self.steps_per_transaction == 0 {
            return Err("ops, entities and steps must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.read_ratio) {
            return Err("read_ratio must lie in [0, 1]".into());
        }
        if self.zipf_theta < 0.0 {
            return Err("zipf_theta must be non-negative".into());
        }
        Ok(())
    }
}

impl fmt::Display for LoadProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "threads={} shards={} ops={} entities={} steps={} reads={:.2} theta={:.2} seed={}",
            self.threads,
            self.shards,
            self.ops,
            self.entities,
            self.steps_per_transaction,
            self.read_ratio,
            self.zipf_theta,
            self.seed
        )
    }
}

impl FromStr for LoadProfile {
    type Err = String;

    /// Parses the `Display` form: all eight `key=value` fields, in any
    /// order, each exactly once.
    fn from_str(text: &str) -> Result<Self, String> {
        let mut profile = LoadProfile::default();
        let mut seen = [false; 8];
        for token in text.split_whitespace() {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("malformed token {token:?} (expected key=value)"))?;
            let idx = match key {
                "threads" => 0,
                "shards" => 1,
                "ops" => 2,
                "entities" => 3,
                "steps" => 4,
                "reads" => 5,
                "theta" => 6,
                "seed" => 7,
                other => return Err(format!("unknown key {other:?}")),
            };
            if seen[idx] {
                return Err(format!("duplicate key {key:?}"));
            }
            seen[idx] = true;
            let bad = || format!("invalid value {value:?} for {key}");
            match key {
                "threads" => profile.threads = value.parse().map_err(|_| bad())?,
                "shards" => profile.shards = value.parse().map_err(|_| bad())?,
                "ops" => profile.ops = value.parse().map_err(|_| bad())?,
                "entities" => profile.entities = value.parse().map_err(|_| bad())?,
                "steps" => profile.steps_per_transaction = value.parse().map_err(|_| bad())?,
                "reads" => profile.read_ratio = value.parse().map_err(|_| bad())?,
                "theta" => profile.zipf_theta = value.parse().map_err(|_| bad())?,
                "seed" => profile.seed = value.parse().map_err(|_| bad())?,
                _ => unreachable!("key validated above"),
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            let names = [
                "threads", "shards", "ops", "entities", "steps", "reads", "theta", "seed",
            ];
            return Err(format!("missing key {:?}", names[missing]));
        }
        profile.validate()?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = WorkloadConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_steps(), 32);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = WorkloadConfig {
            transactions: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = WorkloadConfig {
            read_ratio: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = WorkloadConfig {
            zipf_theta: -1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn label_and_with_seed() {
        let c = WorkloadConfig::default().with_seed(42);
        assert_eq!(c.seed, 42);
        assert!(c.label().contains("txns=8"));
        assert!(c.label().contains("reads=80%"));
    }

    #[test]
    fn load_profile_display_parse_round_trip() {
        let profiles = [
            LoadProfile::default(),
            LoadProfile {
                threads: 8,
                shards: 4,
                ops: 50_000,
                entities: 256,
                steps_per_transaction: 6,
                read_ratio: 0.5,
                zipf_theta: 0.99,
                seed: 7,
            },
            LoadProfile::default().with_seed(12345),
        ];
        for p in profiles {
            let text = p.to_string();
            let parsed: LoadProfile = text.parse().unwrap();
            assert_eq!(parsed, p, "round trip through {text:?}");
        }
    }

    #[test]
    fn load_profile_parse_accepts_any_key_order() {
        let p: LoadProfile =
            "seed=1 theta=0.00 reads=1.00 steps=2 entities=3 ops=10 shards=2 threads=4"
                .parse()
                .unwrap();
        assert_eq!(p.threads, 4);
        assert_eq!(p.read_ratio, 1.0);
        assert_eq!(p.steps_per_transaction, 2);
    }

    #[test]
    fn load_profile_parse_rejects_malformed_input() {
        let default_line = LoadProfile::default().to_string();
        // Unknown key.
        assert!(format!("{default_line} bogus=1")
            .parse::<LoadProfile>()
            .is_err());
        // Duplicate key.
        assert!(format!("{default_line} threads=9")
            .parse::<LoadProfile>()
            .is_err());
        // Missing key.
        assert!("threads=4".parse::<LoadProfile>().is_err());
        // Not key=value.
        assert!(default_line
            .replace("threads=4", "threads")
            .parse::<LoadProfile>()
            .is_err());
        // Bad number.
        assert!(default_line
            .replace("ops=1000", "ops=lots")
            .parse::<LoadProfile>()
            .is_err());
        // Parses but fails validation.
        assert!(default_line
            .replace("reads=0.80", "reads=1.50")
            .parse::<LoadProfile>()
            .is_err());
        assert!(default_line
            .replace("shards=2", "shards=0")
            .parse::<LoadProfile>()
            .is_err());
    }

    #[test]
    fn load_profile_parse_rejects_invalid_domain_values() {
        let default_line = LoadProfile::default().to_string();
        // Negative Zipfian skew parses as a float but fails validation.
        let err = default_line
            .replace("theta=0.00", "theta=-0.50")
            .parse::<LoadProfile>()
            .unwrap_err();
        assert!(err.contains("zipf_theta"), "{err}");
        // Zero entities would give the Zipfian sampler an empty support.
        let err = default_line
            .replace("entities=16", "entities=0")
            .parse::<LoadProfile>()
            .unwrap_err();
        assert!(err.contains("entities"), "{err}");
        // θ = 1.0 exactly (the harmonic-series boundary: weights 1/k) is a
        // valid profile and must round-trip.
        let harmonic: LoadProfile = default_line
            .replace("theta=0.00", "theta=1.00")
            .parse()
            .unwrap();
        assert_eq!(harmonic.zipf_theta, 1.0);
        assert_eq!(
            harmonic.to_string().parse::<LoadProfile>().unwrap(),
            harmonic
        );
    }

    #[test]
    fn load_profile_validation_bounds() {
        assert!(LoadProfile::default().validate().is_ok());
        for broken in [
            LoadProfile {
                threads: 0,
                ..Default::default()
            },
            LoadProfile {
                ops: 0,
                ..Default::default()
            },
            LoadProfile {
                read_ratio: -0.1,
                ..Default::default()
            },
            LoadProfile {
                zipf_theta: -1.0,
                ..Default::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken} should be invalid");
        }
    }
}
