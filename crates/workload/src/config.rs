//! Workload configuration.

use serde::{Deserialize, Serialize};

/// Parameters of a randomly generated transaction workload.
///
/// The defaults correspond to the "base" workload of experiment E9 (see
/// `EXPERIMENTS.md`); the sweep tables vary one field at a time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of transactions.
    pub transactions: usize,
    /// Steps per transaction.
    pub steps_per_transaction: usize,
    /// Number of distinct entities.
    pub entities: usize,
    /// Probability that a step is a read (as opposed to a write).
    pub read_ratio: f64,
    /// Zipfian skew of entity selection (`0.0` = uniform).
    pub zipf_theta: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            transactions: 8,
            steps_per_transaction: 4,
            entities: 16,
            read_ratio: 0.8,
            zipf_theta: 0.0,
            seed: 0x5eed,
        }
    }
}

impl WorkloadConfig {
    /// Total number of steps the workload will contain.
    pub fn total_steps(&self) -> usize {
        self.transactions * self.steps_per_transaction
    }

    /// Returns a copy with a different seed (used to generate repetitions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A human-readable one-line description used as a table row label.
    pub fn label(&self) -> String {
        format!(
            "txns={} steps={} entities={} reads={:.0}% zipf={:.1}",
            self.transactions,
            self.steps_per_transaction,
            self.entities,
            self.read_ratio * 100.0,
            self.zipf_theta
        )
    }

    /// Basic sanity checks (non-zero sizes, ratios within range).
    pub fn validate(&self) -> Result<(), String> {
        if self.transactions == 0 || self.steps_per_transaction == 0 || self.entities == 0 {
            return Err("transactions, steps and entities must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.read_ratio) {
            return Err("read_ratio must lie in [0, 1]".into());
        }
        if self.zipf_theta < 0.0 {
            return Err("zipf_theta must be non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let c = WorkloadConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_steps(), 32);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = WorkloadConfig {
            transactions: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = WorkloadConfig {
            read_ratio: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = WorkloadConfig {
            zipf_theta: -1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn label_and_with_seed() {
        let c = WorkloadConfig::default().with_seed(42);
        assert_eq!(c.seed, 42);
        assert!(c.label().contains("txns=8"));
        assert!(c.label().contains("reads=80%"));
    }
}
