//! Compare the scheduler zoo on a contended workload: the executable form
//! of the paper's claim that multiversion schedulers have "enhanced
//! performance".
//!
//! Run with `cargo run --example scheduler_showdown --release`.

use mvcc_repro::prelude::*;
use mvcc_repro::workload::{random_interleaving, random_transaction_system};

fn main() {
    let config = WorkloadConfig {
        transactions: 8,
        steps_per_transaction: 4,
        entities: 6,
        read_ratio: 0.75,
        zipf_theta: 0.8,
        seed: 42,
    };
    println!("workload: {}\n", config.label());

    let repetitions = 50;
    let mut totals: Vec<(String, bool, f64, f64)> = Vec::new();

    for rep in 0..repetitions {
        let cfg = config.with_seed(config.seed + rep);
        let sys = random_transaction_system(&cfg);
        let schedule = random_interleaving(&sys, rep);

        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(SerialScheduler::new(&sys)),
            Box::new(TwoPhaseLockingScheduler::new(&sys)),
            Box::new(TimestampScheduler::new()),
            Box::new(SgtScheduler::new()),
            Box::new(MvtoScheduler::new()),
            Box::new(MvSgtScheduler::new()),
        ];
        for (idx, mut sched) in schedulers.into_iter().enumerate() {
            let name = sched.name().to_string();
            let mv = sched.is_multiversion();
            let prefix = run_prefix(sched.as_mut(), &schedule);
            let abort = run_abort(sched.as_mut(), &schedule);
            if totals.len() <= idx {
                totals.push((name, mv, 0.0, 0.0));
            }
            totals[idx].2 += prefix.acceptance_ratio();
            totals[idx].3 += abort.commit_ratio();
        }
    }

    println!(
        "{:<10} {:<12} {:>22} {:>22}",
        "scheduler", "multiversion", "mean accepted prefix", "mean committed txns"
    );
    for (name, mv, prefix_sum, commit_sum) in &totals {
        println!(
            "{:<10} {:<12} {:>21.1}% {:>21.1}%",
            name,
            if *mv { "yes" } else { "no" },
            100.0 * prefix_sum / repetitions as f64,
            100.0 * commit_sum / repetitions as f64,
        );
    }

    let single_best = totals[..4].iter().map(|t| t.3).fold(f64::MIN, f64::max);
    let multi_best = totals[4..].iter().map(|t| t.3).fold(f64::MIN, f64::max);
    println!(
        "\nbest multiversion commit ratio {:.1}% vs best single-version {:.1}% -- the gap the paper's introduction promises.",
        100.0 * multi_best / repetitions as f64,
        100.0 * single_best / repetitions as f64
    );
    assert!(multi_best >= single_best);
}
