//! Drive the concurrent engine under closed-loop load and let the theory
//! check the result.
//!
//! Runs the whole certifier zoo — 2PL, TSO, SGT, MV-SGT, MVTO, snapshot
//! isolation — over the same Zipfian hot-spot profile, prints throughput
//! and abort statistics, and re-checks each committed history with the
//! offline classifiers of `mvcc-classify`.
//!
//! Run with `cargo run --example engine_load`.

use mvcc_repro::engine::{run_closed_loop, CertifierKind};
use mvcc_repro::prelude::*;

fn main() {
    let profile = LoadProfile {
        threads: 4,
        shards: 2,
        ops: 300,
        entities: 8,
        steps_per_transaction: 3,
        read_ratio: 0.7,
        zipf_theta: 0.9,
        seed: 0xe9,
    };
    println!("closed-loop engine load: {profile}\n");

    for kind in CertifierKind::all() {
        // Keep the MVTO run small: its class check (MVSR) is the exact
        // NP-complete search.
        let p = if kind == CertifierKind::Mvto {
            LoadProfile { ops: 48, ..profile }
        } else {
            profile
        };
        let report = run_closed_loop(kind, &p);
        let m = &report.metrics;
        println!(
            "{:>6} [{:>5}]: {:>6.0} txn/s, {} committed / {} aborted ({:.0}% commit), \
             p99 {:.0} µs, gc reclaimed {}",
            kind.to_string(),
            report.class.to_string(),
            report.throughput_tps(),
            m.committed,
            m.aborted,
            m.commit_ratio() * 100.0,
            m.latency_us(0.99).unwrap_or(0.0),
            m.gc_reclaimed,
        );
        let history = report.history.committed_schedule();
        let verdict = report.history_in_class();
        println!(
            "        history: {} committed steps — offline check ({}): {}",
            history.len(),
            report.class,
            if verdict {
                "in class ✓"
            } else {
                "OUT OF CLASS ✗"
            }
        );
        assert!(verdict, "{kind}: committed history fell out of class");
    }

    println!("\nevery committed history verified by the offline classifiers.");
}
