//! A small "banking" scenario on the multiversion store: long analytical
//! reads run against a consistent snapshot while transfers commit
//! concurrently — the practical pay-off of keeping old versions — and the
//! write-skew anomaly shows where snapshot isolation stops short of the
//! serializability theory of the paper.
//!
//! Run with `cargo run --example banking_snapshot`.

use mvcc_repro::prelude::*;
use mvcc_repro::store::bytes::Bytes;
use mvcc_repro::store::gc;
use mvcc_repro::store::snapshot::{run_schedule_under_si, SnapshotSession};

const CHECKING: EntityId = EntityId(0);
const SAVINGS: EntityId = EntityId(1);

fn amount(v: i64) -> Bytes {
    Bytes::from(v.to_string())
}

fn parse(b: &Bytes) -> i64 {
    std::str::from_utf8(b).unwrap().parse().unwrap()
}

fn main() {
    let store = MvStore::with_entities([CHECKING, SAVINGS], amount(100));

    // A long-running audit starts first and pins a snapshot.
    let audit = SnapshotSession::begin(&store, TxId(100)).unwrap();

    // Ten transfers move money from checking to savings, each committing.
    for i in 1..=10u32 {
        let t = SnapshotSession::begin(&store, TxId(i)).unwrap();
        let c = parse(&t.read(CHECKING).unwrap());
        let s = parse(&t.read(SAVINGS).unwrap());
        t.write(CHECKING, amount(c - 5)).unwrap();
        t.write(SAVINGS, amount(s + 5)).unwrap();
        t.commit().unwrap();
    }

    // The audit still sees the original, consistent state.
    let audit_total = parse(&audit.read(CHECKING).unwrap()) + parse(&audit.read(SAVINGS).unwrap());
    println!("audit sees a consistent total of {audit_total} (initial state), despite 10 concurrent transfers");
    assert_eq!(audit_total, 200);
    audit.abort().unwrap();

    // A fresh reader sees the transferred state; the invariant held.
    let check = SnapshotSession::begin(&store, TxId(200)).unwrap();
    let total = parse(&check.read(CHECKING).unwrap()) + parse(&check.read(SAVINGS).unwrap());
    println!("fresh reader sees a total of {total} after the transfers");
    assert_eq!(total, 200);
    check.abort().unwrap();

    // Version chains have grown; garbage-collect now that no snapshot pins
    // the old versions.
    println!(
        "versions before GC: {} (checking chain has {})",
        store.total_versions(),
        store.version_count(CHECKING)
    );
    let report = gc::collect(&store);
    println!(
        "GC at watermark {} reclaimed {} versions; {} remain",
        report.watermark, report.reclaimed, report.remaining
    );

    // The write-skew anomaly: snapshot isolation commits both transactions
    // of a schedule that the paper's theory says is not serializable at all.
    let skew = Schedule::parse("Ra(x) Rb(y) Wa(y) Wb(x)").unwrap();
    let fresh = MvStore::with_entities([EntityId(0), EntityId(1)], amount(60));
    let (committed, observed) = run_schedule_under_si(&fresh, &skew);
    println!(
        "\nwrite-skew schedule {skew}: SI committed {} transactions, yet view-serializable = {}",
        committed.len(),
        is_vsr(&observed)
    );
    assert_eq!(committed.len(), 2);
    assert!(!is_vsr(&observed) && !is_mvsr(&observed));
    println!("snapshot isolation accepts a schedule outside MVSR -- the gap the serializability theory pins down.");
}
