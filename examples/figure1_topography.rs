//! Reproduce Figure 1 of the paper from the library's public API: classify
//! the six example schedules and print the topography census.
//!
//! (The `mvcc-bench` crate has a more detailed version of this as the
//! `figure1` binary; this example shows how little code a user needs.)
//!
//! Run with `cargo run --example figure1_topography`.

use mvcc_repro::classify::taxonomy::{classify, Census};
use mvcc_repro::core::examples::{figure1, Figure1Region};
use mvcc_repro::prelude::*;

fn main() {
    println!("The six example schedules of Figure 1:\n");
    for ex in figure1() {
        let c = classify(&ex.schedule);
        println!("({}) {}", ex.number, ex.region.description());
        println!("    {}", ex.schedule);
        println!(
            "    serial={} CSR={} SR={} MVCSR={} MVSR={}  ->  {:?} (paper says {:?})",
            c.serial,
            c.csr,
            c.vsr,
            c.mvcsr,
            c.mvsr,
            c.region(),
            ex.region
        );
        assert_eq!(c.region(), ex.region, "classification must match the paper");
        println!();
    }

    // The topography over every interleaving of a small transaction system.
    let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(y)")
        .unwrap()
        .tx_system();
    let all = Schedule::all_interleavings(&sys);
    let census = Census::build(all.iter());
    println!(
        "Topography over all {} interleavings of a 3-transaction system:\n{}",
        all.len(),
        census
    );

    // The containments of Figure 1, checked over the census population.
    assert_eq!(census.containment_violations, 0);
    println!(
        "\nEvery schedule respected the containments serial ⊆ CSR ⊆ SR ⊆ MVSR and CSR ⊆ MVCSR ⊆ MVSR."
    );
    let interesting = Figure1Region::MvcsrNotSr;
    println!(
        "Schedules that only a multiversion scheduler can accept ({:?}): {}",
        interesting,
        census.count(interesting)
    );
}
