//! Crash, recover, resume: the durability subsystem end to end.
//!
//! Runs a durable MVTO engine under closed-loop load, cuts a checkpoint,
//! "crashes" it (the engine is leaked mid-flight with sessions open —
//! the in-process analogue of `kill -9`), recovers from the write-ahead
//! log, re-verifies the recovered committed history with the offline
//! classifiers, and resumes load on the recovered engine.
//!
//! Run with `cargo run --example engine_recovery`.

use mvcc_repro::engine::load::drive_closed_loop;
use mvcc_repro::engine::{CheckpointDriver, GcDriver};
use mvcc_repro::prelude::*;
use std::time::Duration;

fn main() {
    let dir = std::env::temp_dir().join(format!("mvcc-recovery-demo-{}", std::process::id()));
    let config = EngineConfig {
        shards: 2,
        entities: 8,
        durability: DurabilityConfig::buffered(&dir),
        ..EngineConfig::default()
    };
    let profile = LoadProfile {
        threads: 4,
        shards: 2,
        ops: 48,
        entities: 8,
        steps_per_transaction: 3,
        read_ratio: 0.7,
        zipf_theta: 0.6,
        seed: 0xdead,
    };

    // ---- Life before the crash -------------------------------------
    let (engine, cold) = Engine::recover(CertifierKind::Mvto, config.clone()).unwrap();
    println!(
        "cold start: {} records replayed in {:?}",
        cold.records_scanned, cold.elapsed
    );
    let gc = GcDriver::start(engine.clone(), Duration::from_millis(1));
    let checkpointer = CheckpointDriver::start(engine.clone(), Duration::from_millis(5));
    drive_closed_loop(&engine, &profile);
    std::thread::sleep(Duration::from_millis(10)); // let a checkpoint land
    gc.stop();
    checkpointer.stop();

    // Three in-flight sessions the crash will strand; one last commit
    // pushes their records into the OS so recovery *sees* and discards
    // them.
    let mut stranded = Vec::new();
    for i in 0..3u32 {
        let mut session = engine.begin();
        if session
            .write(
                EntityId(i),
                mvcc_repro::engine::Bytes::from_static(b"doomed"),
            )
            .is_ok()
        {
            stranded.push(session);
        }
    }
    let mut last = engine.begin();
    last.write(EntityId(7), mvcc_repro::engine::Bytes::from_static(b"fin"))
        .unwrap();
    last.commit().unwrap();
    println!("pre-crash:  {}", engine.metrics().snapshot());

    // ---- The crash --------------------------------------------------
    for session in stranded {
        std::mem::forget(session); // never aborted, never committed
    }
    std::mem::forget(engine); // no graceful shutdown, no final flush

    // ---- Recovery ---------------------------------------------------
    let (engine, report) = Engine::recover(CertifierKind::Mvto, config).unwrap();
    println!(
        "recovered:  {} records ({} data commits replayed after checkpoint {:?}) in {:?}",
        report.records_scanned, report.commits_replayed, report.checkpoint_seq, report.elapsed
    );
    println!("discarded in-flight transactions: {:?}", report.discarded);

    // The recovered committed history is still MVSR — the offline
    // classifiers certify what the certifier promised, across the crash.
    let history = engine.history();
    let schedule = history.committed_schedule();
    println!(
        "recovered committed history: {} steps, {} transactions, MVSR = {}",
        schedule.len(),
        history.committed.len(),
        is_mvsr(&schedule)
    );

    // ---- Resume -----------------------------------------------------
    drive_closed_loop(
        &engine,
        &LoadProfile {
            seed: 0xbeef,
            ..profile
        },
    );
    let combined = engine.history().committed_schedule();
    println!(
        "resumed:    combined history {} steps, still MVSR = {}",
        combined.len(),
        is_mvsr(&combined)
    );
    println!("post-resume {}", engine.metrics().snapshot());
    let _ = std::fs::remove_dir_all(&dir);
}
