//! Primary, replica, lag: the replication subsystem end to end.
//!
//! Runs a durable SGT engine under closed-loop load while a log-shipping
//! replica tails its write-ahead log; serves follower reads through the
//! read-scaling router under explicit staleness policies (including a
//! read-your-writes wait on a fresh commit); restarts the replica from a
//! local checkpoint; and finally re-verifies the *combined* history —
//! the primary's committed projection plus every replica-served read —
//! with the offline classifiers.
//!
//! Run with `cargo run --example engine_replica`.

use mvcc_repro::engine::load::drive_closed_loop;
use mvcc_repro::prelude::*;
use std::sync::Arc;

fn main() {
    let wal_dir = std::env::temp_dir().join(format!("mvcc-replica-demo-{}", std::process::id()));
    let ckpt_dir = wal_dir.join("replica-local");
    let profile = LoadProfile {
        threads: 4,
        shards: 2,
        ops: 240,
        entities: 8,
        steps_per_transaction: 3,
        read_ratio: 0.7,
        zipf_theta: 0.6,
        seed: 0x5ca1e,
    };

    // ---- Primary + replica + shipper -------------------------------
    let engine = Arc::new(Engine::new(
        CertifierKind::Sgt,
        EngineConfig {
            shards: 2,
            entities: 8,
            durability: DurabilityConfig::buffered(&wal_dir),
            ..EngineConfig::default()
        },
    ));
    let mut rconfig = ReplicaConfig::new(2, 8, mvcc_repro::replica::Bytes::from_static(b"0"));
    rconfig.checkpoint_dir = Some(ckpt_dir);
    rconfig.metrics = Some(engine.metrics_handle());
    let replica = Arc::new(Replica::open(rconfig.clone(), &wal_dir).unwrap());
    let shipper = LogShipper::start(Arc::clone(&replica), ShipperConfig::default());
    let router = ReadRouter::new(
        Arc::clone(&engine),
        vec![Arc::clone(&replica)],
        RouterConfig::default(),
    );

    // ---- Write load on the primary, follower reads off the replica --
    drive_closed_loop(&engine, &profile);
    println!(
        "primary: {} committed, durable horizon lsn {:?}",
        engine.metrics().snapshot().committed,
        engine.durable_lsn()
    );
    println!(
        "replica: watermark {} ({} behind), staleness {:?}",
        replica.watermark(),
        (engine.durable_lsn().unwrap() + 1).saturating_sub(replica.watermark()),
        replica.staleness()
    );

    // A fresh commit, then read-your-writes through the router: the
    // routed snapshot is waited past our own commit LSN.
    let mut writer = engine.begin();
    writer
        .write(EntityId(0), mvcc_repro::engine::Bytes::from_static(b"mine"))
        .unwrap();
    let my_lsn = writer.commit_durable().unwrap().unwrap();
    let mut read = router
        .begin_read_after(ReadPolicy::BoundedLag(16), my_lsn)
        .unwrap();
    println!(
        "read-your-writes: commit lsn {my_lsn}, routed snapshot lsn {} -> {:?}",
        read.snapshot_lsn().unwrap(),
        read.read(EntityId(0)).unwrap()
    );
    read.finish();

    // Latest: the snapshot must cover the durable horizon.
    let mut read = router.begin_read(ReadPolicy::Latest).unwrap();
    let _ = read.read(EntityId(1)).unwrap();
    read.finish();

    // ---- Restart the replica from its local checkpoint --------------
    replica.checkpoint().unwrap();
    shipper.stop();
    drop(router);
    drop(replica);
    drive_closed_loop(&engine, &profile.with_seed(0x5ca1f)); // traffic the replica misses
    let replica = Arc::new(Replica::open(rconfig, &wal_dir).unwrap());
    println!(
        "replica restarted: resumes at watermark {}",
        replica.watermark()
    );
    replica.catch_up().unwrap();
    println!(
        "replica caught up: watermark {} == durable horizon + 1",
        replica.watermark()
    );
    let mut read = replica.begin_read();
    for e in 0..8 {
        let _ = read.read(EntityId(e)).unwrap();
    }
    read.finish();

    // ---- Theory checks the replica ----------------------------------
    let combined = replica.history().combined_schedule();
    println!(
        "combined history (shipped + {} follower reads): {} steps, CSR = {}",
        replica.history().readers_recorded(),
        combined.len(),
        is_csr(&combined)
    );
    println!("\nprimary metrics (durability + replication blocks):");
    println!("{}", engine.metrics().snapshot());
    let _ = std::fs::remove_dir_all(&wal_dir);
}
