//! The full hardness pipeline of Section 4, end to end:
//!
//!   CNF formula  →  polygraph  →  pair of MVCSR schedules  →  OLS?
//!
//! The pair is on-line schedulable iff the polygraph is acyclic iff the
//! formula is satisfiable — which is why no efficient algorithm can decide
//! which schedule sets a multiversion scheduler could recognise (Theorem 4).
//!
//! Run with `cargo run --example ols_reduction_pipeline --release`.

use mvcc_repro::graph::poly_acyclic::solve_polygraph;
use mvcc_repro::prelude::*;
use mvcc_repro::reductions::certificates::find_ols_certificate;
use mvcc_repro::reductions::sat::{CnfFormula, Literal};
use mvcc_repro::reductions::{sat_to_polygraph, theorem4_schedules};

fn run_pipeline(name: &str, formula: CnfFormula) {
    println!("=== {name}: {formula} ===");
    let satisfiable = formula.satisfiable_dpll().is_some();
    println!("  satisfiable (DPLL): {satisfiable}");

    let reduced = sat_to_polygraph(&formula);
    let p = &reduced.polygraph;
    println!(
        "  polygraph: {} nodes, {} arcs, {} choices (choices node-disjoint: {})",
        p.node_count(),
        p.arc_count(),
        p.choice_count(),
        p.choices_node_disjoint()
    );
    let acyclic = solve_polygraph(p).is_some();
    println!("  polygraph acyclic: {acyclic}");

    let inst = theorem4_schedules(p);
    println!(
        "  Theorem 4 schedules: {} steps each over {} transactions, shared prefix of {} steps",
        inst.s1.len(),
        inst.s1.num_transactions(),
        inst.prefix_len
    );
    println!(
        "  s1 and s2 MVCSR: {} / {}",
        is_mvcsr(&inst.s1),
        is_mvcsr(&inst.s2)
    );

    let ols = is_ols(&[inst.s1.clone(), inst.s2.clone()]);
    println!("  pair on-line schedulable: {ols}");
    if ols {
        if let Some(cert) = find_ols_certificate(&inst.s1, &inst.s2) {
            println!(
                "  certificate: serialize s1 as {:?}, s2 as {:?}, agreeing on the shared prefix",
                cert.r1, cert.r2
            );
        }
    } else if let Some(v) =
        mvcc_repro::reductions::ols_violation(&[inst.s1.clone(), inst.s2.clone()])
    {
        println!(
            "  no certificate exists: the version functions clash on the prefix of length {}",
            v.prefix_len
        );
    }
    assert_eq!(satisfiable, acyclic);
    assert_eq!(acyclic, ols);
    println!("  ✓ SAT == polygraph-acyclic == OLS\n");
}

fn main() {
    // A satisfiable formula: (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1).
    let mut sat = CnfFormula::new(2);
    sat.add_clause(vec![Literal::pos(0), Literal::pos(1)]);
    sat.add_clause(vec![Literal::neg(0), Literal::neg(1)]);
    run_pipeline("satisfiable", sat);

    // An unsatisfiable formula: (x0) ∧ (¬x0).
    let mut unsat = CnfFormula::new(1);
    unsat.add_clause(vec![Literal::pos(0)]);
    unsat.add_clause(vec![Literal::neg(0)]);
    run_pipeline("unsatisfiable", unsat);

    // The paper's own counterexample (Section 4), without any reduction.
    let (s, s_prime) = mvcc_repro::core::examples::section4_pair();
    println!("=== Section 4 counterexample ===");
    println!("  s  = {s}");
    println!("  s' = {s_prime}");
    println!(
        "  both MVCSR: {} / {}; pair OLS: {}",
        is_mvcsr(&s),
        is_mvcsr(&s_prime),
        is_ols(&[s.clone(), s_prime.clone()])
    );
}
