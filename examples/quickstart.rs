//! Quickstart: build schedules, classify them, and see why multiversion
//! scheduling helps.
//!
//! Run with `cargo run --example quickstart`.

use mvcc_repro::prelude::*;

fn main() {
    // 1. Parse a schedule in the paper's notation: R1(x) is a read of x by
    //    transaction T1, W2(y) a write of y by T2.
    let schedule = Schedule::parse("Wa(x) Rb(x) Rc(y) Wb(y) Wc(x)").unwrap();
    println!("schedule: {schedule}");
    println!("{}", schedule.to_grid());

    // 2. Classify it with respect to every class in the paper.
    let c = classify(&schedule);
    println!("classification: {c}");
    println!("Figure 1 region: {:?}\n", c.region());

    // 3. It is multiversion serializable but not view-serializable: ask for
    //    the witness (a serial order plus the version function).
    let (order, vf) = mvcc_repro::classify::mvsr_witness(&schedule).unwrap();
    println!("serializes as {order:?} with version function {vf}");
    assert!(
        !is_vsr(&schedule),
        "no single-version scheduler can output this schedule"
    );

    // 4. Run the multiversion SGT scheduler (the paper's generic MVCSR
    //    scheduler) and the single-version SGT scheduler over the same
    //    non-serializable-but-MVCSR input and compare.
    let s4 = mvcc_repro::core::examples::figure1()[3].schedule.clone();
    let mut sv = SgtScheduler::new();
    let mut mv = MvSgtScheduler::new();
    let sv_out = run_prefix(&mut sv, &s4);
    let mv_out = run_prefix(&mut mv, &s4);
    println!(
        "\nFigure 1 example (4): single-version SGT accepts {}/{} steps, MV-SGT accepts {}/{}",
        sv_out.accepted_steps, sv_out.total_steps, mv_out.accepted_steps, mv_out.total_steps
    );
    assert!(mv_out.accepted_all && !sv_out.accepted_all);

    // 5. Execute a full schedule against the storage engine, serving each
    //    read the version the MVSR witness dictates.
    use mvcc_repro::store::bytes::Bytes;
    let store =
        MvStore::with_entities(schedule.entities_accessed(), Bytes::from_static(b"initial"));
    let report =
        mvcc_repro::store::execute_full_schedule(&store, &schedule, &vf).expect("valid run");
    println!(
        "\nexecuted against the MV store: {} operations, {} transactions committed",
        report.operations,
        report.committed.len()
    );
    println!("realized READ-FROM relation:\n{}", report.read_from);
}
