//! # mvcc-repro
//!
//! Umbrella crate for the reproduction of Hadzilacos & Papadimitriou,
//! *Algorithmic Aspects of Multiversion Concurrency Control* (PODS 1985 /
//! JCSS 1986).
//!
//! It re-exports the workspace crates under stable module names so that the
//! examples, the integration tests and downstream users can depend on a
//! single crate:
//!
//! * [`core`] — schedules, version functions, conflicts, the Figure 1 and
//!   Section 4 example schedules (`mvcc-core`);
//! * [`graph`] — digraphs and polygraphs with exact acyclicity solvers
//!   (`mvcc-graph`);
//! * [`classify`] — CSR / VSR / MVCSR / MVSR / DMVSR classifiers and the
//!   Figure 1 taxonomy (`mvcc-classify`);
//! * [`reductions`] — SAT → polygraph → OLS / maximal-scheduler reductions,
//!   Theorems 4–6 (`mvcc-reductions`);
//! * [`scheduler`] — the on-line scheduler zoo, single- and multi-version
//!   (`mvcc-scheduler`);
//! * [`workload`] — deterministic workload generators (`mvcc-workload`);
//! * [`store`] — the in-memory multiversion storage engine (`mvcc-store`);
//! * [`durability`] — write-ahead log, checkpoints and class-preserving
//!   crash recovery (`mvcc-durability`);
//! * [`engine`] — the concurrent sharded multi-session transaction engine
//!   with pluggable certifiers (`mvcc-engine`);
//! * [`replica`] — WAL log-shipping read replicas with
//!   snapshot-consistent follower reads, read/write routers and
//!   epoch-fenced failover (`mvcc-replica`).
//!
//! See `README.md` for a quick start, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for the paper-vs-measured record of every
//! experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvcc_analysis as analysis;
pub use mvcc_classify as classify;
pub use mvcc_core as core;
pub use mvcc_durability as durability;
pub use mvcc_engine as engine;
pub use mvcc_graph as graph;
pub use mvcc_reductions as reductions;
pub use mvcc_replica as replica;
pub use mvcc_scheduler as scheduler;
pub use mvcc_store as store;
pub use mvcc_workload as workload;

/// A one-stop prelude for examples and quick experiments.
pub mod prelude {
    pub use mvcc_classify::taxonomy::{classify, Classification};
    pub use mvcc_classify::{is_csr, is_mvcsr, is_mvsr, is_vsr};
    pub use mvcc_core::{
        Action, EntityId, ReadFromRelation, Schedule, Step, TransactionSystem, TxId,
        VersionFunction, VersionSource,
    };
    pub use mvcc_durability::{DurabilityConfig, DurabilityMode};
    pub use mvcc_engine::{
        run_closed_loop, CertifierKind, ChaosHook, Engine, EngineConfig, HistoryClass, KillSite,
    };
    pub use mvcc_reductions::ols::is_ols;
    pub use mvcc_replica::{
        LeaderConfig, LeaderDriver, LogShipper, ReadPolicy, ReadRouter, Replica, ReplicaConfig,
        RouterConfig, ShipperConfig, WriteRouter,
    };
    pub use mvcc_scheduler::{
        run_abort, run_prefix, Decision, MvSgtScheduler, MvtoScheduler, Scheduler, SerialScheduler,
        SgtScheduler, TimestampScheduler, TwoPhaseLockingScheduler,
    };
    pub use mvcc_store::MvStore;
    pub use mvcc_workload::{LoadProfile, WorkloadConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn re_exports_are_wired() {
        let s = crate::core::Schedule::parse("Ra(x) Wa(x)").unwrap();
        assert!(crate::classify::is_csr(&s));
    }
}
