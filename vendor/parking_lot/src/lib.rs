//! Offline stub of `parking_lot`, backed by `std::sync`.
//!
//! Provides the subset the workspace uses: [`Mutex`] and [`RwLock`] whose
//! `lock` / `read` / `write` return guards directly instead of `Result`s.
//! Poisoning is deliberately ignored (parking_lot has no poisoning): a
//! poisoned std lock is recovered with `into_inner`, matching parking_lot's
//! semantics of letting the next locker proceed after a panic.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read()` /
/// `write()` API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}
