//! Offline stub of the `bytes` crate.
//!
//! [`Bytes`] here is a cheaply cloneable, immutable byte buffer backed by
//! `Arc<[u8]>` (with a zero-allocation path for `from_static`).  It covers
//! the surface the multiversion store uses: construction from owned or
//! static data, cheap `Clone`, `Deref<Target = [u8]>` and value equality.
//! It does not implement the `Buf`/`BufMut` traits of the real crate.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Creates a `Bytes` from a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Creates a `Bytes` by copying the given slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from("abc".to_string());
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(&a[..], b"abc");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"\\x01\\x02\\x03\"");
    }
}
