//! Offline stub of the `criterion` benchmark harness.
//!
//! Exposes the API surface the workspace's bench targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_with_setup`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and implements them
//! with a plain `Instant`-based timing loop printing one line per
//! benchmark.  No statistics, plots or HTML reports; replace with the real
//! crate when the environment has network access.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stub).
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, f);
        self
    }
}

/// Identifier for a parameterised benchmark, mirroring criterion's.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a displayable parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        if self.function_name.is_empty() {
            self.parameter.clone()
        } else {
            format!("{}/{}", self.function_name, self.parameter)
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (stub: scales the timing loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets throughput metadata (stub: ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_benchmark_id().label(), f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.label(), |b| f(b, input));
        self
    }

    /// Finishes the group (stub: no-op).
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`], so group APIs accept `&str` too.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_parameter(self)
    }
}

/// Throughput metadata (stub: carried but unused).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on a fresh `setup()` value per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// `iter_batched` with per-iteration batches, mirroring criterion.
    pub fn iter_batched<S, O, Setup, R>(&mut self, setup: Setup, routine: R, _size: BatchSize)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        self.iter_with_setup(setup, routine);
    }
}

/// Batch sizing hint for `iter_batched` (stub: ignored).
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    // Calibrate: run once to estimate cost, then pick an iteration count
    // aiming at ~50ms of measurement, capped to keep `cargo bench` quick.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(iters.max(1));
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench: {label:<60} {per_iter:>12} ns/iter ({iters} iters)");
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
