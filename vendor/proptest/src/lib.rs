//! Offline stub of the `proptest` property-testing framework.
//!
//! Implements the subset the workspace's tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), `prop_assert*` macros, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter`, integer and
//! float range strategies, tuple strategies, [`collection::vec`],
//! [`bool::ANY`] and [`strategy::Just`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   `Display`/`Debug` rendered by the assertion message only;
//! * **deterministic seeding** — each test function derives its RNG seed
//!   from its own name, so failures reproduce across runs;
//! * `PROPTEST_CASES` in the environment overrides the default case count,
//!   like the real crate;
//! * `prop_assume!` expands to a `continue` of the per-case loop — unlike
//!   the real crate it must NOT be used inside a loop in a test body, where
//!   it would silently skip only the inner iteration instead of the case.

/// Strategies for generating `bool` values.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy type generating uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, runner: &mut TestRunner) -> bool {
            use rand::Rng;
            runner.rng().gen_bool(0.5)
        }
    }
}

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections: an exact length or a
    /// range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_inclusive: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy generating vectors whose elements come from
    /// `element` and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            use rand::Rng;
            let len = if self.size.min == self.size.max_inclusive {
                self.size.min
            } else {
                runner
                    .rng()
                    .gen_range(self.size.min..=self.size.max_inclusive)
            };
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Number strategies: ranges over primitive integers and floats.
pub mod num {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    macro_rules! numeric_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    use rand::Rng;
                    runner.rng().gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    use rand::Rng;
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, runner: &mut TestRunner) -> f64 {
            use rand::Rng;
            runner.rng().gen_range(self.clone())
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Generates one value using the runner's RNG.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `pred`, resampling (bounded).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn new_value(&self, runner: &mut TestRunner) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.new_value(runner);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.whence
            );
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

    trait StrategyObject {
        type Value;
        fn new_value_dyn(&self, runner: &mut TestRunner) -> Self::Value;
    }

    impl<S: Strategy> StrategyObject for S {
        type Value = S::Value;

        fn new_value_dyn(&self, runner: &mut TestRunner) -> S::Value {
            self.new_value(runner)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.0.new_value_dyn(runner)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Test-runner configuration and state.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    /// Per-test generation state: the RNG strategies draw from.
    pub struct TestRunner {
        rng: SmallRng,
        cases: u32,
    }

    impl TestRunner {
        /// Creates a runner whose RNG seed is derived from `name`, so each
        /// test function gets a distinct but reproducible stream.
        pub fn new(config: &ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                rng: SmallRng::seed_from_u64(seed),
                cases: config.cases,
            }
        }

        /// The number of cases this runner should execute.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The runner's random number generator.
        pub fn rng(&mut self) -> &mut SmallRng {
            &mut self.rng
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests over generated inputs.
///
/// Supports the real crate's common form: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// parameters are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for __case in 0..runner.cases() {
                $(
                    let $pat =
                        $crate::strategy::Strategy::new_value(&($strategy), &mut runner);
                )+
                { $body }
            }
        }
        $crate::__proptest_tests!{ config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}
