//! Offline stub of the `serde` facade.
//!
//! The workspace uses serde purely for `#[derive(Serialize, Deserialize)]`
//! annotations; no code path serializes anything.  This stub re-exports the
//! no-op derive macros from the sibling `serde_derive` stub so the
//! annotations compile unchanged.  If a future PR needs real serialization,
//! replace `vendor/serde*` with the crates.io releases and delete these.

pub use serde_derive::{Deserialize, Serialize};
