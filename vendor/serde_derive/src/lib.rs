//! No-op stand-ins for serde's `Serialize` / `Deserialize` derive macros.
//!
//! The workspace is built in an offline environment, and its crates use
//! serde only as derive annotations (`#[derive(Serialize, Deserialize)]`
//! plus `#[serde(...)]` field attributes) — nothing ever serializes a
//! value.  These derives therefore accept the annotated item (including
//! `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.  Accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.  Accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
