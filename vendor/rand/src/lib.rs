//! Offline stub of the `rand` 0.8 API surface used by `mvcc-workload`.
//!
//! Provides [`RngCore`], [`Rng`] (with `gen_range` over integer and `f64`
//! ranges and `gen_bool`), [`SeedableRng::seed_from_u64`] and
//! [`rngs::SmallRng`] (xoshiro256++ seeded via splitmix64).  Streams are
//! deterministic for a given seed but are NOT bit-compatible with the real
//! rand crate — all workspace code treats seeds as opaque determinism
//! handles, never as cross-crate reproducible streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable random number generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type of the generator.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a `f64` uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that `Rng::gen_range` can sample a single value from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below what any test here can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64 as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let w: u32 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
