//! The end-to-end "theory checks the engine" loop (the tentpole
//! acceptance test of the `mvcc-engine` subsystem).
//!
//! A multi-threaded closed-loop run — ≥ 4 worker threads, ≥ 2 shards,
//! Zipfian θ ∈ {0.0, 0.9} — drives the engine under every certifier in
//! the zoo; the engine records its append-only admission history, and the
//! offline `mvcc-classify` checkers then confirm the committed projection
//! belongs to the class the certifier guarantees:
//!
//! * CSR for 2PL / TSO / SGT (single-version schedulers),
//! * MVCSR for MV-SGT (the paper's generic multiversion scheduler),
//! * MVSR for MVTO (checked with the exact NP-complete search, so the
//!   MVTO profiles stay small).
//!
//! Snapshot isolation guarantees no Figure 1 class (write skew), so its
//! runs assert engine-level invariants only.

use mvcc_repro::engine::load::run_closed_loop_in_mode;
use mvcc_repro::engine::{run_closed_loop, AdmissionMode, CertifierKind, HistoryClass};
use mvcc_repro::prelude::*;

/// Both admission modes: the batched group-commit pipeline (the default)
/// and the per-step baseline it replaced.  Every class-guarantee test runs
/// under both — the pipeline restructured the engine's hottest path, and
/// this is what proves the committed projection still classifies the same.
const MODES: [AdmissionMode; 2] = [AdmissionMode::Batched, AdmissionMode::PerStep];

fn profile(threads: usize, shards: usize, ops: usize, zipf_theta: f64, seed: u64) -> LoadProfile {
    LoadProfile {
        threads,
        shards,
        ops,
        entities: 8,
        steps_per_transaction: 3,
        read_ratio: 0.7,
        zipf_theta,
        seed,
    }
}

/// Runs `kind` under the given profile and admission mode and returns the
/// committed projection after sanity-checking the run's bookkeeping.
fn committed_history(kind: CertifierKind, p: &LoadProfile, mode: AdmissionMode) -> Schedule {
    let report = run_closed_loop_in_mode(kind, p, true, mode);
    let m = &report.metrics;
    assert!(
        m.committed > 0,
        "{kind}/{mode}: nothing committed under {p}"
    );
    assert_eq!(
        m.begun,
        m.committed + m.aborted,
        "{kind}/{mode}: sessions unaccounted for"
    );
    let history = report.history.committed_schedule();
    // Every committed transaction contributed all of its admitted steps —
    // the history stayed append-only through batching.
    assert_eq!(
        history.len() as u64,
        m.committed * p.steps_per_transaction as u64,
        "{kind}/{mode}: committed projection truncated"
    );
    history
}

#[test]
fn csr_certifiers_produce_csr_histories() {
    for kind in [
        CertifierKind::TwoPhaseLocking,
        CertifierKind::Timestamp,
        CertifierKind::Sgt,
    ] {
        for theta in [0.0, 0.9] {
            for mode in MODES {
                let p = profile(4, 2, 240, theta, 0xc5a + theta as u64);
                let history = committed_history(kind, &p, mode);
                assert!(
                    is_csr(&history),
                    "{kind}/{mode} (θ={theta}) committed a non-CSR history: {history}"
                );
            }
        }
    }
}

#[test]
fn mv_sgt_produces_mvcsr_histories() {
    for theta in [0.0, 0.9] {
        for mode in MODES {
            let p = profile(4, 2, 240, theta, 0x517);
            let history = committed_history(CertifierKind::MvSgt, &p, mode);
            assert!(
                is_mvcsr(&history),
                "mv-sgt/{mode} (θ={theta}) committed a non-MVCSR history: {history}"
            );
        }
    }
}

#[test]
fn mvto_produces_mvsr_histories() {
    // Small op budgets: the MVSR check is the exact NP-complete search.
    for theta in [0.0, 0.9] {
        for seed in [0x301u64, 0x302] {
            for mode in MODES {
                let p = profile(4, 2, 48, theta, seed);
                let history = committed_history(CertifierKind::Mvto, &p, mode);
                assert!(
                    is_mvsr(&history),
                    "mvto/{mode} (θ={theta}, seed={seed}) committed a non-MVSR history: {history}"
                );
            }
        }
    }
}

#[test]
fn snapshot_isolation_runs_and_balances_its_books() {
    for theta in [0.0, 0.9] {
        let p = profile(4, 2, 240, theta, 0x51);
        let report = run_closed_loop(CertifierKind::SnapshotIsolation, &p);
        let m = &report.metrics;
        assert!(m.committed > 0);
        assert_eq!(m.begun, m.committed + m.aborted);
        assert_eq!(report.class, HistoryClass::SnapshotIsolation);
        assert!(report.history_in_class(), "SI claims nothing");
        // Read-heavy SI load commits most transactions even when hot.
        assert!(m.commit_ratio() > 0.3, "θ={theta}: {}", m.commit_ratio());
    }
}

#[test]
fn multiversion_certifiers_sustain_more_concurrency_than_locking_under_contention() {
    // The introduction's "enhanced performance" claim as a deterministic,
    // interleaving-independent scenario (aggregate closed-loop comparisons
    // are timing-dependent on a machine that may schedule the workers
    // serially; the E12 bin/bench report those): the same overlapping
    // reader/writer interleaving is rejected by strict 2PL but fully
    // committed under snapshot isolation and MVTO, which serve the reader
    // an older version instead of blocking it.
    use mvcc_repro::engine::{Engine, EngineConfig};
    use std::sync::Arc;

    let run = |kind: CertifierKind| -> (bool, bool) {
        let engine = Arc::new(Engine::new(
            kind,
            EngineConfig {
                shards: 2,
                entities: 8,
                ..EngineConfig::default()
            },
        ));
        let (x, y) = (EntityId(0), EntityId(1));
        // The writer commits a first version so a snapshot exists, then
        // starts a second, uncommitted write of x.
        let mut setup = engine.begin();
        setup
            .write(x, mvcc_repro::engine::Bytes::from_static(b"v1"))
            .unwrap();
        setup.commit().unwrap();
        let mut reader = engine.begin();
        // The reader's first step fixes its place in timestamp order (and
        // its snapshot) before the writer moves.
        reader.read(y).unwrap();
        let mut writer = engine.begin();
        let writer_ok = writer
            .write(x, mvcc_repro::engine::Bytes::from_static(b"v2"))
            .is_ok();
        // The reader arrives at x while the write is uncommitted.
        let reader_ok = reader.read(x).is_ok() && reader.commit().is_ok();
        if writer_ok && writer.is_active() {
            writer.commit().unwrap();
        }
        (writer_ok, reader_ok)
    };

    let (w_2pl, r_2pl) = run(CertifierKind::TwoPhaseLocking);
    assert!(w_2pl && !r_2pl, "2PL must reject the overlapping reader");
    let (w_si, r_si) = run(CertifierKind::SnapshotIsolation);
    assert!(w_si && r_si, "SI must serve the reader its snapshot");
    let (w_mvto, r_mvto) = run(CertifierKind::Mvto);
    assert!(
        w_mvto && r_mvto,
        "MVTO must serve the reader an old version"
    );
}

#[test]
fn engine_gc_reclaims_under_load_without_breaking_histories() {
    // A write-heavy hot-spot run piles up versions; the background GC
    // driver (running inside the harness) must reclaim some, and the
    // history must still classify.
    let p = LoadProfile {
        threads: 4,
        shards: 2,
        ops: 600,
        entities: 4,
        steps_per_transaction: 3,
        read_ratio: 0.3,
        zipf_theta: 0.9,
        seed: 0x6c,
    };
    let report = run_closed_loop(CertifierKind::Sgt, &p);
    assert!(report.metrics.gc_passes > 0, "GC driver never ran");
    assert!(
        is_csr(&report.history.committed_schedule()),
        "history broken under GC"
    );
    // All surviving versions fit in committed-watermark bounds: after the
    // run, at most one committed version per entity is strictly required,
    // and GC keeps the total far below the number of committed writes.
    assert!(report.metrics.writes > 0);
}
