//! Release-gated replication soak: a live shipper against a concurrent
//! primary load, a replica restart mid-stream, and `BoundedLag` routing
//! under pressure.
//!
//! Debug builds `#[ignore]` these (the interleavings only mean something
//! at release speed); the CI `cargo test --release` job runs them — see
//! the workflow comment.
//!
//! What is pinned here, beyond the deterministic `replica_loop` suite:
//!
//! * the shipper thread keeps up with a multi-threaded primary across
//!   segment rotations, and a replica *restarted mid-load* (checkpoint,
//!   drop, resume, re-ship) converges to exactly the primary's committed
//!   state;
//! * **BoundedLag actually bounds lag**: every follower read served
//!   under `BoundedLag(n)` is pinned within `n` records of the durable
//!   horizon sampled before routing — reads that cannot meet the bound
//!   are refused, never silently stale;
//! * the combined history (thousands of shipped steps + every follower
//!   read served along the way) still classifies in the certifier's
//!   class at the end.

mod common;
use common::{committed_sets, FlightDumpGuard};
use mvcc_repro::engine::load::drive_closed_loop;
use mvcc_repro::engine::{CertifierKind, DurabilityConfig, Engine, EngineConfig, TelemetryMode};
use mvcc_repro::prelude::*;
use mvcc_repro::replica::{
    LogShipper, ReadPolicy, ReadRouter, Replica, ReplicaConfig, RouterConfig, RouterError,
    ShipperConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-rsoak-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SHARDS: usize = 2;
const ENTITIES: usize = 8;
const LAG_BOUND: u64 = 64;

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn replication_soak_survives_a_replica_restart_under_load() {
    let wal_dir = temp_dir("soak");
    let ckpt_dir = temp_dir("soak-ckpt");
    let engine = Arc::new(Engine::new(
        CertifierKind::Sgt,
        EngineConfig {
            shards: SHARDS,
            entities: ENTITIES,
            durability: DurabilityConfig {
                mode: DurabilityMode::Buffered,
                dir: wal_dir.clone(),
                // Small segments: the soak crosses many rotations.
                segment_bytes: 4096,
            },
            // A failed soak dumps the flight timeline (flushes,
            // checkpoint cuts, aborts) instead of just a panic message.
            telemetry: TelemetryMode::On,
            ..EngineConfig::default()
        },
    ));
    let _flight_dump = FlightDumpGuard::new("replica_soak", engine.metrics_handle());
    let mut rconfig = ReplicaConfig::new(
        SHARDS,
        ENTITIES,
        mvcc_repro::replica::Bytes::from_static(b"0"),
    );
    rconfig.checkpoint_dir = Some(ckpt_dir.clone());
    rconfig.metrics = Some(engine.metrics_handle());
    let replica = Arc::new(Replica::open(rconfig.clone(), &wal_dir).unwrap());
    let shipper = LogShipper::start(Arc::clone(&replica), ShipperConfig::default());

    // The router is swapped when the replica restarts; readers clone the
    // current one per iteration.
    let router = Arc::new(Mutex::new(Arc::new(ReadRouter::new(
        Arc::clone(&engine),
        vec![Arc::clone(&replica)],
        RouterConfig::default(),
    ))));

    // Primary load in the background.
    let load_done = Arc::new(AtomicBool::new(false));
    let load_engine = Arc::clone(&engine);
    let load_flag = Arc::clone(&load_done);
    let load = std::thread::spawn(move || {
        drive_closed_loop(
            &load_engine,
            &LoadProfile {
                threads: 4,
                shards: SHARDS,
                ops: 6_000,
                entities: ENTITIES,
                steps_per_transaction: 3,
                read_ratio: 0.6,
                zipf_theta: 0.6,
                seed: 0x50a6,
            },
        );
        load_flag.store(true, Ordering::Release);
    });

    // Follower readers hammering BoundedLag while the load runs.  Every
    // *served* read must be pinned within the bound of the horizon
    // sampled before routing; refusals (e.g. during the restart gap) are
    // counted, not failed.
    let mut readers = Vec::new();
    let served_total = Arc::new(AtomicU64::new(0));
    let refused_total = Arc::new(AtomicU64::new(0));
    for _ in 0..2 {
        let engine = Arc::clone(&engine);
        let router = Arc::clone(&router);
        let done = Arc::clone(&load_done);
        let served = Arc::clone(&served_total);
        let refused = Arc::clone(&refused_total);
        readers.push(std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                let sampled_next = engine.durable_lsn().map_or(0, |l| l + 1);
                let current = Arc::clone(&*router.lock().unwrap());
                match current.begin_read(ReadPolicy::BoundedLag(LAG_BOUND)) {
                    Ok(mut read) => {
                        let pinned = read.snapshot_lsn().expect("replica-routed");
                        assert!(
                            pinned + LAG_BOUND >= sampled_next,
                            "BoundedLag violated: pinned {pinned}, sampled horizon {sampled_next}"
                        );
                        for e in 0..3u32 {
                            read.read(EntityId(e)).expect("pre-seeded entity");
                        }
                        read.finish();
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(RouterError::Stale { .. } | RouterError::Deposed { .. }) => {
                        refused.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    // Mid-load: checkpoint the replica, kill it (and its shipper), and
    // resume a fresh one from the local checkpoint.
    std::thread::sleep(Duration::from_millis(30));
    replica.checkpoint().unwrap();
    shipper.stop();
    let resumed_from = replica.watermark();
    drop(replica);
    let replica = Arc::new(Replica::open(rconfig, &wal_dir).unwrap());
    assert!(
        replica.watermark() > 0 && replica.watermark() <= resumed_from,
        "resume starts at the checkpoint cursor"
    );
    let shipper = LogShipper::start(Arc::clone(&replica), ShipperConfig::default());
    *router.lock().unwrap() = Arc::new(ReadRouter::new(
        Arc::clone(&engine),
        vec![Arc::clone(&replica)],
        RouterConfig::default(),
    ));

    load.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }

    // Let the shipper drain the tail, then compare states.
    let target = engine.durable_lsn().unwrap() + 1;
    let deadline = Instant::now() + Duration::from_secs(30);
    while replica.watermark() < target {
        assert!(Instant::now() < deadline, "shipper never caught up");
        std::thread::sleep(Duration::from_millis(1));
    }
    shipper.stop();
    assert!(
        served_total.load(Ordering::Relaxed) > 0,
        "no follower read was ever served"
    );
    assert_eq!(
        committed_sets(replica.shards()),
        committed_sets(engine.shards()),
        "replica diverged after restart + resume"
    );
    // Thousands of shipped steps plus every follower read: still CSR.
    let combined = replica.history().combined_schedule();
    assert!(combined.len() > 1000, "soak too small: {}", combined.len());
    assert!(is_csr(&combined), "combined soak history left CSR");
    let snap = engine.metrics().snapshot();
    assert!(snap.repl_applied_commits > 0);
    assert!(snap.repl_routed_reads > 0);
    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn ring_history_keeps_long_soaks_bounded() {
    // The HistoryLog satellite: a long closed-loop run with ring-mode
    // history keeps a fixed-size window (plus a drop high-water mark)
    // instead of growing without bound.
    let engine = Arc::new(Engine::new(
        CertifierKind::Sgt,
        EngineConfig {
            shards: SHARDS,
            entities: ENTITIES,
            history_capacity: Some(256),
            ..EngineConfig::default()
        },
    ));
    drive_closed_loop(
        &engine,
        &LoadProfile {
            threads: 4,
            shards: SHARDS,
            ops: 8_000,
            entities: ENTITIES,
            steps_per_transaction: 4,
            read_ratio: 0.5,
            zipf_theta: 0.0,
            seed: 0x4146,
        },
    );
    let history = engine.history();
    assert!(history.admitted.len() <= 256, "ring overflowed");
    assert!(
        history.dropped > 1000,
        "drops under-counted: {}",
        history.dropped
    );
    assert!(!history.is_complete());
    assert!(history.committed.len() > 500, "commit membership retained");
}
