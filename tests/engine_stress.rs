//! Fixed-seed multi-threaded stress tests for the engine's hottest races.
//!
//! These are only meaningful in release builds (debug builds serialize the
//! interesting interleavings behind their own overhead), so every test is
//! `#[ignore]`d under `debug_assertions`; the CI release-test job runs
//! them with `cargo test --release`.
//!
//! The star is the GC watermark / snapshot-pinning handoff: a snapshot
//! taken *between* watermark computation and reclamation must still be
//! honored.  `MvStore::begin` registers the transaction atomically with
//! its snapshot choice (the regression these tests pin down hammered the
//! old sample-then-register window), so a freshly begun transaction's
//! first read can never find its visible version already reclaimed.

use mvcc_repro::engine::load::run_closed_loop_in_mode;
use mvcc_repro::engine::{
    AbortReason, AdmissionMode, CertifierKind, Engine, EngineConfig, GcDriver,
};
use mvcc_repro::prelude::*;
use mvcc_repro::store::{gc, MvStore};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const X: EntityId = EntityId(0);

/// Store-level hammer: begin / snapshot-read / GC race directly against
/// `MvStore`.  Writers continuously supersede the hot entity, a collector
/// prunes under the store watermark as fast as it can, and readers begin
/// and immediately snapshot-read.  A read that was visible at begin must
/// never come back `NoVisibleVersion` — with the old
/// sample-counter-then-register `begin`, this test trips within a few
/// thousand iterations.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress interleavings are only meaningful in release builds"
)]
fn gc_never_reclaims_a_version_visible_at_begin_store_level() {
    let store = Arc::new(MvStore::with_entities(
        [X],
        mvcc_repro::engine::Bytes::from_static(b"0"),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let next_tx = Arc::new(AtomicU32::new(1));
    let mut workers = Vec::new();

    // Two writers: pile up versions of the hot entity.
    for _ in 0..2 {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let next_tx = Arc::clone(&next_tx);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let tx = TxId(next_tx.fetch_add(1, Ordering::Relaxed));
                let h = store.begin(tx).expect("fresh id");
                store
                    .write(h, X, mvcc_repro::engine::Bytes::from(format!("{tx}")))
                    .unwrap();
                store.commit(h, false).unwrap();
            }
        }));
    }
    // One collector: prune under the watermark continuously.
    {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                gc::collect(&store);
            }
        }));
    }
    // Two readers: begin, read the snapshot immediately, abort.  The
    // failure mode under the race is NoVisibleVersion on a just-begun
    // transaction.  Few readers on purpose: the watermark is at its most
    // aggressive (`current_ts`) exactly when no reader is registered, which
    // is what a stale-but-unregistered snapshot races against.
    const READERS: usize = 2;
    let violations = Arc::new(AtomicU64::new(0));
    for _ in 0..READERS {
        let store = Arc::clone(&store);
        let next_tx = Arc::clone(&next_tx);
        let violations = Arc::clone(&violations);
        workers.push(std::thread::spawn(move || {
            for _ in 0..200_000 {
                let tx = TxId(next_tx.fetch_add(1, Ordering::Relaxed));
                let h = store.begin(tx).expect("fresh id");
                if store.read_snapshot(h, X).is_err() {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                let _ = store.abort(h);
            }
        }));
    }
    // Stop the open-ended threads once every reader is done (readers are
    // the last handles).
    let readers: Vec<_> = workers.split_off(workers.len() - READERS);
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(
        violations.load(Ordering::Relaxed),
        0,
        "a freshly pinned snapshot observed a reclaimed version"
    );
}

/// Engine-level hammer: snapshot-isolation sessions (whose reads are
/// pinned at each shard's begin) under an aggressive background GC driver.
/// No session may ever abort with `SnapshotTooOld` or `DirtyRead`: SI
/// reads by snapshot visibility, and the version visible at its shard
/// begin must survive every concurrent collection.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress interleavings are only meaningful in release builds"
)]
fn engine_snapshot_reads_survive_aggressive_gc() {
    use mvcc_repro::workload::Zipfian;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let engine = Arc::new(Engine::new(
        CertifierKind::SnapshotIsolation,
        EngineConfig {
            shards: 4,
            entities: 8,
            record_history: false,
            ..EngineConfig::default()
        },
    ));
    let driver = GcDriver::start(Arc::clone(&engine), Duration::ZERO);
    let zipf = Zipfian::new(8, 0.9); // hot keys -> constant version churn
    let mut workers = Vec::new();
    for worker in 0..4u64 {
        let engine = Arc::clone(&engine);
        let zipf = zipf.clone();
        workers.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0x57e5 + worker);
            for _ in 0..8_000 {
                let mut session = engine.begin();
                let mut ok = true;
                for _ in 0..3 {
                    let entity = EntityId(zipf.sample(&mut rng) as u32);
                    let outcome = if rng.gen_bool(0.5) {
                        session.read(entity).map(|_| ())
                    } else {
                        session.write(
                            entity,
                            mvcc_repro::engine::Bytes::from(format!("{}", session.id())),
                        )
                    };
                    if outcome.is_err() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    let _ = session.commit();
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    driver.stop();
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.begun, snap.committed + snap.aborted, "books balance");
    assert!(snap.committed > 0);
    assert!(snap.gc_passes > 0, "the collector never ran");
    let count = |reason: AbortReason| {
        snap.aborts_by_reason
            .iter()
            .find(|(r, _)| *r == reason)
            .map_or(0, |(_, c)| *c)
    };
    // SI sessions may only lose first-committer-wins races; a snapshot
    // read must never observe a reclaimed or uncommitted version.
    assert_eq!(count(AbortReason::SnapshotTooOld), 0, "GC raced a snapshot");
    assert_eq!(count(AbortReason::DirtyRead), 0);
    assert_eq!(count(AbortReason::Explicit), 0, "unexpected store error");
}

/// The batched pipeline under every certifier at once: heavier traffic
/// than the unit suites, books must balance, and the uncontended (θ=0)
/// run must actually batch (mean admission batch observed).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress interleavings are only meaningful in release builds"
)]
fn batched_pipeline_balances_books_under_every_certifier() {
    for kind in CertifierKind::all() {
        let profile = LoadProfile {
            threads: 4,
            shards: 4,
            ops: 12_000,
            entities: 16,
            steps_per_transaction: 4,
            read_ratio: 0.7,
            zipf_theta: 0.0,
            seed: 0x57e55,
        };
        let report = run_closed_loop_in_mode(kind, &profile, false, AdmissionMode::Batched);
        let m = &report.metrics;
        assert_eq!(m.begun, m.committed + m.aborted, "{kind}: books");
        assert!(m.committed > 0, "{kind}: starved");
        assert!(m.admission_batches > 0, "{kind}: nothing batched");
        assert!(m.mean_admission_batch().unwrap() >= 1.0, "{kind}");
    }
}
