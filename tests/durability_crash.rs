//! Crash-point fuzzing of recovery (release-gated, alongside
//! `tests/engine_stress.rs`).
//!
//! A fixed-seed durable run produces a deterministic write-ahead log;
//! the fuzz then simulates a crash at **every byte offset** of the log's
//! tail region — truncating the last segment to each possible length —
//! and recovers from each artifact.  Recovery must:
//!
//! * never panic and never return an error (a torn tail is the *normal*
//!   crash shape, not an exceptional one);
//! * never resurrect a transaction whose commit record was not wholly
//!   durable (the committed set of every truncation is a subset of the
//!   full log's);
//! * never surface an uncommitted writer's version in the recovered
//!   store (ACA across the crash);
//! * recover an admitted history that is exactly a prefix of the full
//!   log's admitted history (the class-preservation argument rests on
//!   prefix closure).
//!
//! A second pass flips bits across the tail instead of truncating,
//! checking the CRC rejects in-place corruption the same way.
//!
//! These loops run a few thousand full recoveries, so they are
//! `#[ignore]`d in debug builds; the CI release-test job runs them.

use mvcc_repro::durability::{
    list_segments, recover, scan_log, DurabilityConfig, DurabilityMode, RecoveryOptions, WalRecord,
};
use mvcc_repro::engine::load::drive_closed_loop;
use mvcc_repro::engine::{CertifierKind, Engine, EngineConfig, Session};
use mvcc_repro::prelude::*;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-fuzz-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const ENTITIES: usize = 8;
const SHARDS: usize = 2;

fn opts() -> RecoveryOptions {
    RecoveryOptions {
        shards: SHARDS,
        entities: ENTITIES,
        initial: mvcc_repro::engine::Bytes::from_static(b"0"),
    }
}

/// Builds the deterministic crash corpus: a durable single-threaded run
/// (fixed seed), three in-flight sessions whose records reach the OS but
/// whose commits never happen, and a leaked engine (no graceful
/// shutdown).  Returns the log directory.
fn build_corpus() -> PathBuf {
    let dir = temp_dir("corpus");
    let engine = std::sync::Arc::new(Engine::new(
        CertifierKind::Sgt,
        EngineConfig {
            shards: SHARDS,
            entities: ENTITIES,
            durability: DurabilityConfig {
                mode: DurabilityMode::Buffered,
                dir: dir.clone(),
                segment_bytes: 768, // force several rotations
            },
            ..EngineConfig::default()
        },
    ));
    let profile = LoadProfile {
        threads: 1, // single worker: the log is byte-deterministic
        shards: SHARDS,
        ops: 150,
        entities: ENTITIES,
        steps_per_transaction: 3,
        read_ratio: 0.6,
        zipf_theta: 0.4,
        seed: 0xf022,
    };
    drive_closed_loop(&engine, &profile);
    // In-flight writers: admitted, logged, never committed.
    let mut in_flight: Vec<Session> = Vec::new();
    for i in 0..3u32 {
        let mut session = engine.begin();
        if session
            .write(
                EntityId(i),
                mvcc_repro::engine::Bytes::from_static(b"in-flight"),
            )
            .is_ok()
        {
            in_flight.push(session);
        }
    }
    // One more durable commit flushes the in-flight records to the OS.
    let mut last = engine.begin();
    last.write(
        EntityId(7),
        mvcc_repro::engine::Bytes::from_static(b"final"),
    )
    .unwrap();
    last.commit().unwrap();
    // The crash: leak the sessions and the engine.
    for session in in_flight {
        std::mem::forget(session);
    }
    std::mem::forget(engine);
    dir
}

/// The committed set of a scanned log (ground truth for subset checks).
fn committed_of_scan(dir: &Path) -> BTreeSet<TxId> {
    scan_log(dir)
        .unwrap()
        .records
        .iter()
        .filter_map(|r| match &r.record {
            WalRecord::Commit { entries } => Some(entries.iter().map(|e| e.tx)),
            _ => None,
        })
        .flatten()
        .collect()
}

/// Asserts the recovery invariants for one crash artifact.
fn assert_sound(
    dir: &Path,
    full_committed: &BTreeSet<TxId>,
    full_admitted: &[Step],
    context: &str,
) {
    let state = recover(dir, &opts()).unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    // No resurrection: every recovered commit was durable in the full log.
    assert!(
        state.committed.is_subset(full_committed),
        "{context}: resurrected {:?}",
        state
            .committed
            .difference(full_committed)
            .collect::<Vec<_>>()
    );
    // ACA across the crash: no uncommitted writer's version in the store.
    for (idx, shard) in state.shards.iter().enumerate() {
        for (entity, versions) in &shard.chains {
            for version in versions {
                assert!(
                    version.writer == TxId::INITIAL || state.committed.contains(&version.writer),
                    "{context}: shard {idx} {entity} holds uncommitted writer {}",
                    version.writer
                );
            }
        }
    }
    // Prefix property: the recovered admitted history is a prefix of the
    // full one.
    assert!(
        state.admitted.len() <= full_admitted.len(),
        "{context}: admitted grew"
    );
    assert_eq!(
        state.admitted[..],
        full_admitted[..state.admitted.len()],
        "{context}: admitted history diverged"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs thousands of recoveries; meaningful (and fast) in release builds"
)]
fn truncation_at_every_tail_byte_recovers_soundly() {
    let corpus = build_corpus();
    let full_committed = committed_of_scan(&corpus);
    let full_state = recover(&corpus, &opts()).unwrap();
    let full_admitted = full_state.admitted.clone();
    assert!(
        full_committed.len() > 10,
        "corpus too small to be meaningful"
    );
    assert!(
        !full_state.report.discarded.is_empty(),
        "no in-flight losers"
    );

    let segments = list_segments(&corpus).unwrap();
    assert!(segments.len() > 2, "corpus never rotated segments");
    let (_, last_path) = segments.last().unwrap();
    let last_bytes = std::fs::read(last_path).unwrap();

    // The crash-artifact directory: earlier segments copied once, the
    // last segment rewritten truncated per crash point.
    let target = temp_dir("trunc");
    for (seq, path) in &segments[..segments.len() - 1] {
        std::fs::copy(path, target.join(format!("wal-{seq:08}.seg"))).unwrap();
    }
    let last_name = last_path.file_name().unwrap();
    for cut in 0..=last_bytes.len() {
        std::fs::write(target.join(last_name), &last_bytes[..cut]).unwrap();
        assert_sound(
            &target,
            &full_committed,
            &full_admitted,
            &format!("cut at {cut}/{}", last_bytes.len()),
        );
    }
    // Sanity: the zero-length tail still recovers everything up to the
    // previous segment, and the full-length tail recovers everything.
    std::fs::write(target.join(last_name), &last_bytes).unwrap();
    let full_again = recover(&target, &opts()).unwrap();
    assert_eq!(full_again.committed, full_committed);
    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_dir_all(&target);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs thousands of recoveries; meaningful (and fast) in release builds"
)]
fn bit_flips_across_the_tail_never_pass_the_crc() {
    let corpus = build_corpus();
    let full_committed = committed_of_scan(&corpus);
    let full_state = recover(&corpus, &opts()).unwrap();
    let full_admitted = full_state.admitted.clone();

    let segments = list_segments(&corpus).unwrap();
    let (_, last_path) = segments.last().unwrap();
    let last_bytes = std::fs::read(last_path).unwrap();

    let target = temp_dir("flip");
    for (seq, path) in &segments[..segments.len() - 1] {
        std::fs::copy(path, target.join(format!("wal-{seq:08}.seg"))).unwrap();
    }
    let last_name = last_path.file_name().unwrap();
    for byte in 0..last_bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut corrupted = last_bytes.clone();
            corrupted[byte] ^= 1 << bit;
            std::fs::write(target.join(last_name), &corrupted).unwrap();
            // A flipped bit may shorten the valid prefix (CRC failure) but
            // must never resurrect, corrupt ACA, or diverge the prefix.
            // (It can also strike an *uncommitted* region — begin/abort
            // records — leaving the committed set intact.)
            assert_sound(
                &target,
                &full_committed,
                &full_admitted,
                &format!("flip bit {bit} of byte {byte}"),
            );
        }
    }
    let _ = std::fs::remove_dir_all(&corpus);
    let _ = std::fs::remove_dir_all(&target);
}

/// Hammers the checkpoint/commit fence: an aggressive background
/// checkpointer cuts fuzzy checkpoints continuously while 4 workers
/// commit, and the run then crash-leaks and recovers.  Every checkpoint
/// cut mid-commit must only persist versions whose commit records are
/// durable (the `checkpoint_cut` drain fence + flush barrier), so the
/// recovered store may never hold a writer the recovered log does not
/// know as committed — the exact invariant a fuzzy-checkpoint race
/// would break.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "stress interleavings are only meaningful in release builds"
)]
fn concurrent_checkpoints_never_persist_unlogged_commits() {
    use mvcc_repro::engine::{CheckpointDriver, GcDriver};
    use std::time::Duration;

    for round in 0..3u64 {
        let dir = temp_dir("ckpt-race");
        let engine = std::sync::Arc::new(Engine::new(
            CertifierKind::SnapshotIsolation,
            EngineConfig {
                shards: SHARDS,
                entities: ENTITIES,
                record_history: false,
                durability: DurabilityConfig {
                    mode: DurabilityMode::Buffered,
                    dir: dir.clone(),
                    segment_bytes: 4096,
                },
                ..EngineConfig::default()
            },
        ));
        let gc = GcDriver::start(std::sync::Arc::clone(&engine), Duration::ZERO);
        let checkpointer = CheckpointDriver::start(std::sync::Arc::clone(&engine), Duration::ZERO);
        let profile = LoadProfile {
            threads: 4,
            shards: SHARDS,
            ops: 8_000,
            entities: ENTITIES,
            steps_per_transaction: 3,
            read_ratio: 0.5,
            zipf_theta: 0.5,
            seed: 0xcc + round,
        };
        drive_closed_loop(&engine, &profile);
        gc.stop();
        checkpointer.stop();
        assert!(
            engine.metrics().snapshot().checkpoints > 0,
            "round {round}: checkpointer never ran"
        );
        // Crash: strand an in-flight writer and leak everything.
        let mut stranded = engine.begin();
        let _ = stranded.write(
            EntityId(0),
            mvcc_repro::engine::Bytes::from_static(b"stranded"),
        );
        std::mem::forget(stranded);
        std::mem::forget(engine);
        let state = recover(&dir, &opts()).unwrap();
        assert!(
            state.report.checkpoint_seq.is_some(),
            "round {round}: recovery never used a checkpoint"
        );
        for (idx, shard) in state.shards.iter().enumerate() {
            for (entity, versions) in &shard.chains {
                for version in versions {
                    assert!(
                        version.writer == TxId::INITIAL
                            || state.committed.contains(&version.writer),
                        "round {round}: shard {idx} {entity} persisted unlogged writer {}",
                        version.writer
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
