//! Workspace-level integration tests: the paper's figure and theorems
//! exercised through the umbrella crate's public API.

use mvcc_repro::classify::swaps::serial_reachable_by_swaps;
use mvcc_repro::classify::taxonomy::{classify, Census};
use mvcc_repro::classify::{is_csr, is_mvcsr, is_mvsr, is_vsr, mvcsr_witness};
use mvcc_repro::core::equivalence::full_view_equivalent;
use mvcc_repro::core::examples::{figure1, section4_pair, Figure1Region};
use mvcc_repro::prelude::*;
use mvcc_repro::reductions::ols::{is_ols, ols_violation};

/// Experiment E1: every example of Figure 1 lands in the region the paper
/// claims for it.
#[test]
fn figure1_examples_match_the_paper() {
    for ex in figure1() {
        let c = classify(&ex.schedule);
        assert_eq!(
            c.region(),
            ex.region,
            "example ({}) `{}` classified as {c}",
            ex.number,
            ex.schedule
        );
    }
}

/// Experiment E1 (census): over every interleaving of a small system the
/// containments of Figure 1 hold and each non-empty region is consistent
/// with the class flags.
#[test]
fn figure1_census_respects_containments() {
    let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(y)")
        .unwrap()
        .tx_system();
    let all = Schedule::all_interleavings(&sys);
    let census = Census::build(all.iter());
    assert_eq!(census.containment_violations, 0);
    assert_eq!(census.total(), all.len());
    assert!(census.count(Figure1Region::Serial) >= 6);
}

/// Theorem 1: the MVCG acyclicity test agrees with the definition of MVCSR
/// (multiversion-conflict equivalence to some serial schedule) on every
/// interleaving of a small system.
#[test]
fn theorem1_mvcg_test_equals_definition() {
    let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Wc(x)")
        .unwrap()
        .tx_system();
    for s in Schedule::all_interleavings(&sys) {
        let by_graph = is_mvcsr(&s);
        let by_definition = mvcc_repro::classify::mvcsr::is_mvcsr_by_definition(&s);
        assert_eq!(by_graph, by_definition, "Theorem 1 fails on {s}");
    }
}

/// Theorem 2: MVCSR membership coincides with reachability of a serial
/// schedule through switches of adjacent non-conflicting steps.
#[test]
fn theorem2_swap_characterisation() {
    let sys = Schedule::parse("Ra(x) Wa(x) Rb(x) Wb(y) Rc(y)")
        .unwrap()
        .tx_system();
    for s in Schedule::all_interleavings(&sys) {
        assert_eq!(
            serial_reachable_by_swaps(&s),
            is_mvcsr(&s),
            "Theorem 2 fails on {s}"
        );
    }
}

/// Theorem 3: every MVCSR schedule is MVSR, and constructively so — the
/// version function derived from the MVCG order serializes it.
#[test]
fn theorem3_mvcsr_subset_of_mvsr_constructively() {
    let sys = Schedule::parse("Ra(x) Wa(y) Rb(y) Wb(x) Rc(x) Wc(y)")
        .unwrap()
        .tx_system();
    // The full corpus of 90 interleavings contains 14 MVCSR schedules
    // (graph test and definition-level check agree); sampling it more
    // coarsely would drop below the `verified` threshold.
    let mut verified = 0;
    for s in Schedule::all_interleavings(&sys) {
        if !is_mvcsr(&s) {
            continue;
        }
        assert!(is_mvsr(&s), "Theorem 3 fails on {s}");
        let (order, vf) = mvcc_repro::classify::mvcsr::mvcsr_version_function(&s).unwrap();
        let serial = Schedule::serial(&s.tx_system(), &order);
        assert!(full_view_equivalent(
            &s,
            &vf,
            &serial,
            &VersionFunction::standard(&serial)
        ));
        verified += 1;
    }
    assert!(
        verified > 10,
        "the corpus should contain many MVCSR schedules"
    );
}

/// The strict-containment witnesses of Figure 1: each region separates two
/// classes.
#[test]
fn class_separations_are_witnessed() {
    let ex = figure1();
    // MVSR \ (SR ∪ MVCSR)
    assert!(is_mvsr(&ex[1].schedule) && !is_vsr(&ex[1].schedule) && !is_mvcsr(&ex[1].schedule));
    // SR \ MVCSR
    assert!(is_vsr(&ex[2].schedule) && !is_mvcsr(&ex[2].schedule));
    // MVCSR \ SR
    assert!(is_mvcsr(&ex[3].schedule) && !is_vsr(&ex[3].schedule));
    // (MVCSR ∩ SR) \ CSR
    assert!(is_mvcsr(&ex[4].schedule) && is_vsr(&ex[4].schedule) && !is_csr(&ex[4].schedule));
    // Not MVSR at all.
    assert!(!is_mvsr(&ex[0].schedule));
}

/// Section 4: the pair {s, s'} is the OLS counterexample — each schedule is
/// individually MVCSR (and hence MVSR), both have unique serializations, and
/// the pair is not on-line schedulable.
#[test]
fn section4_pair_is_the_ols_counterexample() {
    let (s, s_prime) = section4_pair();
    assert!(is_mvcsr(&s) && is_mvcsr(&s_prime));
    assert!(is_mvsr(&s) && is_mvsr(&s_prime));
    assert!(!is_ols(&[s.clone(), s_prime.clone()]));
    let violation = ols_violation(&[s.clone(), s_prime.clone()]).unwrap();
    assert_eq!(
        violation.prefix_len, 3,
        "the clash is at the shared read of x"
    );
    assert_eq!(violation.schedules, vec![0, 1]);
    // Each schedule alone is perfectly schedulable.
    assert!(is_ols(&[s]));
    assert!(is_ols(&[s_prime]));
}

/// The witness returned by the MVCSR classifier is usable end-to-end: its
/// serial order is a topological order of the MVCG.
#[test]
fn mvcsr_witness_is_topological() {
    let s = figure1()[3].schedule.clone();
    let order = mvcsr_witness(&s).unwrap();
    let g = mvcc_repro::classify::mv_conflict_graph(&s);
    let pos: std::collections::HashMap<_, _> =
        order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    for (from, to) in g.graph.arcs() {
        let from_tx = g.tx_of_node[from.index()];
        let to_tx = g.tx_of_node[to.index()];
        assert!(pos[&from_tx] < pos[&to_tx]);
    }
}
