//! The kill-and-recover end-to-end loop (the headline acceptance test of
//! the durability subsystem).
//!
//! For every certifier in the zoo: a durable engine runs a multi-threaded
//! closed loop, is *hard-dropped* mid-flight (in-flight sessions are
//! leaked, never aborted — the in-process analogue of a crash), and
//! recovered from its write-ahead log.  The test then asserts the three
//! promises of class-preserving recovery:
//!
//! (a) **state** — the recovered store equals the WAL's committed
//!     projection: per entity, the newest committed (writer, timestamp,
//!     value), and per shard the commit counter, all match the pre-crash
//!     engine's committed state; in-flight losers contribute nothing
//!     (ACA across the crash);
//! (b) **class** — the recovered committed history still classifies in
//!     the class the certifier promised (CSR for 2PL/TSO/SGT, MVCSR for
//!     MV-SGT, MVSR for MVTO), via the offline `mvcc-classify` checkers;
//! (c) **resumption** — a resumed closed loop on the recovered engine
//!     stays classifiable: the combined (recovered + resumed) committed
//!     projection is still in class, because every pre-crash committed
//!     transaction wholly precedes every resumed one, so cross-crash
//!     conflicts only ever point forward.

use mvcc_repro::durability::{DurabilityConfig, DurabilityMode};
use mvcc_repro::engine::load::drive_closed_loop;
use mvcc_repro::engine::{CertifierKind, Engine, EngineConfig, HistoryClass, Session};
use mvcc_repro::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-e2e-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const ENTITIES: usize = 8;
const SHARDS: usize = 2;

fn config(dir: &Path, mode: DurabilityMode) -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        entities: ENTITIES,
        durability: DurabilityConfig {
            mode,
            dir: dir.to_path_buf(),
            // Tiny segments so every run exercises rotation.
            segment_bytes: 1024,
        },
        ..EngineConfig::default()
    }
}

fn profile(kind: CertifierKind, seed: u64) -> LoadProfile {
    LoadProfile {
        threads: 4,
        shards: SHARDS,
        // MVTO histories face the exact NP-complete MVSR search, and the
        // combined pre-crash + resumed schedule is checked in one piece.
        ops: if kind == CertifierKind::Mvto { 36 } else { 180 },
        entities: ENTITIES,
        steps_per_transaction: 3,
        read_ratio: 0.7,
        zipf_theta: 0.6,
        seed,
    }
}

/// Newest committed `(writer, commit_ts, value bytes)` per entity of a
/// live engine, computed from each shard's committed state.
fn latest_committed_of(engine: &Engine) -> BTreeMap<EntityId, (TxId, u64, Vec<u8>)> {
    let mut latest = BTreeMap::new();
    for store in engine.shards().iter() {
        let (_, chains) = store.committed_state();
        for (entity, versions) in chains {
            if let Some((writer, ts, value)) = versions.into_iter().max_by_key(|&(_, ts, _)| ts) {
                latest.insert(entity, (writer, ts, value.to_vec()));
            }
        }
    }
    latest
}

/// The same projection, straight from the recovered WAL state.
fn latest_committed_of_wal(
    state: &mvcc_repro::durability::RecoveredState,
) -> BTreeMap<EntityId, (TxId, u64, Vec<u8>)> {
    state
        .latest_committed()
        .into_iter()
        .map(|(entity, v)| (entity, (v.writer, v.commit_ts, v.value.to_vec())))
        .collect()
}

/// Checks a committed history against the certifier's class (SI claims
/// nothing and always passes).
fn in_class(kind: CertifierKind, history: &Schedule) -> bool {
    kind.class().check(history)
}

/// The whole kill-and-recover loop for one certifier.  `checkpoint`
/// additionally cuts a checkpoint mid-load (after GC), so recovery takes
/// the checkpoint + tail path instead of whole-log replay.
fn kill_and_recover(kind: CertifierKind, mode: DurabilityMode, checkpoint: bool) {
    let dir = temp_dir(kind.name());
    // Cold start through `recover` (the universal open for durable
    // engines: an empty directory recovers to the fresh state).
    let (engine, cold) = Engine::recover(kind, config(&dir, mode)).unwrap();
    assert_eq!(cold.records_scanned, 0, "{kind}: cold start saw records");

    // Phase 1: committed traffic.
    drive_closed_loop(&engine, &profile(kind, 0xd0 + kind.name().len() as u64));
    if checkpoint {
        engine.collect_garbage();
        let seq = engine.checkpoint().unwrap();
        assert_eq!(seq, 1, "{kind}");
        // More traffic after the checkpoint, so recovery has a tail.
        drive_closed_loop(&engine, &profile(kind, 0xd1));
    }
    let pre_crash = engine.metrics().snapshot();
    assert!(pre_crash.committed > 0, "{kind}: nothing committed");
    assert!(pre_crash.wal_flushes > 0, "{kind}: nothing flushed");
    if mode == DurabilityMode::Fsync {
        assert_eq!(pre_crash.wal_fsyncs, pre_crash.wal_flushes, "{kind}");
    }

    // Phase 2: the crash.  In-flight sessions write (and their records
    // reach the OS with the next durable commit) but never commit; the
    // engine and sessions are then *leaked* — no graceful abort, no
    // buffered-writer flush-on-drop, exactly what a killed process leaves
    // behind.
    let mut in_flight: Vec<Session> = Vec::new();
    let mut doomed: Vec<TxId> = Vec::new();
    for i in 0..3u32 {
        let mut session = engine.begin();
        let entity = EntityId(i % ENTITIES as u32);
        if session
            .write(entity, mvcc_repro::engine::Bytes::from_static(b"doomed"))
            .is_ok()
        {
            doomed.push(session.id());
            in_flight.push(session);
        } else {
            // A certifier may reject the write (e.g. 2PL lock conflict
            // with another in-flight session); the session is already
            // aborted, which is fine — it is not part of the crash set.
        }
    }
    // One final durable commit pushes the in-flight records into the OS.
    {
        let mut last = engine.begin();
        last.write(EntityId(7), mvcc_repro::engine::Bytes::from_static(b"last"))
            .unwrap();
        last.commit().unwrap();
    }
    let old_latest = latest_committed_of(&engine);
    let old_counters: Vec<u64> = engine.shards().iter().map(|s| s.current_ts()).collect();
    let old_history = engine.history();
    // The crash: leak everything still holding the old WAL handles.
    for session in in_flight {
        std::mem::forget(session);
    }
    std::mem::forget(engine);

    // Phase 3: recovery — first the read-only scan (what the classifiers
    // certify), then the resumed engine.
    let state = mvcc_repro::durability::recover(
        &dir,
        &mvcc_repro::durability::RecoveryOptions {
            shards: SHARDS,
            entities: ENTITIES,
            initial: mvcc_repro::engine::Bytes::from_static(b"0"),
        },
    )
    .unwrap();
    // (a) state: the WAL's committed projection is exactly the pre-crash
    // committed state, and no doomed transaction survived.
    assert_eq!(latest_committed_of_wal(&state), old_latest, "{kind}");
    for (idx, shard) in state.shards.iter().enumerate() {
        assert_eq!(
            shard.commit_counter, old_counters[idx],
            "{kind} shard {idx}"
        );
    }
    for tx in &doomed {
        assert!(!state.committed.contains(tx), "{kind}: resurrected {tx}");
        assert!(
            state.report.discarded.contains(tx),
            "{kind}: {tx} not discarded"
        );
    }
    // The durable committed set is exactly the engine's.
    assert_eq!(state.committed, old_history.committed, "{kind}");
    if checkpoint {
        assert_eq!(state.report.checkpoint_seq, Some(1), "{kind}");
        assert!(
            state.report.commits_replayed < state.committed.len() as u64,
            "{kind}: checkpoint did not bound data replay"
        );
    }
    // (b) class: the recovered committed history — which equals the
    // pre-crash engine's history plus nothing (every commit was flushed
    // before the session learned of it) — is in the certifier's class.
    let recovered_history = state.committed_schedule();
    assert_eq!(
        recovered_history.len(),
        old_history.committed_schedule().len(),
        "{kind}: durable history diverges from the admitted one"
    );
    assert!(
        in_class(kind, &recovered_history),
        "{kind}: recovered history left {}",
        kind.class()
    );

    // Phase 4: resume on the recovered engine and re-classify the
    // *combined* history.
    let (resumed, report) = Engine::recover(kind, config(&dir, mode)).unwrap();
    assert!(report.records_scanned > 0, "{kind}");
    drive_closed_loop(&resumed, &profile(kind, 0xd2));
    let snap = resumed.metrics().snapshot();
    assert!(snap.committed > 0, "{kind}: resumed run starved");
    assert_eq!(snap.begun, snap.committed + snap.aborted, "{kind}: books");
    let combined = resumed.history();
    assert!(
        combined.committed.len() > state.committed.len(),
        "{kind}: resumed commits missing from the combined history"
    );
    assert!(
        in_class(kind, &combined.committed_schedule()),
        "{kind}: combined recovered+resumed history left {}",
        kind.class()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_and_recover_two_phase_locking() {
    kill_and_recover(CertifierKind::TwoPhaseLocking, DurabilityMode::Fsync, false);
}

#[test]
fn kill_and_recover_timestamp_ordering() {
    kill_and_recover(CertifierKind::Timestamp, DurabilityMode::Buffered, false);
}

#[test]
fn kill_and_recover_sgt_with_checkpoint() {
    kill_and_recover(CertifierKind::Sgt, DurabilityMode::Buffered, true);
}

#[test]
fn kill_and_recover_mv_sgt() {
    kill_and_recover(CertifierKind::MvSgt, DurabilityMode::Buffered, false);
}

#[test]
fn kill_and_recover_mvto() {
    kill_and_recover(CertifierKind::Mvto, DurabilityMode::Buffered, false);
}

#[test]
fn kill_and_recover_snapshot_isolation_with_checkpoint() {
    kill_and_recover(
        CertifierKind::SnapshotIsolation,
        DurabilityMode::Fsync,
        true,
    );
}

#[test]
fn a_deposed_primary_recovers_read_only_and_fenced() {
    // The epoch-aware restart path: a primary crashes, a replica is
    // promoted over its log while it is down, and then the old primary
    // restarts believing it still owns its epoch.  `Engine::recover_as`
    // must notice the marker moved past the owned epoch and bring the
    // engine up read-only — the durable committed prefix is served, but
    // every commit is refused with `Deposed` and the log is never
    // reopened for writing.
    let dir = temp_dir("deposed");
    let (engine, _) =
        Engine::recover(CertifierKind::Sgt, config(&dir, DurabilityMode::Buffered)).unwrap();
    {
        let mut session = engine.begin();
        session
            .write(EntityId(0), mvcc_repro::engine::Bytes::from_static(b"own"))
            .unwrap();
        session.commit().unwrap();
    }
    assert_eq!(engine.epoch(), 0);
    // The crash: the primary dies holding epoch 0.
    std::mem::forget(engine);

    // Failover while it is down: a promotion bumps the log to epoch 1
    // and commits past the fence.
    let (promoted, _) =
        Engine::promote_recover(CertifierKind::Sgt, config(&dir, DurabilityMode::Buffered))
            .unwrap();
    assert_eq!(promoted.epoch(), 1);
    {
        let mut session = promoted.begin();
        session
            .write(EntityId(1), mvcc_repro::engine::Bytes::from_static(b"new"))
            .unwrap();
        session.commit().unwrap();
    }
    drop(promoted);

    // The old primary restarts with its stale epoch: read-only, fenced.
    let (stale, report) = Engine::recover_as(
        CertifierKind::Sgt,
        config(&dir, DurabilityMode::Buffered),
        0,
    )
    .unwrap();
    assert!(report.records_scanned > 0);
    assert!(stale.is_deposed(), "a superseded epoch must come up fenced");
    assert_eq!(stale.epoch(), 0, "the engine reports the epoch it owns");
    // Reads of the recovered prefix are served...
    let mut session = stale.begin();
    assert_eq!(
        session.read(EntityId(0)).unwrap(),
        mvcc_repro::engine::Bytes::from_static(b"own")
    );
    session
        .write(
            EntityId(0),
            mvcc_repro::engine::Bytes::from_static(b"stale"),
        )
        .unwrap();
    // ...but no commit ever lands.
    assert!(matches!(
        session.commit(),
        Err(mvcc_repro::engine::EngineError::Deposed)
    ));
    drop(stale);

    // Restarting as the *current* epoch owner is a normal writable
    // recovery.
    let (current, _) = Engine::recover_as(
        CertifierKind::Sgt,
        config(&dir, DurabilityMode::Buffered),
        1,
    )
    .unwrap();
    assert!(!current.is_deposed());
    assert_eq!(current.epoch(), 1);
    let mut session = current.begin();
    session
        .write(
            EntityId(2),
            mvcc_repro::engine::Bytes::from_static(b"alive"),
        )
        .unwrap();
    session.commit().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_histories_are_committed_projections_of_a_prefix() {
    // The class-preservation argument, stated directly: recovery realizes
    // the committed projection of a *prefix* of the certified history.
    // Tear the log mid-way and check the recovered schedule is exactly a
    // committed projection of a prefix of the full one.
    let dir = temp_dir("prefix");
    let (engine, _) =
        Engine::recover(CertifierKind::Sgt, config(&dir, DurabilityMode::Buffered)).unwrap();
    drive_closed_loop(&engine, &profile(CertifierKind::Sgt, 0x9e));
    let full = engine.history();
    drop(engine);
    // Tear bytes off the last segment.
    let (_, last) = mvcc_repro::durability::list_segments(&dir)
        .unwrap()
        .pop()
        .unwrap();
    let len = std::fs::metadata(&last).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&last).unwrap();
    file.set_len(len - len / 3).unwrap();
    drop(file);
    let state = mvcc_repro::durability::recover(
        &dir,
        &mvcc_repro::durability::RecoveryOptions {
            shards: SHARDS,
            entities: ENTITIES,
            initial: mvcc_repro::engine::Bytes::from_static(b"0"),
        },
    )
    .unwrap();
    // Durable committed set is a subset of the full one...
    assert!(state.committed.is_subset(&full.committed));
    // ...the admitted sequence is a prefix of the full admitted log...
    assert!(state.admitted.len() <= full.admitted.len());
    assert_eq!(state.admitted[..], full.admitted[..state.admitted.len()]);
    // ...and the committed projection of that prefix is still CSR.
    assert!(
        HistoryClass::Csr.check(&state.committed_schedule()),
        "prefix projection left CSR"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
