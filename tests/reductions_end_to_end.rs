//! Workspace-level integration tests for the hardness pipeline (Sections 4
//! and 5): SAT → polygraph → schedules → OLS / maximal-scheduler verdicts,
//! exercised through the umbrella crate.

use mvcc_repro::classify::{is_mvcsr, is_mvsr};
use mvcc_repro::graph::poly_acyclic::is_acyclic_polygraph;
use mvcc_repro::graph::{NodeId, Polygraph};
use mvcc_repro::prelude::*;
use mvcc_repro::reductions::certificates::{
    find_ols_certificate, forced_read_froms, verify_ols_certificate,
};
use mvcc_repro::reductions::sat::{CnfFormula, Literal};
use mvcc_repro::reductions::theorem6::adaptive_schedule;
use mvcc_repro::reductions::{sat_to_polygraph, theorem4_schedules, theorem5_schedule};
use mvcc_repro::scheduler::GreedyMaximalScheduler;

fn acyclic_polygraph() -> Polygraph {
    let mut p = Polygraph::with_nodes(6);
    p.add_choice(NodeId(0), NodeId(1), NodeId(2));
    p.add_choice(NodeId(3), NodeId(4), NodeId(5));
    p.add_arc(NodeId(2), NodeId(3));
    p
}

fn cyclic_polygraph() -> Polygraph {
    let mut p = Polygraph::with_nodes(6);
    p.add_choice(NodeId(0), NodeId(1), NodeId(2));
    p.add_choice(NodeId(3), NodeId(4), NodeId(5));
    p.add_arc(NodeId(1), NodeId(0));
    p.add_arc(NodeId(4), NodeId(3));
    p.add_arc(NodeId(2), NodeId(4));
    p.add_arc(NodeId(5), NodeId(1));
    p
}

/// The full SAT chain on a satisfiable instance (Theorem 4 forward).
#[test]
fn sat_chain_satisfiable_end_to_end() {
    let mut formula = CnfFormula::new(2);
    formula.add_clause(vec![Literal::pos(0), Literal::pos(1)]);
    formula.add_clause(vec![Literal::neg(0), Literal::neg(1)]);
    assert!(formula.satisfiable_dpll().is_some());

    let reduced = sat_to_polygraph(&formula);
    assert!(reduced.polygraph.choices_node_disjoint());
    assert!(is_acyclic_polygraph(&reduced.polygraph));

    let inst = theorem4_schedules(&reduced.polygraph);
    assert!(is_mvcsr(&inst.s1) && is_mvcsr(&inst.s2));
    assert!(is_ols(&[inst.s1.clone(), inst.s2.clone()]));

    // And the certificate of OLS membership verifies (NP membership side).
    let cert = find_ols_certificate(&inst.s1, &inst.s2).expect("certificate exists");
    assert!(verify_ols_certificate(&inst.s1, &inst.s2, &cert));
}

/// Theorem 4 on handcrafted polygraphs, both directions.
#[test]
fn theorem4_equivalence_both_directions() {
    let acyclic = acyclic_polygraph();
    let inst = theorem4_schedules(&acyclic);
    assert!(is_acyclic_polygraph(&acyclic));
    assert!(is_ols(&[inst.s1, inst.s2]));

    let cyclic = cyclic_polygraph();
    let inst = theorem4_schedules(&cyclic);
    assert!(!is_acyclic_polygraph(&cyclic));
    assert!(!is_ols(&[inst.s1, inst.s2]));
}

/// Theorem 5: the forced-read-from schedule is MVSR iff the polygraph is
/// acyclic, and when it is MVSR its read-froms are unique (Corollary 1).
#[test]
fn theorem5_equivalence_and_forced_read_froms() {
    let acyclic = acyclic_polygraph();
    let s = theorem5_schedule(&acyclic);
    assert!(is_mvsr(&s));
    assert!(forced_read_froms(&s).is_some());

    let cyclic = cyclic_polygraph();
    let s = theorem5_schedule(&cyclic);
    assert!(!is_mvsr(&s));
    assert!(forced_read_froms(&s).is_none());
}

/// Theorem 6: the adaptive construction drives the greedy maximal scheduler
/// to accept exactly when the polygraph is acyclic, and the constructed
/// schedule is always MVCSR.
#[test]
fn theorem6_adaptive_construction_against_greedy_scheduler() {
    for (p, expect_accept) in [(acyclic_polygraph(), true), (cyclic_polygraph(), false)] {
        let out = adaptive_schedule(&p, || Box::new(GreedyMaximalScheduler::new()));
        assert!(is_mvcsr(&out.schedule), "Theorem 6 schedules are MVCSR");
        assert_eq!(out.accepted, expect_accept);
    }
}

/// The reduction from SAT produces polygraphs whose acyclicity matches
/// satisfiability across a deterministic mini-corpus (the polygraph leg of
/// the chain, cheap enough to sweep).
#[test]
fn sat_to_polygraph_matches_dpll_on_a_corpus() {
    let mut formulas = Vec::new();
    for seed in 0..8u64 {
        formulas.push(mvcc_repro::workload::random_restricted_formula(3, 4, seed));
    }
    // Plus a known unsatisfiable one.
    let mut unsat = CnfFormula::new(1);
    unsat.add_clause(vec![Literal::pos(0)]);
    unsat.add_clause(vec![Literal::neg(0)]);
    formulas.push(unsat);

    for f in formulas {
        let sat = f.satisfiable_dpll().is_some();
        let acyclic = is_acyclic_polygraph(&sat_to_polygraph(&f).polygraph);
        assert_eq!(sat, acyclic, "mismatch on {f}");
    }
}

/// The OLS checker, the scheduler zoo and the reduction agree on the
/// *meaning* of OLS: when a Theorem 4 pair is OLS, the greedy maximal
/// scheduler can accept both members using one shared prefix decision.
#[test]
fn ols_pairs_are_jointly_acceptable_by_a_maximal_scheduler() {
    let inst = theorem4_schedules(&acyclic_polygraph());
    let run = |s: &Schedule| {
        let mut sched = GreedyMaximalScheduler::new();
        s.steps().iter().all(|&st| sched.offer(st).is_accept())
    };
    assert!(
        run(&inst.s1) || run(&inst.s2),
        "at least one member must be acceptable greedily"
    );
}
