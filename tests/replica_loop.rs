//! The end-to-end follower-read loop (the headline acceptance test of
//! the `mvcc-replica` subsystem).
//!
//! For every certifier in the zoo: a durable primary runs a
//! multi-threaded closed loop; a replica tails the primary's write-ahead
//! log; read-only transactions are served off the replica at pinned
//! snapshots.  The test asserts the replication promise at three points:
//!
//! * **mid-stream** — with the shipper deliberately parked partway
//!   through the log, the combined history (shipped committed prefix +
//!   replica-served read-only transactions, spliced at their snapshot
//!   positions) still classifies in the certifier's class: every apply
//!   point is a committed prefix, and prefix-closure + ACA is the same
//!   lemma as crash recovery;
//! * **caught up, routed** — follower reads opened through the
//!   [`ReadRouter`] under `BoundedLag` / `Latest` policies (including a
//!   read-your-writes wait on a fresh primary commit) keep the combined
//!   history in class;
//! * **after restart** — the replica checkpoints locally, is dropped,
//!   misses more primary traffic, resumes from its checkpoint + LSN
//!   cursor, catches up, and both its store state (equal to the
//!   primary's committed state) and its combined history survive the
//!   round trip.

mod common;
use common::committed_sets;
use mvcc_repro::engine::load::drive_closed_loop;
use mvcc_repro::engine::{CertifierKind, DurabilityConfig, Engine, EngineConfig};
use mvcc_repro::prelude::*;
use mvcc_repro::replica::{ReadPolicy, ReadRouter, Replica, ReplicaConfig, RouterConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-rloop-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SHARDS: usize = 2;
const ENTITIES: usize = 8;

fn profile(kind: CertifierKind, ops: usize, seed: u64) -> LoadProfile {
    LoadProfile {
        threads: 4,
        shards: SHARDS,
        // The MVSR check is the exact NP-complete search: MVTO histories
        // (and their follower readers) stay small.
        ops: if kind == CertifierKind::Mvto {
            ops / 5
        } else {
            ops
        },
        entities: ENTITIES,
        steps_per_transaction: 3,
        read_ratio: 0.7,
        zipf_theta: 0.6,
        seed,
    }
}

/// How many entities a follower read touches (kept small for MVTO, whose
/// combined histories face the exact search).
fn reader_span(kind: CertifierKind) -> u32 {
    if kind == CertifierKind::Mvto {
        2
    } else {
        ENTITIES as u32
    }
}

/// Serves one follower read straight off the replica and returns nothing
/// — the point is the history entry it leaves behind.
fn follower_read(replica: &Arc<Replica>, span: u32) {
    let mut session = replica.begin_read();
    for e in 0..span {
        session.read(EntityId(e)).expect("pre-seeded entity");
    }
    session.finish();
}

/// Asserts the combined replica history classifies in `kind`'s class.
fn assert_in_class(kind: CertifierKind, replica: &Arc<Replica>, stage: &str) {
    let combined = replica.history().combined_schedule();
    assert!(
        kind.class().check(&combined),
        "{kind}: combined history out of {} at {stage}:\n{combined}",
        kind.class()
    );
}

fn replica_loop(kind: CertifierKind) {
    let wal_dir = temp_dir(kind.name());
    let ckpt_dir = temp_dir(&format!("{}-ckpt", kind.name()));
    let engine = Arc::new(Engine::new(
        kind,
        EngineConfig {
            shards: SHARDS,
            entities: ENTITIES,
            durability: DurabilityConfig {
                mode: DurabilityMode::Buffered,
                dir: wal_dir.clone(),
                // Tiny segments: every run ships across rotations.
                segment_bytes: 1024,
            },
            ..EngineConfig::default()
        },
    ));
    let mut rconfig = ReplicaConfig::new(
        SHARDS,
        ENTITIES,
        mvcc_repro::replica::Bytes::from_static(b"0"),
    );
    rconfig.checkpoint_dir = Some(ckpt_dir.clone());
    rconfig.metrics = Some(engine.metrics_handle());
    let replica = Arc::new(Replica::open(rconfig.clone(), &wal_dir).unwrap());
    let span = reader_span(kind);

    // Phase 1: primary traffic.
    drive_closed_loop(
        &engine,
        &profile(kind, 120, 0xab0 + kind.name().len() as u64),
    );
    assert!(engine.metrics().snapshot().committed > 0, "{kind}: starved");

    // Mid-stream: apply a strict prefix of the log, serve follower reads
    // at that partial watermark, classify.
    replica.ship_once(10).unwrap();
    assert!(
        replica.watermark() < engine.durable_lsn().unwrap() + 1,
        "{kind}: prefix must be strict for the mid-stream check"
    );
    follower_read(&replica, span);
    assert_in_class(kind, &replica, "mid-stream");

    // Caught up: routed follower reads under explicit policies.
    replica.catch_up().unwrap();
    let router = ReadRouter::new(
        Arc::clone(&engine),
        vec![Arc::clone(&replica)],
        RouterConfig::default(),
    );
    // A fresh primary commit, then read-your-writes through the router.
    let mut writer = engine.begin();
    writer
        .write(EntityId(0), mvcc_repro::engine::Bytes::from_static(b"ryw"))
        .unwrap();
    let commit_lsn = writer.commit_durable().unwrap().expect("durable commit");
    replica.catch_up().unwrap();
    let mut read = router
        .begin_read_after(ReadPolicy::BoundedLag(4), commit_lsn)
        .unwrap();
    assert!(read.snapshot_lsn().unwrap() > commit_lsn, "{kind}: RYW");
    assert_eq!(
        read.read(EntityId(0)).unwrap(),
        mvcc_repro::engine::Bytes::from_static(b"ryw"),
        "{kind}: read-your-writes must see the own commit"
    );
    read.finish();
    let mut latest = router.begin_read(ReadPolicy::Latest).unwrap();
    latest.read(EntityId(1)).unwrap();
    latest.finish();
    assert_in_class(kind, &replica, "caught-up/routed");

    // Restart: checkpoint locally, drop the replica, let the primary run
    // ahead, resume from checkpoint + LSN cursor.
    replica.checkpoint().unwrap();
    let readers_before = replica.history().readers_recorded();
    assert!(readers_before >= 3, "{kind}: routed reads recorded");
    drop(router);
    drop(replica);
    drive_closed_loop(&engine, &profile(kind, 60, 0xab1));
    let replica = Arc::new(Replica::open(rconfig, &wal_dir).unwrap());
    assert!(replica.watermark() > 0, "{kind}: resumed from zero");
    replica.catch_up().unwrap();
    assert_eq!(
        replica.watermark(),
        engine.durable_lsn().unwrap() + 1,
        "{kind}: resumed replica catches the durable horizon"
    );
    follower_read(&replica, span);
    assert_in_class(kind, &replica, "after-restart");

    // The resumed replica's committed state equals the primary's, shard
    // by shard (counters and version sets).
    assert_eq!(
        committed_sets(replica.shards()),
        committed_sets(engine.shards()),
        "{kind}: replica diverged from the primary's committed state"
    );
    // The shipped committed projection equals the primary's history
    // committed projection (the log really is the history).
    let shipped = replica.history().shipped_schedule();
    let primary_committed = engine.history().committed_schedule();
    assert_eq!(
        shipped.steps(),
        primary_committed.steps(),
        "{kind}: shipped projection diverged"
    );

    let _ = std::fs::remove_dir_all(&wal_dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn two_phase_locking_follower_reads_stay_csr() {
    replica_loop(CertifierKind::TwoPhaseLocking);
}

#[test]
fn timestamp_ordering_follower_reads_stay_csr() {
    replica_loop(CertifierKind::Timestamp);
}

#[test]
fn sgt_follower_reads_stay_csr() {
    replica_loop(CertifierKind::Sgt);
}

#[test]
fn mv_sgt_follower_reads_stay_mvcsr() {
    replica_loop(CertifierKind::MvSgt);
}

#[test]
fn mvto_follower_reads_stay_mvsr() {
    replica_loop(CertifierKind::Mvto);
}

#[test]
fn snapshot_isolation_follower_reads_balance_their_books() {
    replica_loop(CertifierKind::SnapshotIsolation);
}
