//! The analysis gate: the lock-order deadlock check over the live
//! engine→store→WAL→replica hierarchy, and the happens-before claims
//! that previous PRs stated as prose, executed as assertions.
//!
//! Three prose claims become checked facts here:
//!
//! 1. **WAL-append-before-notify** — "shard commits are applied and the
//!    commit record flushed *before* the certifier learns of the
//!    commit" (PR 4's group-commit ordering rule): the pipeline probes
//!    `engine.wal_append` when a batch's commit record lands and
//!    `engine.certifier_notify` before the notify loop, keyed by LSN;
//!    the trace must order them.
//! 2. **telemetry-no-edges** — "hot-path recording is a plain store
//!    into a thread-local buffer, so tracing adds no synchronization
//!    edges to the pipeline" (PR 7): a burst of stage recording between
//!    two marks shows zero sync events, while a flight-recorder event
//!    (which documents its ring lock) shows at least one.
//! 3. **begin-atomic-with-snapshot** — "a transaction's snapshot
//!    timestamp is chosen and the transaction registered under one
//!    tx-table critical section" (PR 2's store contract): the store
//!    probes both steps under `store.txs`, and the trace checks they
//!    share the same acquisition.
//!
//! The lockdep check runs *after* real traffic has exercised every
//! layer, so the recorded graph covers the full hierarchy: lane →
//! history/slots → store locks → WAL writer, plus the replica's
//! declared apply-lock nestings.

use bytes::Bytes;
use mvcc_repro::analysis::hb::{self, Recording};
use mvcc_repro::analysis::lockdep;
use mvcc_repro::core::{EntityId, TxId};
use mvcc_repro::engine::{
    CertifierKind, DurabilityConfig, DurabilityMode, Engine, EngineConfig, Stage, Telemetry,
};
use mvcc_repro::replica::{Replica, ReplicaConfig};
use mvcc_repro::store::MvStore;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 2;
const ENTITIES: usize = 8;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-gate-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_config(dir: &Path) -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        entities: ENTITIES,
        durability: DurabilityConfig {
            mode: DurabilityMode::Buffered,
            dir: dir.to_path_buf(),
            segment_bytes: 4096,
        },
        ..EngineConfig::default()
    }
}

/// Multi-threaded committing traffic over a durable engine — enough to
/// drive admission, group commit, the WAL writer, and the history log.
fn drive_engine(engine: &Arc<Engine>) {
    let threads: Vec<_> = (0..3)
        .map(|t| {
            let engine = Arc::clone(engine);
            std::thread::spawn(move || {
                for i in 0..20u32 {
                    let mut session = engine.begin();
                    let entity = EntityId(u32::try_from(t).unwrap() * 2 + i % 4);
                    let _ = session.read(entity);
                    if session.write(entity, Bytes::from("gate")).is_ok() {
                        let _ = session.commit_durable();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn full_hierarchy_lock_order_is_acyclic_and_documented() {
    let dir = temp_dir("lockdep");
    let engine = Arc::new(Engine::new(
        CertifierKind::TwoPhaseLocking,
        durable_config(&dir),
    ));
    drive_engine(&engine);
    engine.checkpoint().unwrap();

    // Replica traffic: ship the log, pin follower reads, checkpoint —
    // exercises the declared replica.apply → store.* nestings.
    let mut rconfig = ReplicaConfig::new(SHARDS, ENTITIES, Bytes::new());
    rconfig.checkpoint_dir = Some(temp_dir("lockdep-ckpt"));
    let replica = Arc::new(Replica::open(rconfig, &dir).unwrap());
    replica.catch_up().unwrap();
    let mut read = replica.begin_read();
    let _ = read.read(EntityId(0));
    read.finish();
    replica.checkpoint().unwrap();

    // Promotion: fence the log epoch and recover a new primary over it —
    // the fence-then-recover sequence whose declared nesting the report
    // must document (the declaration registers on the promote path, so a
    // run that never failed over would not — and should not — list it).
    let (promoted, _report) = replica
        .promote(CertifierKind::TwoPhaseLocking, durable_config(&dir))
        .unwrap();
    drive_engine(&promoted);

    let report = lockdep::check_prefixes(&["engine.", "store.", "wal.", "replica.", "telemetry."])
        .unwrap_or_else(|cycle| panic!("lock-order cycle:\n{cycle}"));
    // The graph must actually cover the hierarchy, not vacuously pass.
    for class in [
        "engine.lane-state",
        "store.txs",
        "wal.writer",
        "replica.apply",
    ] {
        assert!(
            report.classes.iter().any(|c| c == class),
            "lock class {class} missing from the recorded graph: {:?}",
            report.classes
        );
    }
    assert!(
        !report.arcs.is_empty(),
        "no ordering arcs recorded — tracking is broken"
    );
    // The two intentional nestings are documented, not ignored.
    let documented = report.documented.join("\n");
    assert!(
        documented.contains("replica.apply") && documented.contains("store.txs"),
        "read-pinning nesting not documented:\n{documented}"
    );
    assert!(
        documented.contains("wal.writer") && documented.contains("store.chains"),
        "fence-then-recover nesting not documented:\n{documented}"
    );
}

#[test]
fn hb_claim_wal_append_happens_before_certifier_notify() {
    let dir = temp_dir("hb-wal");
    let recording = Recording::start();
    let engine = Arc::new(Engine::new(
        CertifierKind::TwoPhaseLocking,
        durable_config(&dir),
    ));
    drive_engine(&engine);
    let trace = recording.finish();
    // Keyed by LSN: every batch that appended a commit record must have
    // notified certifiers only after the append returned durable.
    let checked = trace
        .require_ordered("engine.wal_append", "engine.certifier_notify")
        .expect("both probes must fire with shared LSN keys");
    assert!(checked > 0, "no commit batches traced");
}

#[test]
fn hb_claim_telemetry_recording_adds_no_sync_edges() {
    let recording = Recording::start();
    let telemetry = Telemetry::new();
    hb::probe("gate.tel.burst-start", 1);
    for i in 0..1000 {
        telemetry.record_value(Stage::Certify, i);
    }
    hb::probe("gate.tel.burst-end", 1);
    // Contrast: a flight-recorder event takes the (tracked) ring lock.
    hb::probe("gate.tel.flight-start", 2);
    telemetry.record_event(mvcc_repro::engine::EventKind::CheckpointCut { seq: 1 });
    hb::probe("gate.tel.flight-end", 2);
    let trace = recording.finish();
    let during_burst = trace
        .sync_events_between("gate.tel.burst-start", "gate.tel.burst-end", 1)
        .unwrap();
    assert_eq!(
        during_burst, 0,
        "stage recording performed {during_burst} sync event(s) — the \
         no-edges claim of the telemetry PR no longer holds"
    );
    let during_flight = trace
        .sync_events_between("gate.tel.flight-start", "gate.tel.flight-end", 2)
        .unwrap();
    assert!(
        during_flight > 0,
        "flight-recorder ring lock invisible to the tracker — tracked-lock \
         instrumentation is broken (the zero above would be vacuous)"
    );
}

#[test]
fn hb_claim_begin_chooses_snapshot_and_registers_atomically() {
    let recording = Recording::start();
    let store = MvStore::with_entities([EntityId(0)], Bytes::new());
    for tx in 1..=5u32 {
        let _ = store.begin(TxId(tx)).unwrap();
    }
    let trace = recording.finish();
    let checked = trace
        .require_same_critical_section(
            "store.begin_snapshot",
            "store.begin_registered",
            "store.txs",
        )
        .unwrap_or_else(|e| panic!("begin atomicity claim failed: {e}"));
    assert!(
        checked >= 5,
        "all five begins must be checked, got {checked}"
    );
}
