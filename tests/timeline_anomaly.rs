//! Continuous-observability integration: the metrics timeline and the
//! anomaly detector against a *real* engine, driven into each scripted
//! failure mode and back out of it.
//!
//! The detector's rule logic is pinned unit-style in
//! `crates/engine/src/health.rs` with synthetic frames; these tests close
//! the loop end to end — real sessions produce the aborts, a real chaos
//! freeze ([`Freezer`]) pins the WAL mid-flush to stall replication, and
//! the frames come out of a live [`EngineSampler`] over the engine's own
//! metrics registry:
//!
//! * a **scripted abort storm** (read-write conflict pairs after calm
//!   baseline windows) raises the abort-storm alarm at exactly the
//!   conflict window's frame, records it in the flight recorder, and
//!   clears it one calm window later;
//! * a **frozen group-commit flush** leaves appended-but-unflushed WAL
//!   records, so a tailing replica's watermark pins with lag — the
//!   lag-stall alarm fires after the configured flat windows and clears
//!   when the thaw lets the replica catch up;
//! * a recorded timeline **round-trips** through the `timeline.jsonl`
//!   wire format and renders as Prometheus-style `metrics_text`;
//! * the engine metrics `Display` grows its `rates:` block while a
//!   monitor's ring is attached and drops it on detach;
//! * a **steady release soak** (the false-positive gate): a healthy
//!   closed loop with the watchdog and the monitor both on must finish
//!   with zero alarms and zero watchdog violations.

mod common;
use common::chaos::Freezer;
use mvcc_repro::engine::load::run_closed_loop_monitored;
use mvcc_repro::engine::{
    metrics_text, parse_jsonl, write_jsonl, AdmissionMode, AnomalyKind, Bytes, CertifierKind,
    DetectorConfig, DurabilityConfig, Engine, EngineConfig, EngineSampler, FrameSource,
    HealthConfig, HealthMonitor, KillSite, MemberProbe, TelemetryMode,
};
use mvcc_repro::prelude::EntityId;
use mvcc_repro::replica::{Replica, ReplicaConfig};
use mvcc_workload::LoadProfile;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-timeline-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn a_scripted_abort_storm_raises_the_alarm_at_the_conflict_window() {
    let engine = Arc::new(Engine::new(
        CertifierKind::Sgt,
        EngineConfig {
            shards: 2,
            entities: 32,
            telemetry: TelemetryMode::On,
            ..EngineConfig::default()
        },
    ));
    let mut sampler = EngineSampler::for_engine(&engine, Vec::new(), DetectorConfig::default());

    // Three calm windows teach the baseline: disjoint single-writer
    // transactions, zero aborts.
    let mut seq = 0u64;
    for _ in 0..3 {
        for i in 0..20u32 {
            let mut session = engine.begin();
            session
                .write(EntityId(i % 32), Bytes::from_static(b"calm"))
                .unwrap();
            session.commit().unwrap();
        }
        let frame = sampler.sample(seq);
        assert_eq!(frame.aborted, 0, "calm window aborted: {frame:?}");
        seq += 1;
    }

    // The storm window: per round, two victims read an entity, the
    // winner overwrites it and commits, then the victims try to write —
    // the rw→ww cycle dooms them under SGT.  ≥ 2/3 of the window's
    // transactions abort, well past the 0.5 storm threshold.
    let mut finished = 0u64;
    let mut aborted = 0u64;
    for i in 0..20u32 {
        let entity = EntityId(i % 8);
        let mut victims = vec![engine.begin(), engine.begin()];
        let mut winner = engine.begin();
        for victim in &mut victims {
            victim.read(entity).unwrap();
        }
        winner.write(entity, Bytes::from_static(b"winner")).unwrap();
        winner.commit().unwrap();
        finished += 1;
        for mut victim in victims {
            let survived = victim.write(entity, Bytes::from_static(b"victim")).is_ok()
                && victim.commit().is_ok();
            finished += 1;
            if !survived {
                aborted += 1;
            }
        }
    }
    assert!(
        aborted as f64 / finished as f64 >= 0.5,
        "the scripted conflicts no longer abort: {aborted}/{finished}"
    );

    let storm_seq = seq;
    let frame = sampler.sample(storm_seq);
    assert!(frame.abort_rate >= 0.5, "{frame:?}");
    let alarms = sampler.detector().lock().alarms();
    let storms: Vec<_> = alarms
        .iter()
        .filter(|a| a.kind == AnomalyKind::AbortStorm)
        .collect();
    assert_eq!(storms.len(), 1, "{alarms:?}");
    assert_eq!(
        storms[0].onset, storm_seq,
        "the onset frame must be the conflict window: {storms:?}"
    );
    assert!(storms[0].is_active());
    let dump = engine.metrics().flight_dump().expect("telemetry is on");
    assert!(
        dump.contains("anomaly abort-storm phase=onset"),
        "the onset must land in the flight recorder:\n{dump}"
    );

    // One calm window releases the alarm.
    for i in 0..20u32 {
        let mut session = engine.begin();
        session
            .write(EntityId(i % 32), Bytes::from_static(b"calm"))
            .unwrap();
        session.commit().unwrap();
    }
    seq += 1;
    sampler.sample(seq);
    let alarms = sampler.detector().lock().alarms();
    let storm = alarms
        .iter()
        .find(|a| a.kind == AnomalyKind::AbortStorm)
        .unwrap();
    assert_eq!(storm.cleared, Some(seq), "{alarms:?}");
    assert!(!storm.is_active());
    let dump = engine.metrics().flight_dump().expect("telemetry is on");
    assert!(
        dump.contains("anomaly abort-storm phase=clear"),
        "the clear must land in the flight recorder:\n{dump}"
    );
}

#[test]
fn a_frozen_group_commit_stalls_replication_until_the_thaw() {
    let dir = temp_dir("stall");
    // Arm the freeze past the three healthy windows: the fourth commit's
    // flush parks with its Begin/Step records appended but unflushed —
    // exactly the gap a log-tailing replica cannot cross.
    let freezer = Freezer::at_after(KillSite::GroupCommitFlush, 3);
    let config = EngineConfig {
        shards: 2,
        entities: 8,
        durability: DurabilityConfig::buffered(&dir),
        chaos: Some(freezer.hook()),
        telemetry: TelemetryMode::On,
        ..EngineConfig::default()
    };
    let engine = Arc::new(Engine::new(CertifierKind::Sgt, config));
    let replica =
        Arc::new(Replica::open(ReplicaConfig::new(2, 8, Bytes::from_static(b"0")), &dir).unwrap());
    let probe_replica = Arc::clone(&replica);
    let lsn_engine = Arc::clone(&engine);
    let mut sampler = EngineSampler::new(
        engine.metrics_handle(),
        move || {
            (
                lsn_engine.wal_last_lsn().unwrap_or(0),
                lsn_engine.durable_lsn().unwrap_or(0),
            )
        },
        vec![MemberProbe::new("replica-1", move || {
            probe_replica.watermark()
        })],
        DetectorConfig::default(),
    );

    // Healthy windows: commit, let the replica catch up, sample — the
    // watermark tracks the durable horizon, lag 0.
    for w in 0..3u64 {
        let mut session = engine.begin();
        session
            .write(EntityId(w as u32), Bytes::from_static(b"healthy"))
            .unwrap();
        session.commit().unwrap();
        replica.catch_up().unwrap();
        let frame = sampler.sample(w);
        assert_eq!(frame.replicas.len(), 1);
        assert_eq!(frame.replicas[0].lag_lsn, 0, "{frame:?}");
    }

    // The sacrificial committer freezes inside its flush.
    let doomed = Arc::clone(&engine);
    let committer = std::thread::spawn(move || {
        let mut session = doomed.begin();
        session
            .write(EntityId(0), Bytes::from_static(b"stuck"))
            .unwrap();
        let _ = session.commit();
    });
    assert!(freezer.wait_frozen(Duration::from_secs(30)));

    // Two flat windows with lag: the default `stall_frames` is 2, so the
    // first frozen frame arms the rule and the second raises the alarm.
    let frame = sampler.sample(3);
    assert!(
        frame.replicas[0].lag_lsn > 0,
        "the frozen flush must leave unflushed appended records: {frame:?}"
    );
    assert!(sampler.detector().lock().active_alarms().is_empty());
    sampler.sample(4);
    let alarms = sampler.detector().lock().alarms();
    let stall = alarms
        .iter()
        .find(|a| a.kind == AnomalyKind::LagStall)
        .unwrap_or_else(|| panic!("no lag-stall alarm: {alarms:?}"));
    assert_eq!(stall.onset, 4, "{alarms:?}");
    assert_eq!(stall.member.as_deref(), Some("replica-1"));
    assert!(stall.is_active());

    // Thaw: the flush completes, the replica catches up, the alarm
    // clears on the next frame.
    freezer.release();
    committer.join().unwrap();
    replica.catch_up().unwrap();
    let frame = sampler.sample(5);
    assert_eq!(frame.replicas[0].lag_lsn, 0, "{frame:?}");
    let alarms = sampler.detector().lock().alarms();
    let stall = alarms
        .iter()
        .find(|a| a.kind == AnomalyKind::LagStall)
        .unwrap();
    assert_eq!(stall.cleared, Some(5), "{alarms:?}");
    let dump = engine.metrics().flight_dump().expect("telemetry is on");
    assert!(dump.contains("anomaly lag-stall phase=onset"), "{dump}");
    assert!(dump.contains("anomaly lag-stall phase=clear"), "{dump}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_recorded_timeline_round_trips_through_jsonl_and_prometheus_text() {
    let profile = LoadProfile {
        threads: 2,
        shards: 2,
        ops: 400,
        seed: 0x11e,
        ..LoadProfile::default()
    };
    let report = run_closed_loop_monitored(
        CertifierKind::Sgt,
        &profile,
        false,
        None,
        AdmissionMode::Batched,
        DurabilityConfig::off(),
        TelemetryMode::On,
        false,
        Some(HealthConfig::default()),
    );
    assert!(
        !report.timeline.is_empty(),
        "the monitor always records at least the closing frame"
    );
    // The wire format is lossless: parse(write(frames)) == frames.
    let text = write_jsonl(&report.timeline);
    let parsed = parse_jsonl(&text).unwrap();
    assert_eq!(parsed, report.timeline);
    // The newest frame renders as a Prometheus-style exposition.
    let metrics = metrics_text(report.timeline.last().unwrap());
    for needle in [
        "# TYPE mvcc_txn_rate gauge",
        "mvcc_abort_rate ",
        "mvcc_timeline_frame ",
        "mvcc_timeline_window_seconds ",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?}:\n{metrics}");
    }
}

#[test]
fn the_rates_block_rides_the_attached_monitor() {
    let engine = Arc::new(Engine::new(
        CertifierKind::Sgt,
        EngineConfig {
            shards: 2,
            entities: 8,
            telemetry: TelemetryMode::On,
            ..EngineConfig::default()
        },
    ));
    let monitor = HealthMonitor::start(
        &engine,
        Vec::new(),
        HealthConfig {
            interval: Duration::from_millis(10),
            ..HealthConfig::default()
        },
    );
    // Keep committing until a frame lands; the snapshot then carries the
    // last window and Display grows its `rates:` block.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut session = engine.begin();
        session
            .write(EntityId(0), Bytes::from_static(b"r"))
            .unwrap();
        session.commit().unwrap();
        if engine.metrics().snapshot().rates.is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no frame was ever recorded");
        std::thread::sleep(Duration::from_millis(2));
    }
    let rendered = engine.metrics().snapshot().to_string();
    assert!(
        rendered.contains("rates (last"),
        "no rates block in:\n{rendered}"
    );
    let (frames, alarms) = monitor.stop();
    assert!(!frames.is_empty());
    assert!(alarms.is_empty(), "{alarms:?}");
    // Detached: the snapshot drops the block again.
    assert!(engine.metrics().snapshot().rates.is_none());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "the false-positive soak needs release-build throughput"
)]
fn a_steady_release_soak_never_false_alarms() {
    // The detector's acceptance gate: a healthy engine under real load —
    // moderate skew, durability, GC, the watchdog sampling committed
    // windows — must finish with zero alarms.  Anything raised here is a
    // detector false positive by definition.
    let dir = temp_dir("soak");
    let profile = LoadProfile {
        threads: 4,
        shards: 4,
        ops: 200_000,
        zipf_theta: 0.5,
        seed: 0x50a1,
        ..LoadProfile::default()
    };
    let report = run_closed_loop_monitored(
        CertifierKind::Sgt,
        &profile,
        true,
        Some(512),
        AdmissionMode::Batched,
        DurabilityConfig::buffered(&dir),
        TelemetryMode::On,
        true,
        Some(HealthConfig {
            interval: Duration::from_millis(50),
            ..HealthConfig::default()
        }),
    );
    let _ = std::fs::remove_dir_all(&dir);
    assert!(report.metrics.committed > 0);
    assert!(report.timeline.len() >= 2, "{}", report.timeline.len());
    assert!(
        report.alarms.is_empty(),
        "false alarms in a steady soak: {:?}",
        report.alarms
    );
    let watchdog = report.watchdog.expect("the watchdog ran");
    assert_eq!(watchdog.violations, 0);
    assert!(watchdog.windows >= 1);
}
