//! The failover chaos harness: scripted kills of a live primary at the
//! pipeline's most delicate windows, epoch-fenced promotion of a replica,
//! and the proof obligations of the failover story.
//!
//! ## The kill-point matrix
//!
//! Each release-gated soak freezes the primary at one scripted
//! [`KillSite`] while a 4-thread load runs, lets the lease-based
//! [`LeaderDriver`] detect the silence and fail over, resumes the
//! writers on the promoted primary through the [`WriteRouter`], and then
//! checks the three failover promises:
//!
//! * **promotion** — the elected replica absorbs the reachable prefix,
//!   the log's epoch is bumped, and the promoted engine serves exactly
//!   the WAL's committed projection up to the fencing cut;
//! * **fencing** — nothing the frozen (or later woken) old primary does
//!   can reach the log, any replica, or the promoted state: no
//!   resurrected writes, anywhere;
//! * **class** — the *merged* history (the recovered committed prefix
//!   plus every transaction committed on the new primary) still
//!   classifies in the certifier's class, via the offline
//!   `mvcc-classify` checkers — the paper's theory checks the failover.
//!
//! The matrix rows (see `tests/common/chaos.rs` for the freeze
//! primitive):
//!
//! | site                | window frozen                                        |
//! |---------------------|------------------------------------------------------|
//! | `AdmissionDrain`    | certifier ruled a batch; steps not yet in history/WAL|
//! | `GroupCommitFlush`  | shard effects applied; commit record not yet flushed |
//! | `CommitNotifyGap`   | commit record durable; certifiers not yet notified   |
//! | `Checkpoint`        | checkpoint cut holding the group-commit drain        |
//!
//! The deterministic (non-gated) tests pin the split-brain story — a
//! woken deposed primary's late flushes are refused with zero
//! resurrected writes — and the promoted-state-equals-WAL-projection
//! property under random kill sites and promotion targets.
//!
//! Every soak also runs the continuous [`HealthMonitor`] with a
//! router-following LSN probe and per-candidate watermark probes: at
//! the group-commit-flush site the anomaly detector must raise a
//! replication-lag-stall alarm *before* the promotion lands and clear
//! it once the replicas converge on the promoted lineage — the
//! lag-stall → promotion → clear sequence is part of the soak's
//! acceptance, as is zero watchdog-violation alarms.

mod common;
use common::chaos::{kill_sites, ChaosRng, Freezer};
use common::{committed_sets, FlightDumpGuard};
use mvcc_repro::durability::{read_epoch_marker, recover, RecoveryOptions};
use mvcc_repro::engine::{
    AnomalyKind, Bytes, CertifierKind, ClassificationWatchdog, DetectorConfig, DurabilityConfig,
    DurabilityMode, Engine, EngineConfig, EngineError, EngineSampler, HealthConfig, HealthMonitor,
    KillSite, MemberProbe, TelemetryMode, WatchdogConfig,
};
use mvcc_repro::prelude::*;
use mvcc_repro::replica::{
    LeaderConfig, LeaderDriver, LogShipper, Replica, ReplicaConfig, RouterError, ShipperConfig,
    WriteRouter,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mvcc-chaos-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SHARDS: usize = 2;
const ENTITIES: usize = 8;

fn durable_config(dir: &Path) -> EngineConfig {
    EngineConfig {
        shards: SHARDS,
        entities: ENTITIES,
        durability: DurabilityConfig {
            mode: DurabilityMode::Buffered,
            dir: dir.to_path_buf(),
            // Small segments: every soak crosses rotations and the
            // promotion opens a fresh lineage mid-stream.
            segment_bytes: 2048,
        },
        ..EngineConfig::default()
    }
}

fn replica_config() -> ReplicaConfig {
    ReplicaConfig::new(SHARDS, ENTITIES, Bytes::from_static(b"0"))
}

/// Newest committed `(writer, commit_ts, value)` per entity of a live
/// engine (same projection as `tests/engine_recovery.rs`).
fn latest_committed_of(engine: &Engine) -> BTreeMap<EntityId, (TxId, u64, Vec<u8>)> {
    let mut latest = BTreeMap::new();
    for store in engine.shards().iter() {
        let (_, chains) = store.committed_state();
        for (entity, versions) in chains {
            if let Some((writer, ts, value)) = versions.into_iter().max_by_key(|&(_, ts, _)| ts) {
                latest.insert(entity, (writer, ts, value.to_vec()));
            }
        }
    }
    latest
}

/// The same projection straight from a recovery scan of the log.
fn latest_committed_of_wal(
    state: &mvcc_repro::durability::RecoveredState,
) -> BTreeMap<EntityId, (TxId, u64, Vec<u8>)> {
    state
        .latest_committed()
        .into_iter()
        .map(|(entity, v)| (entity, (v.writer, v.commit_ts, v.value.to_vec())))
        .collect()
}

fn scan(dir: &Path) -> mvcc_repro::durability::RecoveredState {
    recover(
        dir,
        &RecoveryOptions {
            shards: SHARDS,
            entities: ENTITIES,
            initial: Bytes::from_static(b"0"),
        },
    )
    .unwrap()
}

/// One full chaos soak: freeze the primary at `site` under 4-thread
/// load, let the leadership driver fail over, resume the writers on the
/// promoted primary, and check promotion + fencing + class.
///
/// The frozen threads (and anything blocked on locks they hold) are
/// *leaked*, exactly like the kill-and-recover suite leaks its crashed
/// engine: that is what a killed process leaves behind.
fn failover_soak(kind: CertifierKind, site: KillSite) {
    let dir = temp_dir(&format!("{}-{site}", kind.name()));
    // MVTO's merged history faces the exact NP-complete MVSR search, so
    // its soak is kept small; everything else gets real traffic.
    let (arm, budget) = if kind == CertifierKind::Mvto {
        (4, 6)
    } else {
        (24, 200)
    };
    // The checkpoint site is only reached by an explicit checkpoint call,
    // which the sacrificial checkpointer thread issues below.
    let freezer = Freezer::at_after(site, if site == KillSite::Checkpoint { 0 } else { arm });
    let mut config = durable_config(&dir);
    config.chaos = Some(freezer.hook());
    // Telemetry on: a failed soak dumps the doomed primary's flight
    // timeline (kill site, fence refusals, promotion phases) on panic.
    config.telemetry = TelemetryMode::On;
    let engine = Arc::new(Engine::new(kind, config));
    let _flight_dump = FlightDumpGuard::new(
        format!("failover_soak {kind}/{site}"),
        engine.metrics_handle(),
    );
    // The online classification watchdog samples the doomed primary's
    // committed windows while the chaos load runs — continuous
    // verification right up to (and past) the kill.  Zero false alarms
    // is part of the soak's acceptance.
    let primary_dog = ClassificationWatchdog::start(Arc::clone(&engine), WatchdogConfig::default());
    let router = Arc::new(WriteRouter::new(Arc::clone(&engine)));

    // Two candidates tailing the log live; either may win the election.
    let electee = Arc::new(Replica::open(replica_config(), &dir).unwrap());
    let bystander = Arc::new(Replica::open(replica_config(), &dir).unwrap());
    let ship_electee = LogShipper::start(Arc::clone(&electee), ShipperConfig::default());
    let ship_bystander = LogShipper::start(Arc::clone(&bystander), ShipperConfig::default());

    // The continuous health monitor watches the whole soak: the LSN
    // probe follows the router (after promotion it must read the
    // promoted engine, or the replication-lag alarm could never clear),
    // the member probes read both candidates' apply watermarks, and the
    // watchdog's verdict counters flow into the frames.  The probes are
    // deadlock-safe against the frozen primary: the chaos point parks
    // the drain leader *before* `append_and_flush` takes the WAL lock,
    // and the durable horizon is an atomic.
    let monitor = {
        let probe_router = Arc::clone(&router);
        let probe_electee = Arc::clone(&electee);
        let probe_bystander = Arc::clone(&bystander);
        let sampler = EngineSampler::new(
            engine.metrics_handle(),
            move || {
                let primary = probe_router.primary();
                (
                    primary.wal_last_lsn().unwrap_or(0),
                    primary.durable_lsn().unwrap_or(0),
                )
            },
            vec![
                MemberProbe::new("electee", move || probe_electee.watermark()),
                MemberProbe::new("bystander", move || probe_bystander.watermark()),
            ],
            DetectorConfig::default(),
        )
        .with_watchdog(primary_dog.stats_probe());
        HealthMonitor::start_with(
            engine.metrics_handle(),
            sampler,
            HealthConfig {
                // Fast cadence: the lag-stall rule needs `stall_frames`
                // flat windows *inside* the frozen-primary gap, before
                // the lease lapses and the failover heals the lag.
                interval: Duration::from_millis(5),
                ..HealthConfig::default()
            },
        )
    };

    // The promoted engine must not inherit the chaos hook.
    let driver = LeaderDriver::start(
        Arc::clone(&router),
        vec![Arc::clone(&electee), Arc::clone(&bystander)],
        kind,
        durable_config(&dir),
        LeaderConfig {
            check: Duration::from_millis(5),
            // The lease lapses ~200 ms after the freeze: long enough
            // that the 5 ms-cadence monitor observes the stalled
            // replicas and raises lag-stall *before* the promotion —
            // the ordering the alarm assertions below pin.
            silence: 40,
            // The failover stages (detect/elect/promote) land in the old
            // primary's telemetry — the registry the dump guard watches.
            metrics: Some(engine.metrics_handle()),
        },
    );

    // The lease: a heartbeat thread models the primary process renewing
    // its lease — it stops the moment the freeze lands (a frozen process
    // renews nothing), which is what lets the driver detect the kill.
    let beat = driver.heartbeat();
    let hb_freezer = Arc::clone(&freezer);
    let heartbeat = std::thread::spawn(move || {
        while hb_freezer.frozen() == 0 {
            beat.fetch_add(1, Ordering::Release);
            std::thread::sleep(Duration::from_millis(1));
        }
    });

    // Phase 1: sacrificial writers on the doomed primary.  They stop at
    // the freeze (or when fenced); ones caught inside the engine stay
    // stuck on its locks and are leaked with it.
    let mut phase1 = Vec::new();
    for t in 0..4u64 {
        let router = Arc::clone(&router);
        let freezer = Arc::clone(&freezer);
        phase1.push(std::thread::spawn(move || {
            let mut rng = ChaosRng::new(0xfa11 ^ (t << 8));
            for i in 0..budget {
                if freezer.frozen() > 0 {
                    break;
                }
                let Ok(mut session) = router.begin() else {
                    break;
                };
                let entity = EntityId(rng.below(ENTITIES as u64) as u32);
                if session
                    .read(EntityId(rng.below(ENTITIES as u64) as u32))
                    .is_err()
                {
                    continue;
                }
                if session
                    .write(entity, Bytes::from(format!("p1-{t}-{i}")))
                    .is_ok()
                {
                    let _ = session.commit();
                }
            }
        }));
    }
    if site == KillSite::Checkpoint {
        // Sacrificial checkpointer: the first cut freezes holding the
        // group-commit drain — the nastiest place to die.
        let ckpt_engine = Arc::clone(&engine);
        let ckpt_freezer = Arc::clone(&freezer);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            while ckpt_freezer.frozen() == 0 {
                let _ = ckpt_engine.checkpoint();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
    }

    assert!(
        freezer.wait_frozen(Duration::from_secs(60)),
        "{kind}/{site}: the kill site was never reached"
    );
    heartbeat.join().unwrap();

    // Lag-stall → promotion: the frozen-primary gap (appended-but-
    // unflushed commit record) holds the replicas' watermarks flat with
    // lag, so the 5 ms-cadence monitor raises its alarm within ~15 ms —
    // long before the driver's ~200 ms silence threshold lapses.  Poll
    // for the onset *now*, while the driver is still counting silence,
    // and record whether promotion had happened yet; reading
    // `active_alarms()` after promotion instead would race the clear
    // (the healed replica catches up within one monitor tick of
    // `installed`).  Only the group-commit-flush site guarantees the
    // gap — the other sites freeze at points where the flushed horizon
    // and the appended tail coincide.
    let mut stalled_before_promotion = false;
    if site == KillSite::GroupCommitFlush {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            if monitor
                .active_alarms()
                .iter()
                .any(|a| a.kind == AnomalyKind::LagStall)
            {
                stalled_before_promotion = driver.promotions() == 0;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // The lease lapses; the driver elects, promotes and installs.
    assert!(
        driver.wait_for_promotion(Duration::from_secs(60)),
        "{kind}/{site}: failover never ran (last error: {:?})",
        driver.last_error()
    );
    assert_eq!(driver.promotions(), 1, "{kind}/{site}");
    assert_eq!(router.epoch(), 1, "{kind}/{site}: promoted epoch");
    let promoted = router.primary();
    assert!(!promoted.is_deposed(), "{kind}/{site}");
    let fence = read_epoch_marker(&dir).unwrap().expect("promotion marker");
    assert_eq!(fence.epoch, 1, "{kind}/{site}");
    assert!(fence.has_fence(), "{kind}/{site}: no fencing cut recorded");

    // Phase 2: the writers resume through the router, on the new primary.
    let mut phase2 = Vec::new();
    for t in 0..4u64 {
        let router = Arc::clone(&router);
        phase2.push(std::thread::spawn(move || {
            let mut rng = ChaosRng::new(0x9e57 ^ (t << 8));
            let mut committed = 0u64;
            let goal = if budget > 12 { 24 } else { 4 };
            while committed < goal {
                let session = match router.begin() {
                    Ok(session) => session,
                    Err(RouterError::Deposed { .. }) => {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    Err(e) => panic!("unroutable write: {e}"),
                };
                let mut session = session;
                let entity = EntityId(rng.below(ENTITIES as u64) as u32);
                // A refused read (e.g. a dirty-read ruling against a
                // concurrent phase-2 writer) aborts the session — normal
                // certifier business, retry with a fresh transaction.
                if session.read(entity).is_err() {
                    continue;
                }
                if session
                    .write(entity, Bytes::from(format!("p2-{t}-{committed}")))
                    .is_ok()
                    && session.commit().is_ok()
                {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let resumed: u64 = phase2.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        resumed >= 16 || kind == CertifierKind::Mvto,
        "{kind}/{site}"
    );

    // The bystander replica follows across the epoch boundary: its tailer
    // rebinds to the promoted lineage instead of erroring, and its
    // applied state converges to exactly the promoted primary's — which
    // is also the no-resurrection check: nothing the frozen primary had
    // in flight exists anywhere downstream.
    let target = promoted.durable_lsn().expect("phase 2 committed") + 1;
    let deadline = Instant::now() + Duration::from_secs(30);
    while bystander.watermark() < target {
        assert!(
            Instant::now() < deadline,
            "{kind}/{site}: bystander never crossed the boundary ({:?})",
            ship_bystander.last_error()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        ship_bystander.errors(),
        0,
        "{:?}",
        ship_bystander.last_error()
    );
    assert_eq!(
        committed_sets(bystander.shards()),
        committed_sets(promoted.shards()),
        "{kind}/{site}: bystander diverged from the promoted primary"
    );

    // The merged history — recovered prefix + resumed commits — is still
    // in the certifier's class.
    let merged = promoted.history();
    assert!(
        merged.committed.len() as u64 >= resumed,
        "{kind}/{site}: resumed commits missing from the merged history"
    );
    assert!(
        kind.class().check(&merged.committed_schedule()),
        "{kind}/{site}: merged failover history left {}",
        kind.class()
    );

    // The watchdog's version of the same two claims, online: the doomed
    // primary's sampled windows never false-alarmed (a forced final pass
    // guarantees at least one verdict on the pre-kill traffic), and a
    // watchdog attached to the promoted engine classifies the *merged*
    // failover history with zero violations too.
    let _ = primary_dog.check_once();
    let primary_verdicts = primary_dog.stop();
    assert_eq!(
        primary_verdicts.violations, 0,
        "{kind}/{site}: the watchdog false-alarmed on the doomed primary"
    );
    if kind != CertifierKind::Mvto {
        // MVTO's class (MVSR) is only soundly checkable on a *complete*
        // history, and the frozen primary leaks in-flight sessions.
        assert!(
            primary_verdicts.windows >= 1,
            "{kind}/{site}: the watchdog never classified a pre-kill window"
        );
    }
    let promoted_dog =
        ClassificationWatchdog::start(Arc::clone(&promoted), WatchdogConfig::default());
    let _ = promoted_dog.check_once();
    let promoted_verdicts = promoted_dog.stop();
    assert_eq!(
        promoted_verdicts.violations, 0,
        "{kind}/{site}: the watchdog false-alarmed on the merged failover history"
    );
    assert!(
        promoted_verdicts.windows >= 1,
        "{kind}/{site}: the watchdog never classified the merged history"
    );

    // Promotion → clear: the bystander has converged on the promoted
    // lineage above, so every lag-stall alarm the freeze raised must
    // have released by the closing frame — and the watchdog rule must
    // never have fired (it forwards correctness verdicts, and both
    // watchdog passes above reported zero violations).
    let (frames, alarms) = monitor.stop();
    assert!(
        !frames.is_empty(),
        "{kind}/{site}: the monitor recorded no frames"
    );
    assert!(
        alarms
            .iter()
            .all(|a| a.kind != AnomalyKind::WatchdogViolation),
        "{kind}/{site}: a watchdog-violation alarm fired: {alarms:?}"
    );
    if site == KillSite::GroupCommitFlush {
        assert!(
            stalled_before_promotion,
            "{kind}/{site}: the lag-stall alarm was not up before the promotion landed"
        );
        assert!(
            alarms.iter().any(
                |a| a.kind == AnomalyKind::LagStall && a.member.as_deref() == Some("bystander")
            ),
            "{kind}/{site}: the stalled bystander never alarmed: {alarms:?}"
        );
        assert!(
            alarms
                .iter()
                .filter(|a| a.kind == AnomalyKind::LagStall)
                .all(|a| !a.is_active()),
            "{kind}/{site}: a lag-stall alarm never cleared after the failover: {alarms:?}"
        );
    }

    ship_electee.stop();
    ship_bystander.stop();
    driver.stop();
    // The kill: the frozen primary (and every thread stuck inside it) is
    // leaked, never unwound.
    std::mem::forget(engine);
    for handle in phase1 {
        drop(handle);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn failover_survives_a_kill_in_the_admission_drain() {
    failover_soak(CertifierKind::Sgt, KillSite::AdmissionDrain);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn failover_survives_a_kill_in_the_group_commit_flush() {
    failover_soak(CertifierKind::Sgt, KillSite::GroupCommitFlush);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn failover_survives_a_kill_in_the_commit_notify_gap() {
    failover_soak(CertifierKind::Sgt, KillSite::CommitNotifyGap);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn failover_survives_a_kill_inside_a_checkpoint_cut() {
    failover_soak(CertifierKind::Sgt, KillSite::Checkpoint);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak interleavings are only meaningful in release builds"
)]
fn every_certifier_survives_a_group_commit_kill() {
    // The class half of the acceptance matrix: the merged failover
    // history classifies for all six certifiers.  The kill lands in the
    // group-commit flush — the window where shard effects and durability
    // can disagree.
    for kind in CertifierKind::all() {
        failover_soak(kind, KillSite::GroupCommitFlush);
    }
}

#[test]
fn a_woken_deposed_primary_cannot_resurrect_writes() {
    // Split-brain, deterministically: a primary freezes *inside* a
    // commit — shard effects applied, commit record not yet flushed — a
    // replica is promoted over its log, and then the old primary wakes
    // up and tries to finish.  Its flush must be refused by the fence,
    // the waiting committer must learn it was deposed, and the zombie
    // write must exist nowhere: not in the log, not in the promoted
    // state, not in any replica.
    let dir = temp_dir("splitbrain");
    let freezer = Freezer::at_after(KillSite::GroupCommitFlush, 3);
    let mut config = durable_config(&dir);
    config.chaos = Some(freezer.hook());
    let engine = Arc::new(Engine::new(CertifierKind::Sgt, config));
    for i in 0..3u32 {
        let mut session = engine.begin();
        session
            .write(EntityId(i), Bytes::from(format!("pre-{i}")))
            .unwrap();
        session.commit().unwrap();
    }
    let pre_freeze = latest_committed_of(&engine);

    // The zombie: freezes at the flush with its shard effects applied.
    let zombie_engine = Arc::clone(&engine);
    let zombie = std::thread::spawn(move || {
        let mut session = zombie_engine.begin();
        session
            .write(EntityId(0), Bytes::from_static(b"zombie"))
            .unwrap();
        session.commit_durable()
    });
    assert!(freezer.wait_frozen(Duration::from_secs(30)));

    // Failover while the old primary is frozen mid-commit.
    let electee = Arc::new(Replica::open(replica_config(), &dir).unwrap());
    let (promoted, report) = electee
        .promote(CertifierKind::Sgt, durable_config(&dir))
        .unwrap();
    assert_eq!(promoted.epoch(), 1);
    assert_eq!(report.commits_replayed, 3);
    assert_eq!(
        latest_committed_of(&promoted),
        pre_freeze,
        "promotion must serve exactly the pre-freeze committed projection"
    );

    // The resurrection attempt: wake the zombie.  Its flush hits the
    // fence, the batch is refused, and the committer learns it.
    freezer.release();
    assert!(matches!(zombie.join().unwrap(), Err(EngineError::Deposed)));
    assert!(engine.is_deposed());
    // Every later commit on the deposed engine is refused up front.
    let mut late = engine.begin();
    late.write(EntityId(1), Bytes::from_static(b"late-zombie"))
        .unwrap();
    assert!(matches!(late.commit(), Err(EngineError::Deposed)));

    // Zero resurrection, proved three ways: the log's committed
    // projection, a replica that tails the log, and the promoted state
    // all carry the pre-freeze value — the zombie bytes exist nowhere.
    let state = scan(&dir);
    assert_eq!(latest_committed_of_wal(&state), pre_freeze);
    let follower = Arc::new(Replica::open(replica_config(), &dir).unwrap());
    follower.catch_up().unwrap();
    assert_eq!(
        committed_sets(follower.shards()),
        committed_sets(promoted.shards())
    );
    for (_, set) in committed_sets(follower.shards()) {
        assert!(
            set.iter().all(|v| !v.contains("zombie")),
            "resurrected write shipped to a replica: {set:?}"
        );
    }

    // The new primary is live: it extends the history past the fence.
    let mut session = promoted.begin();
    assert_eq!(
        session.read(EntityId(0)).unwrap(),
        Bytes::from_static(b"pre-0")
    );
    session
        .write(EntityId(0), Bytes::from_static(b"after-failover"))
        .unwrap();
    session.commit().unwrap();
    assert!(HistoryClass::Csr.check(&promoted.history().committed_schedule()));

    std::mem::forget(engine);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_flight_recorder_captures_a_scripted_kill_site() {
    // The chaos-observability loop, deterministically: freeze a primary
    // at a scripted kill site and assert the flight-recorder dump — the
    // timeline a failed soak prints via `FlightDumpGuard` — carries the
    // kill event.  The event is recorded *before* the hook parks the
    // thread, so even a never-released freeze leaves its trace.
    let dir = temp_dir("flightdump");
    let freezer = Freezer::at(KillSite::GroupCommitFlush);
    let mut config = durable_config(&dir);
    config.chaos = Some(freezer.hook());
    config.telemetry = TelemetryMode::On;
    let engine = Arc::new(Engine::new(CertifierKind::Sgt, config));
    // The sacrificial committer freezes inside its commit flush.
    let doomed = Arc::clone(&engine);
    let committer = std::thread::spawn(move || {
        let mut session = doomed.begin();
        session
            .write(EntityId(0), Bytes::from_static(b"doomed"))
            .unwrap();
        let _ = session.commit();
    });
    assert!(freezer.wait_frozen(Duration::from_secs(30)));
    let dump = engine.metrics().flight_dump().expect("telemetry is on");
    assert!(
        dump.contains("kill-site site=group-commit-flush"),
        "the dump must carry the scripted kill event:\n{dump}"
    );
    // Correlation: the committer is the first transaction on a fresh
    // thread, so it is always trace-sampled, and the kill event carries
    // its trace id — the dump line names *which* commit died there.
    assert!(
        dump.contains("kill-site site=group-commit-flush trace=t0."),
        "the kill event must carry the doomed commit's trace id:\n{dump}"
    );
    // Wake the frozen committer so the test exits cleanly (this is the
    // observability test — the fencing story is pinned elsewhere).
    freezer.release();
    committer.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn promoted_state_equals_the_wal_projection_at_every_random_kill_point() {
    // The seeded chaos property (mini-proptest over engines): for random
    // kill sites, random freeze arming and a random promotion target,
    //
    //   (a) the promoted engine's state equals the healed log's
    //       committed projection up to the fencing cut, and
    //   (b) replaying the log after the woken old primary has tried (and
    //       failed) to append past the fence is a no-op: the projection
    //       is byte-identical — the fenced tail contributes nothing.
    let mut rng = ChaosRng::new(0xc4a05);
    for case in 0..6u64 {
        let sites = kill_sites();
        let site = sites[rng.below(sites.len() as u64) as usize];
        let arm = if site == KillSite::Checkpoint {
            0
        } else {
            1 + rng.below(8)
        };
        let dir = temp_dir(&format!("prop-{case}"));
        let freezer = Freezer::at_after(site, arm);
        let mut config = durable_config(&dir);
        config.chaos = Some(freezer.hook());
        let engine = Arc::new(Engine::new(CertifierKind::Sgt, config));

        // Sacrificial writers only — the main thread must never touch a
        // chaos engine, or the freeze would take the test down with it.
        let mut writers = Vec::new();
        for t in 0..2u64 {
            let engine = Arc::clone(&engine);
            let freezer = Arc::clone(&freezer);
            let seed = rng.next_u64();
            writers.push(std::thread::spawn(move || {
                let mut rng = ChaosRng::new(seed ^ t);
                for i in 0..24u64 {
                    if freezer.frozen() > 0 {
                        break;
                    }
                    let mut session = engine.begin();
                    let entity = EntityId(rng.below(ENTITIES as u64) as u32);
                    if session
                        .write(entity, Bytes::from(format!("c{case}-t{t}-{i}")))
                        .is_ok()
                    {
                        let _ = session.commit();
                    }
                }
            }));
        }
        if site == KillSite::Checkpoint {
            let engine = Arc::clone(&engine);
            let freezer = Arc::clone(&freezer);
            writers.push(std::thread::spawn(move || {
                while freezer.frozen() == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                    let _ = engine.checkpoint();
                }
            }));
        }
        assert!(
            freezer.wait_frozen(Duration::from_secs(30)),
            "case {case}: {site} never hit"
        );

        // Random promotion target among two candidates.
        let candidates = [
            Arc::new(Replica::open(replica_config(), &dir).unwrap()),
            Arc::new(Replica::open(replica_config(), &dir).unwrap()),
        ];
        let target = &candidates[rng.below(2) as usize];
        let (promoted, _) = target
            .promote(CertifierKind::Sgt, durable_config(&dir))
            .unwrap();

        // (a) promoted state == healed log's committed projection.
        let healed = scan(&dir);
        assert_eq!(
            latest_committed_of(&promoted),
            latest_committed_of_wal(&healed),
            "case {case} ({site}, arm {arm})"
        );
        assert_eq!(
            promoted.history().committed,
            healed.committed,
            "case {case}: committed sets diverge"
        );
        let marker = read_epoch_marker(&dir).unwrap().expect("marker");
        assert_eq!(marker.epoch, 1);
        assert!(marker.has_fence());

        // (b) wake the old primary; every late append dies at the fence,
        // and the log's projection does not move.
        freezer.release();
        for writer in writers {
            writer.join().unwrap();
        }
        let replay = scan(&dir);
        assert_eq!(replay.committed, healed.committed, "case {case}");
        assert_eq!(
            latest_committed_of_wal(&replay),
            latest_committed_of_wal(&healed),
            "case {case}: the fenced tail was not a no-op"
        );
        drop(promoted);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
