//! Workspace-level integration tests: the scheduler zoo's output classes,
//! the acceptance-rate ordering of experiment E9, and the storage engine
//! executing what the schedulers decide.

use mvcc_repro::classify::{is_csr, is_mvcsr, is_mvsr};
use mvcc_repro::prelude::*;
use mvcc_repro::store::bytes::Bytes;
use mvcc_repro::store::{execute_with_scheduler, gc, MvStore};
use mvcc_repro::workload::{random_interleaving, random_transaction_system};

fn workload(seed: u64) -> (TransactionSystem, Schedule) {
    let cfg = WorkloadConfig {
        transactions: 5,
        steps_per_transaction: 4,
        entities: 4,
        read_ratio: 0.7,
        zipf_theta: 0.7,
        seed,
    };
    let sys = random_transaction_system(&cfg);
    let s = random_interleaving(&sys, seed ^ 0xf00d);
    (sys, s)
}

/// Every scheduler's committed projection lies in the class the theory
/// assigns to it: locking/TO/SGT produce CSR schedules, MV-SGT produces
/// MVCSR schedules, MVTO produces MVSR schedules.
#[test]
fn committed_projections_lie_in_the_expected_classes() {
    for seed in 0..15u64 {
        let (sys, s) = workload(seed);

        let mut twopl = TwoPhaseLockingScheduler::new(&sys);
        assert!(is_csr(&run_abort(&mut twopl, &s).committed_schedule));

        let mut to = TimestampScheduler::new();
        assert!(is_csr(&run_abort(&mut to, &s).committed_schedule));

        let mut sgt = SgtScheduler::new();
        assert!(is_csr(&run_abort(&mut sgt, &s).committed_schedule));

        let mut mvsgt = MvSgtScheduler::new();
        assert!(is_mvcsr(&run_abort(&mut mvsgt, &s).committed_schedule));

        let mut mvto = MvtoScheduler::new();
        assert!(is_mvsr(&run_abort(&mut mvto, &s).committed_schedule));
    }
}

/// Experiment E9's qualitative shape: on identical inputs the multiversion
/// conflict-graph scheduler never accepts a shorter prefix than the
/// single-version one, and in aggregate accepts strictly more.
#[test]
fn multiversion_accepts_at_least_as_much_and_sometimes_strictly_more() {
    let mut mv_total = 0usize;
    let mut sv_total = 0usize;
    for seed in 0..40u64 {
        let (_, s) = workload(seed);
        let mut sgt = SgtScheduler::new();
        let mut mvsgt = MvSgtScheduler::new();
        let sv = run_prefix(&mut sgt, &s).accepted_steps;
        let mv = run_prefix(&mut mvsgt, &s).accepted_steps;
        assert!(mv >= sv, "MV-SGT fell behind SGT on seed {seed}");
        mv_total += mv;
        sv_total += sv;
    }
    assert!(
        mv_total > sv_total,
        "over the corpus the multiversion scheduler should be strictly ahead"
    );
}

/// The same ordering holds between multiversion and single-version
/// timestamp ordering.
#[test]
fn mvto_dominates_single_version_to() {
    let mut mv_total = 0usize;
    let mut sv_total = 0usize;
    for seed in 100..140u64 {
        let (_, s) = workload(seed);
        let mut to = TimestampScheduler::new();
        let mut mvto = MvtoScheduler::new();
        sv_total += run_abort(&mut to, &s).committed.len();
        mv_total += run_abort(&mut mvto, &s).committed.len();
    }
    assert!(mv_total > sv_total);
}

/// Scheduler decisions drive the store end to end, and aborted transactions
/// leave no garbage behind once collected.
#[test]
fn store_execution_respects_scheduler_decisions_and_gc_cleans_up() {
    for seed in 0..10u64 {
        let (_, s) = workload(seed);
        let store = MvStore::with_entities(s.entities_accessed(), Bytes::from_static(b"0"));
        let mut sched = MvSgtScheduler::new();
        let report = execute_with_scheduler(&store, &s, &mut sched).expect("execution succeeds");
        // Committed and aborted partition the transactions that were offered.
        for tx in s.tx_ids() {
            let committed = report.committed.contains(&tx);
            let aborted = report.aborted.contains(&tx);
            assert!(committed ^ aborted || (!committed && !aborted));
        }
        // After GC at the final watermark each entity keeps exactly one
        // committed version (plus nothing uncommitted).
        let collected = gc::collect(&store);
        assert_eq!(collected.remaining, store.total_versions());
        for e in s.entities_accessed() {
            assert!(store.version_count(e) >= 1);
        }
    }
}

/// The store's realized READ-FROM relation for a full-schedule replay equals
/// the symbolic relation computed by the core crate.
#[test]
fn realized_read_from_matches_symbolic_read_from() {
    for ex in mvcc_repro::core::examples::figure1() {
        if !is_mvsr(&ex.schedule) {
            continue;
        }
        let (_, vf) = mvcc_repro::classify::mvsr_witness(&ex.schedule).unwrap();
        let store =
            MvStore::with_entities(ex.schedule.entities_accessed(), Bytes::from_static(b"0"));
        let report = mvcc_repro::store::execute_full_schedule(&store, &ex.schedule, &vf).unwrap();
        let symbolic = ReadFromRelation::of_full_schedule(&ex.schedule, &vf);
        for entry in report.read_from.entries() {
            assert!(
                symbolic.contains(entry.reader, entry.entity, entry.writer),
                "spurious read-from {entry} in example ({})",
                ex.number
            );
        }
    }
}
