//! Helpers shared by the replication integration suites (each test file
//! pulls this in with `mod common;`).

use mvcc_repro::engine::ShardedStore;
use std::collections::BTreeSet;

// Only the failover suite uses the chaos primitives; the other suites
// pull this module in too, so silence their dead-code lint.
#[allow(dead_code)]
pub mod chaos;

/// Committed `(writer, ts, value)` sets per shard plus each shard's
/// commit counter, order-insensitive: the primary's chains are in append
/// order, a replica's in timestamp order — equality means the same
/// committed state.
pub fn committed_sets(shards: &ShardedStore) -> Vec<(u64, BTreeSet<String>)> {
    shards
        .iter()
        .map(|store| {
            let (counter, chains) = store.committed_state();
            let set = chains
                .iter()
                .flat_map(|(entity, versions)| {
                    versions
                        .iter()
                        .map(move |(writer, ts, value)| format!("{entity}:{writer}@{ts}={value:?}"))
                })
                .collect();
            (counter, set)
        })
        .collect()
}
