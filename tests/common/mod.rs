//! Helpers shared by the replication integration suites (each test file
//! pulls this in with `mod common;`).

use mvcc_repro::engine::{EngineMetrics, ShardedStore};
use std::collections::BTreeSet;
use std::sync::Arc;

// Only the failover suite uses the chaos primitives; the other suites
// pull this module in too, so silence their dead-code lint.
#[allow(dead_code)]
pub mod chaos;

/// Prints an engine's flight-recorder timeline to stderr when the owning
/// test panics — installed at the top of the chaos/soak harnesses so a
/// failed run leaves a timeline instead of a mystery.  A no-op on clean
/// exit and for engines whose telemetry is off.
pub struct FlightDumpGuard {
    label: String,
    metrics: Arc<EngineMetrics>,
}

#[allow(dead_code)]
impl FlightDumpGuard {
    /// Arms the guard for `metrics` (usually
    /// `engine.metrics_handle()`); `label` names the run in the dump
    /// header.
    pub fn new(label: impl Into<String>, metrics: Arc<EngineMetrics>) -> Self {
        FlightDumpGuard {
            label: label.into(),
            metrics,
        }
    }
}

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(dump) = self.metrics.flight_dump() {
                eprintln!("--- flight recorder: {} ---\n{dump}", self.label);
            }
        }
    }
}

/// Committed `(writer, ts, value)` sets per shard plus each shard's
/// commit counter, order-insensitive: the primary's chains are in append
/// order, a replica's in timestamp order — equality means the same
/// committed state.
#[allow(dead_code)] // the timeline suite pulls this module in but compares frames, not state
pub fn committed_sets(shards: &ShardedStore) -> Vec<(u64, BTreeSet<String>)> {
    shards
        .iter()
        .map(|store| {
            let (counter, chains) = store.committed_state();
            let set = chains
                .iter()
                .flat_map(|(entity, versions)| {
                    versions
                        .iter()
                        .map(move |(writer, ts, value)| format!("{entity}:{writer}@{ts}={value:?}"))
                })
                .collect();
            (counter, set)
        })
        .collect()
}
