//! Deterministic chaos primitives for the failover harness.
//!
//! The engine exposes scripted failpoints ([`mvcc_repro::engine::KillSite`])
//! at exactly the windows where failover is delicate; this module turns
//! them into a *freeze*: the first thread that reaches the scripted site
//! blocks on a condvar (and every later thread that reaches it blocks
//! too — a frozen process freezes wholesale), the test observes the
//! freeze, fails the primary over, and either leaks the frozen threads
//! (a kill) or wakes them (a split-brain resurrection attempt that the
//! epoch fence must repel).

use mvcc_repro::engine::{ChaosHook, KillSite};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A freeze-at-site chaos controller.  Install [`Freezer::hook`] into an
/// [`mvcc_repro::engine::EngineConfig`]; threads that pass the scripted
/// site block until [`Freezer::release`] (which the kill-style tests
/// never call — the frozen threads are leaked with their engine).
pub struct Freezer {
    site: KillSite,
    /// Hits at the site to let through before freezing — lets a soak
    /// build up real traffic before the kill lands.
    arm_after: u64,
    hits: AtomicU64,
    frozen: AtomicU64,
    released: Mutex<bool>,
    wake: Condvar,
}

impl Freezer {
    /// A controller that freezes threads at `site` from the first hit.
    pub fn at(site: KillSite) -> Arc<Self> {
        Self::at_after(site, 0)
    }

    /// A controller that lets the first `arm_after` passes through the
    /// site and freezes every one after that.
    pub fn at_after(site: KillSite, arm_after: u64) -> Arc<Self> {
        Arc::new(Freezer {
            site,
            arm_after,
            hits: AtomicU64::new(0),
            frozen: AtomicU64::new(0),
            released: Mutex::new(false),
            wake: Condvar::new(),
        })
    }

    /// The hook to install as `EngineConfig::chaos`.
    pub fn hook(self: &Arc<Self>) -> ChaosHook {
        let freezer = Arc::clone(self);
        ChaosHook::new(move |site| {
            if site != freezer.site {
                return;
            }
            if freezer.hits.fetch_add(1, Ordering::AcqRel) < freezer.arm_after {
                return;
            }
            freezer.frozen.fetch_add(1, Ordering::AcqRel);
            let mut released = freezer.released.lock().unwrap();
            while !*released {
                released = freezer.wake.wait(released).unwrap();
            }
        })
    }

    /// How many threads are (or were) frozen at the site.
    pub fn frozen(&self) -> u64 {
        self.frozen.load(Ordering::Acquire)
    }

    /// Blocks until at least one thread froze; `true` if it happened
    /// before the deadline.
    pub fn wait_frozen(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        while Instant::now() < until {
            if self.frozen() > 0 {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.frozen() > 0
    }

    /// Wakes every frozen thread — the "deposed primary comes back to
    /// life" half of the split-brain tests.  Kill-style tests never call
    /// this; their frozen threads are leaked.
    pub fn release(&self) {
        let mut released = self.released.lock().unwrap();
        *released = true;
        self.wake.notify_all();
    }
}

/// The four scripted kill sites, in pipeline order — the chaos matrix.
pub fn kill_sites() -> [KillSite; 4] {
    [
        KillSite::AdmissionDrain,
        KillSite::GroupCommitFlush,
        KillSite::CommitNotifyGap,
        KillSite::Checkpoint,
    ]
}

/// A tiny deterministic PRNG (xorshift64*) for the seeded chaos
/// property tests — no external crates, identical sequences everywhere.
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the generator (zero is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        ChaosRng(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
