//! Property-based tests (proptest) over randomly generated schedules:
//! the paper's containments, characterisations and scheduler guarantees as
//! invariants over the whole schedule space (small sizes, exact checkers).

use mvcc_repro::classify::swaps::{serial_reachable_by_swaps, swap_neighbours};
use mvcc_repro::classify::taxonomy::classify;
use mvcc_repro::classify::vsr::is_vsr_polygraph;
use mvcc_repro::classify::{is_csr, is_mvcsr, is_mvsr, is_vsr};
use mvcc_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random schedule over at most `max_txns` transactions,
/// `max_entities` entities and exactly `steps` steps.
fn schedule_strategy(
    max_txns: u32,
    max_entities: u32,
    steps: usize,
) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec((1..=max_txns, 0..max_entities, proptest::bool::ANY), steps).prop_map(
        |raw| {
            Schedule::from_steps(
                raw.into_iter()
                    .map(|(tx, entity, is_read)| {
                        if is_read {
                            Step::read(TxId(tx), EntityId(entity))
                        } else {
                            Step::write(TxId(tx), EntityId(entity))
                        }
                    })
                    .collect(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Figure 1's containments hold for every schedule:
    /// serial ⊆ CSR ⊆ VSR ⊆ MVSR and CSR ⊆ MVCSR ⊆ MVSR, DMVSR ⊆ MVSR.
    #[test]
    fn containments_hold(s in schedule_strategy(4, 3, 8)) {
        let c = classify(&s);
        prop_assert!(c.respects_containments(), "classification {c} violates Figure 1 on {s}");
    }

    /// Theorem 1: the MVCG test equals the definition-level check.
    #[test]
    fn theorem1_graph_equals_definition(s in schedule_strategy(4, 3, 7)) {
        prop_assert_eq!(
            is_mvcsr(&s),
            mvcc_repro::classify::mvcsr::is_mvcsr_by_definition(&s)
        );
    }

    /// Theorem 2: MVCSR iff a serial schedule is reachable by legal switches.
    #[test]
    fn theorem2_swaps(s in schedule_strategy(3, 3, 7)) {
        prop_assert_eq!(serial_reachable_by_swaps(&s), is_mvcsr(&s));
    }

    /// A legal switch never changes the transaction system and never
    /// reverses a multiversion-conflicting pair of the original schedule:
    /// the original is multiversion-conflict-equivalent to every neighbour
    /// (the induction step in the proof of Theorem 2).  Note that the
    /// *neighbour* may still fall out of MVCSR — the relation is
    /// deliberately asymmetric, which is why Theorem 2 asks for a path from
    /// the schedule *to* a serial one and not the other way round.
    #[test]
    fn legal_switches_preserve_mv_conflict_order(s in schedule_strategy(4, 3, 8)) {
        for neighbour in swap_neighbours(&s) {
            prop_assert_eq!(neighbour.tx_system(), s.tx_system());
            prop_assert!(mvcc_repro::core::equivalence::mv_conflict_equivalent(&s, &neighbour));
        }
    }

    /// The two independent VSR deciders (branch-and-bound search and the
    /// polygraph formulation) always agree.
    #[test]
    fn vsr_deciders_agree(s in schedule_strategy(4, 3, 7)) {
        prop_assert_eq!(is_vsr(&s), is_vsr_polygraph(&s));
    }

    /// The MVSR witness, when it exists, really serializes the schedule.
    #[test]
    fn mvsr_witness_is_sound(s in schedule_strategy(4, 3, 7)) {
        if let Some((order, vf)) = mvcc_repro::classify::mvsr_witness(&s) {
            prop_assert!(vf.validate(&s).is_ok());
            let serial = Schedule::serial(&s.tx_system(), &order);
            prop_assert!(mvcc_repro::core::equivalence::full_view_equivalent(
                &s,
                &vf,
                &serial,
                &VersionFunction::standard(&serial)
            ));
        }
    }

    /// The standard version function is always valid, and the READ-FROM
    /// relation it induces mentions only transactions of the schedule (or
    /// the padding transactions).
    #[test]
    fn standard_version_function_is_valid(s in schedule_strategy(5, 4, 10)) {
        let vf = VersionFunction::standard(&s);
        prop_assert!(vf.validate(&s).is_ok());
        let rel = ReadFromRelation::of_full_schedule(&s, &vf);
        let txs: std::collections::BTreeSet<TxId> = s.tx_ids().into_iter().collect();
        for entry in rel.entries() {
            prop_assert!(entry.writer == TxId::INITIAL || txs.contains(&entry.writer));
            prop_assert!(entry.reader == TxId::FINAL || txs.contains(&entry.reader));
        }
    }

    /// Single-version schedulers only commit conflict-serializable
    /// projections; the multiversion conflict-graph scheduler only commits
    /// MVCSR projections.
    #[test]
    fn scheduler_soundness(s in schedule_strategy(4, 3, 10)) {
        let mut sgt = SgtScheduler::new();
        let committed = run_abort(&mut sgt, &s).committed_schedule;
        prop_assert!(is_csr(&committed));

        let mut mvsgt = MvSgtScheduler::new();
        let committed = run_abort(&mut mvsgt, &s).committed_schedule;
        prop_assert!(is_mvcsr(&committed));

        let mut mvto = MvtoScheduler::new();
        let committed = run_abort(&mut mvto, &s).committed_schedule;
        prop_assert!(is_mvsr(&committed));
    }

    /// Prefix-mode acceptance ordering: MV-SGT accepts at least as long a
    /// prefix as SGT, which accepts at least as long a prefix as strict 2PL
    /// rejection-free operation would imply for serial prefixes.
    #[test]
    fn acceptance_ordering(s in schedule_strategy(4, 3, 10)) {
        let mut sgt = SgtScheduler::new();
        let mut mvsgt = MvSgtScheduler::new();
        let sv = run_prefix(&mut sgt, &s).accepted_steps;
        let mv = run_prefix(&mut mvsgt, &s).accepted_steps;
        prop_assert!(mv >= sv);
    }

    /// Schedule parsing round-trips through display.
    #[test]
    fn schedule_display_round_trips(s in schedule_strategy(5, 4, 12)) {
        let text = s.to_string();
        let reparsed = Schedule::parse(&text).unwrap();
        prop_assert_eq!(reparsed.steps(), s.steps());
    }

    /// A singleton set containing an MVSR schedule is always OLS; adding the
    /// identical schedule again changes nothing.
    #[test]
    fn singleton_ols(s in schedule_strategy(3, 2, 6)) {
        if is_mvsr(&s) {
            prop_assert!(is_ols(std::slice::from_ref(&s)));
            prop_assert!(is_ols(&[s.clone(), s.clone()]));
        }
    }
}

/// A named scheduler paired with the classifier characterising its output
/// class.
type ZooEntry = (&'static str, Box<dyn Scheduler>, fn(&Schedule) -> bool);

/// The scheduler zoo with, for each scheduler, the classifier characterising
/// its output class (the table of `mvcc-scheduler`'s crate docs).
fn zoo(sys: &mvcc_repro::core::TransactionSystem) -> Vec<ZooEntry> {
    fn serial_check(s: &Schedule) -> bool {
        s.is_serial()
    }
    vec![
        ("serial", Box::new(SerialScheduler::new(sys)), serial_check),
        ("2pl", Box::new(TwoPhaseLockingScheduler::new(sys)), is_csr),
        ("timestamp", Box::new(TimestampScheduler::new()), is_csr),
        ("sgt", Box::new(SgtScheduler::new()), is_csr),
        ("mv-sgt", Box::new(MvSgtScheduler::new()), is_mvcsr),
        ("mvto", Box::new(MvtoScheduler::new()), is_mvsr),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// Serial schedules land in every class of Figure 1 (the innermost
    /// region of the containment diagram).
    #[test]
    fn serial_schedules_land_in_every_class(s in schedule_strategy(4, 3, 8)) {
        let sys = s.tx_system();
        let serial = Schedule::serial(&sys, &s.tx_ids());
        let c = classify(&serial);
        prop_assert!(
            c.serial && c.csr && c.vsr && c.mvcsr && c.mvsr,
            "serial schedule classified outside some class: {c}"
        );
    }

    /// Parse/Display round-trips hold on workload-generated schedules, not
    /// just the uniform random ones.
    #[test]
    fn workload_schedules_round_trip(
        txns in 1usize..6,
        steps in 1usize..5,
        entities in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let cfg = WorkloadConfig {
            transactions: txns,
            steps_per_transaction: steps,
            entities,
            read_ratio: 0.6,
            zipf_theta: 0.5,
            seed,
        };
        let sys = mvcc_repro::workload::random_transaction_system(&cfg);
        let s = mvcc_repro::workload::random_interleaving(&sys, seed ^ 0xabcd);
        let reparsed = Schedule::parse(&s.to_string()).unwrap();
        prop_assert_eq!(reparsed.steps(), s.steps());
    }

    /// Every scheduler in the zoo only commits schedules its own classifier
    /// accepts (abort-and-continue mode).
    #[test]
    fn every_scheduler_stays_in_its_class(s in schedule_strategy(4, 3, 10)) {
        let sys = s.tx_system();
        for (name, mut sched, check) in zoo(&sys) {
            let committed = run_abort(sched.as_mut(), &s).committed_schedule;
            prop_assert!(
                check(&committed),
                "{} emitted a schedule outside its class: {}", name, committed
            );
        }
    }

    /// Prefix-recognition outputs are prefix-closed: re-offering the
    /// accepted prefix accepts all of it, and truncating the input truncates
    /// the accepted prefix accordingly.
    #[test]
    fn run_prefix_outputs_are_prefix_closed(
        s in schedule_strategy(4, 3, 10),
        cut in 0usize..=10,
    ) {
        let sys = s.tx_system();
        for idx in 0..zoo(&sys).len() {
            let (name, mut sched, _) = zoo(&sys).swap_remove(idx);
            let full = run_prefix(sched.as_mut(), &s);
            prop_assert!(full.prefix.len() == full.accepted_steps);

            let (_, mut again, _) = zoo(&sys).swap_remove(idx);
            let re = run_prefix(again.as_mut(), &full.prefix);
            prop_assert!(re.accepted_all, "{} rejected its own accepted prefix", name);

            let cut = cut.min(s.len());
            let truncated = Schedule::from_steps(s.steps()[..cut].to_vec());
            let (_, mut fresh, _) = zoo(&sys).swap_remove(idx);
            let out = run_prefix(fresh.as_mut(), &truncated);
            prop_assert_eq!(
                out.accepted_steps,
                cut.min(full.accepted_steps),
                "{} violates prefix closure at cut {}", name, cut
            );
        }
    }
}

/// Malformed step strings are rejected with a parse error, not mangled into
/// a schedule.
#[test]
fn malformed_step_strings_are_rejected() {
    for bad in [
        "Q1(x)",      // unknown action
        "1(x)",       // missing action
        "R",          // no parentheses
        "R1",         // no parentheses
        "R1(",        // unclosed
        "R1()",       // empty entity
        "R1)x(",      // reversed parentheses
        "Ra(x R2(y)", // unclosed first token
        "R(x)",       // empty transaction label
        "R?(x)",      // bad transaction label
    ] {
        assert!(
            mvcc_repro::core::Schedule::parse(bad).is_err(),
            "{bad:?} should be rejected"
        );
    }
}

/// Well-formed unconventional spellings are accepted (parser leniency is
/// intentional: lowercase actions, numeric and `T`-prefixed labels,
/// separators).
#[test]
fn lenient_but_well_formed_spellings_parse() {
    for good in ["r1(x) w2(y)", "RT1(x)", "Ra(x), Wb(y);", "R12(x) W12(x)"] {
        assert!(
            mvcc_repro::core::Schedule::parse(good).is_ok(),
            "{good:?} should parse"
        );
    }
}
