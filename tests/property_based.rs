//! Property-based tests (proptest) over randomly generated schedules:
//! the paper's containments, characterisations and scheduler guarantees as
//! invariants over the whole schedule space (small sizes, exact checkers).

use mvcc_repro::classify::swaps::{swap_neighbours, serial_reachable_by_swaps};
use mvcc_repro::classify::taxonomy::classify;
use mvcc_repro::classify::vsr::is_vsr_polygraph;
use mvcc_repro::classify::{is_csr, is_mvcsr, is_mvsr, is_vsr};
use mvcc_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random schedule over at most `max_txns` transactions,
/// `max_entities` entities and exactly `steps` steps.
fn schedule_strategy(
    max_txns: u32,
    max_entities: u32,
    steps: usize,
) -> impl Strategy<Value = Schedule> {
    proptest::collection::vec(
        (1..=max_txns, 0..max_entities, proptest::bool::ANY),
        steps,
    )
    .prop_map(|raw| {
        Schedule::from_steps(
            raw.into_iter()
                .map(|(tx, entity, is_read)| {
                    if is_read {
                        Step::read(TxId(tx), EntityId(entity))
                    } else {
                        Step::write(TxId(tx), EntityId(entity))
                    }
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Figure 1's containments hold for every schedule:
    /// serial ⊆ CSR ⊆ VSR ⊆ MVSR and CSR ⊆ MVCSR ⊆ MVSR, DMVSR ⊆ MVSR.
    #[test]
    fn containments_hold(s in schedule_strategy(4, 3, 8)) {
        let c = classify(&s);
        prop_assert!(c.respects_containments(), "classification {c} violates Figure 1 on {s}");
    }

    /// Theorem 1: the MVCG test equals the definition-level check.
    #[test]
    fn theorem1_graph_equals_definition(s in schedule_strategy(4, 3, 7)) {
        prop_assert_eq!(
            is_mvcsr(&s),
            mvcc_repro::classify::mvcsr::is_mvcsr_by_definition(&s)
        );
    }

    /// Theorem 2: MVCSR iff a serial schedule is reachable by legal switches.
    #[test]
    fn theorem2_swaps(s in schedule_strategy(3, 3, 7)) {
        prop_assert_eq!(serial_reachable_by_swaps(&s), is_mvcsr(&s));
    }

    /// A legal switch never changes the transaction system and never
    /// reverses a multiversion-conflicting pair of the original schedule:
    /// the original is multiversion-conflict-equivalent to every neighbour
    /// (the induction step in the proof of Theorem 2).  Note that the
    /// *neighbour* may still fall out of MVCSR — the relation is
    /// deliberately asymmetric, which is why Theorem 2 asks for a path from
    /// the schedule *to* a serial one and not the other way round.
    #[test]
    fn legal_switches_preserve_mv_conflict_order(s in schedule_strategy(4, 3, 8)) {
        for neighbour in swap_neighbours(&s) {
            prop_assert_eq!(neighbour.tx_system(), s.tx_system());
            prop_assert!(mvcc_repro::core::equivalence::mv_conflict_equivalent(&s, &neighbour));
        }
    }

    /// The two independent VSR deciders (branch-and-bound search and the
    /// polygraph formulation) always agree.
    #[test]
    fn vsr_deciders_agree(s in schedule_strategy(4, 3, 7)) {
        prop_assert_eq!(is_vsr(&s), is_vsr_polygraph(&s));
    }

    /// The MVSR witness, when it exists, really serializes the schedule.
    #[test]
    fn mvsr_witness_is_sound(s in schedule_strategy(4, 3, 7)) {
        if let Some((order, vf)) = mvcc_repro::classify::mvsr_witness(&s) {
            prop_assert!(vf.validate(&s).is_ok());
            let serial = Schedule::serial(&s.tx_system(), &order);
            prop_assert!(mvcc_repro::core::equivalence::full_view_equivalent(
                &s,
                &vf,
                &serial,
                &VersionFunction::standard(&serial)
            ));
        }
    }

    /// The standard version function is always valid, and the READ-FROM
    /// relation it induces mentions only transactions of the schedule (or
    /// the padding transactions).
    #[test]
    fn standard_version_function_is_valid(s in schedule_strategy(5, 4, 10)) {
        let vf = VersionFunction::standard(&s);
        prop_assert!(vf.validate(&s).is_ok());
        let rel = ReadFromRelation::of_full_schedule(&s, &vf);
        let txs: std::collections::BTreeSet<TxId> = s.tx_ids().into_iter().collect();
        for entry in rel.entries() {
            prop_assert!(entry.writer == TxId::INITIAL || txs.contains(&entry.writer));
            prop_assert!(entry.reader == TxId::FINAL || txs.contains(&entry.reader));
        }
    }

    /// Single-version schedulers only commit conflict-serializable
    /// projections; the multiversion conflict-graph scheduler only commits
    /// MVCSR projections.
    #[test]
    fn scheduler_soundness(s in schedule_strategy(4, 3, 10)) {
        let mut sgt = SgtScheduler::new();
        let committed = run_abort(&mut sgt, &s).committed_schedule;
        prop_assert!(is_csr(&committed));

        let mut mvsgt = MvSgtScheduler::new();
        let committed = run_abort(&mut mvsgt, &s).committed_schedule;
        prop_assert!(is_mvcsr(&committed));

        let mut mvto = MvtoScheduler::new();
        let committed = run_abort(&mut mvto, &s).committed_schedule;
        prop_assert!(is_mvsr(&committed));
    }

    /// Prefix-mode acceptance ordering: MV-SGT accepts at least as long a
    /// prefix as SGT, which accepts at least as long a prefix as strict 2PL
    /// rejection-free operation would imply for serial prefixes.
    #[test]
    fn acceptance_ordering(s in schedule_strategy(4, 3, 10)) {
        let mut sgt = SgtScheduler::new();
        let mut mvsgt = MvSgtScheduler::new();
        let sv = run_prefix(&mut sgt, &s).accepted_steps;
        let mv = run_prefix(&mut mvsgt, &s).accepted_steps;
        prop_assert!(mv >= sv);
    }

    /// Schedule parsing round-trips through display.
    #[test]
    fn schedule_display_round_trips(s in schedule_strategy(5, 4, 12)) {
        let text = s.to_string();
        let reparsed = Schedule::parse(&text).unwrap();
        prop_assert_eq!(reparsed.steps(), s.steps());
    }

    /// A singleton set containing an MVSR schedule is always OLS; adding the
    /// identical schedule again changes nothing.
    #[test]
    fn singleton_ols(s in schedule_strategy(3, 2, 6)) {
        if is_mvsr(&s) {
            prop_assert!(is_ols(&[s.clone()]));
            prop_assert!(is_ols(&[s.clone(), s.clone()]));
        }
    }
}
